"""Disk-backed, content-keyed artifact store for experiments and sweeps.

The :class:`ArtifactStore` persists the three artifact families of the
evaluation pipeline under one root directory, each addressed by a SHA-256
content key derived from the *inputs* that produced it — never by run order
or timestamps — so identical work is found again across processes and
sessions:

``prepared/<key>/``
    One :class:`~repro.evaluation.pipeline.PreparedData` product (the
    Table 1 feature tracks, the scaled job log and the reduction report) as
    ``meta.json`` + ``arrays.npz``.  Keyed by the same inputs as
    :func:`~repro.evaluation.pipeline.prepared_data_key`, so everything the
    in-memory :class:`~repro.evaluation.pipeline.PreparedDataCache` would
    share, the disk store shares too — attach a store as the cache's
    ``spill`` backend and sweeps warm-start across sessions.
``results/<key>.json``
    One :class:`~repro.evaluation.pipeline.ExperimentResult`, keyed by the
    full (scenario, experiment-config) pair *minus* the scheduling knobs
    (``n_workers``, ``executor_kind``, ``rl_trial_tasks``) — the golden
    harness proves the schedule never changes the numbers, so serial and
    parallel runs (and both RL task shapes) of one experiment share a
    result slot.
``sweeps/<key>.json``
    One sweep manifest mapping each point label of a
    :class:`~repro.evaluation.sweep.SweepSpec` to its result key, so
    ``python -m repro report`` can rebuild the whole
    :class:`~repro.evaluation.sweep.SweepResult` from disk.

All JSON artifacts use the versioned schema of :mod:`repro.serialization`;
writes go through a temporary file + ``os.replace`` so a crashed run never
leaves a half-written artifact behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.config import ScenarioConfig
from repro.core.features import NodeFeatureTrack
from repro.evaluation.pipeline import (
    ExperimentConfig,
    ExperimentResult,
    PreparedData,
    _effective_job_scaling,
    _effective_manufacturer,
    prepared_data_key,
)
from repro.serialization import SchemaError, canonical_json, tag, untag
from repro.telemetry.reduction import ReductionReport
from repro.utils.rng import RngFactory
from repro.workload.job import JobLog
from repro.workload.sampling import JobSequenceSampler

__all__ = ["ArtifactStore", "StoreGcReport"]


@dataclass(frozen=True)
class StoreGcReport:
    """Outcome of one :meth:`ArtifactStore.gc` pass."""

    #: Keys of the pruned (or, with ``dry_run``, prunable) prepared products.
    removed: Tuple[str, ...]
    #: Keys kept: referenced by a sweep manifest or stored result, or
    #: written recently enough to fall inside the in-flight grace window.
    kept: Tuple[str, ...]
    #: Bytes freed (or freeable) by removing the orphaned products.
    freed_bytes: int
    #: Whether this was a report-only pass.
    dry_run: bool

#: Experiment-config fields that select a *schedule* or a diagnostic, not a
#: result: two runs differing only here produce identical numbers
#: (golden-tested; the per-trial RL task shape is result-identical to the
#: in-task loop by construction, ``profile`` only adds instrumentation,
#: and ``compiled`` swaps in kernels that perform the identical IEEE-754
#: operations), so they must share one result slot.
_SCHEDULE_FIELDS = (
    "n_workers",
    "executor_kind",
    "rl_trial_tasks",
    "profile",
    "compiled",
)


def _digest(payload: Any) -> str:
    """Content key: SHA-256 of the canonical JSON of ``payload``."""
    text = canonical_json(payload)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _atomic_write_text(path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _atomic_write_npz(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _redacted_config_dict(config: ExperimentConfig) -> Dict[str, Any]:
    """Config payload with the result-irrelevant scheduling knobs dropped."""
    payload = config.to_dict()
    for name in _SCHEDULE_FIELDS:
        payload.pop(name, None)
    return payload


class ArtifactStore:
    """Content-keyed on-disk store of prepared data, results and sweeps.

    Creating the store lays down (or validates) a ``store.json`` marker so
    an arbitrary directory is never silently treated as a store.  All
    operations are safe to interleave across processes: artifacts are
    immutable once written and writes are atomic, so the worst concurrent
    outcome is two processes computing the same artifact once each.
    """

    MARKER = "store.json"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / self.MARKER
        if marker.exists():
            meta = json.loads(marker.read_text())
            untag(meta, "artifact_store")  # validates kind + schema
        else:
            _atomic_write_text(marker, canonical_json(tag("artifact_store", {})))
        for sub in ("prepared", "results", "sweeps"):
            (self.root / sub).mkdir(exist_ok=True)

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"

    # ------------------------------------------------------------------ #
    # Content keys
    # ------------------------------------------------------------------ #
    def prepared_key(
        self, scenario: ScenarioConfig, config: ExperimentConfig
    ) -> str:
        """Disk twin of :func:`~repro.evaluation.pipeline.prepared_data_key`."""
        return _digest(
            {
                "kind": "prepared_data",
                "seed": scenario.seed,
                "topology": scenario.topology.to_dict(),
                "fault_model": scenario.fault_model.to_dict(),
                "workload": scenario.workload.to_dict(),
                "duration_seconds": scenario.duration_seconds,
                "ue_burst_window_seconds": scenario.evaluation.ue_burst_window_seconds,
                "merge_window_seconds": scenario.evaluation.merge_window_seconds,
                "manufacturer": _effective_manufacturer(scenario, config),
                "job_scaling": _effective_job_scaling(scenario, config),
            }
        )

    def result_key(self, scenario: ScenarioConfig, config: ExperimentConfig) -> str:
        """Content key of one experiment's result."""
        return _digest(
            {
                "kind": "experiment_result",
                "scenario": scenario.to_dict(),
                "config": _redacted_config_dict(config),
            }
        )

    def sweep_key(self, spec, config: ExperimentConfig) -> str:
        """Content key of one sweep manifest (``spec`` is a ``SweepSpec``)."""
        return _digest(
            {
                "kind": "sweep",
                "spec": spec.to_dict(),
                "config": _redacted_config_dict(config),
            }
        )

    # ------------------------------------------------------------------ #
    # Prepared data
    # ------------------------------------------------------------------ #
    def has_prepared(
        self, scenario: ScenarioConfig, config: ExperimentConfig
    ) -> bool:
        key = self.prepared_key(scenario, config)
        return (self.root / "prepared" / key / "meta.json").exists()

    def save_prepared(
        self, prepared: PreparedData, config: ExperimentConfig
    ) -> str:
        """Persist one synthetic :class:`PreparedData` product; returns its key.

        Only products fully derivable from their scenario belong here — the
        caller (normally the :class:`PreparedDataCache` spill path) must not
        pass products built from externally supplied logs.
        """
        scenario = prepared.scenario
        key = self.prepared_key(scenario, config)
        directory = self.root / "prepared" / key
        if (directory / "meta.json").exists():
            return key
        directory.mkdir(parents=True, exist_ok=True)

        arrays: Dict[str, np.ndarray] = {}
        nodes = sorted(prepared.tracks)
        arrays["nodes"] = np.asarray(nodes, dtype=np.int64)
        for node in nodes:
            track = prepared.tracks[node]
            arrays[f"track_{node}_times"] = track.times
            arrays[f"track_{node}_features"] = track.features
            arrays[f"track_{node}_is_ue"] = track.is_ue
        job_log = prepared.sampler.job_log
        arrays["job_id"] = job_log.job_id
        arrays["job_submit"] = job_log.submit
        arrays["job_start"] = job_log.start
        arrays["job_end"] = job_log.end
        arrays["job_n_nodes"] = job_log.n_nodes
        _atomic_write_npz(directory / "arrays.npz", arrays)

        meta = tag(
            "prepared_data",
            {
                "scenario": scenario.to_dict(),
                "reduction_report": prepared.reduction_report.to_dict(),
            },
        )
        # meta.json is written last: its presence marks the entry complete.
        _atomic_write_text(directory / "meta.json", canonical_json(meta))
        return key

    def load_prepared(
        self, scenario: ScenarioConfig, config: ExperimentConfig
    ) -> Optional[PreparedData]:
        """Reload a prepared product, re-bound to the requesting scenario.

        Returns ``None`` on a miss.  The product is bound to the *caller's*
        ``scenario`` (evaluation parameters such as the mitigation cost are
        excluded from the content key, exactly as in the in-memory cache)
        and its ``data_key`` is restored, so trace caching keeps working.
        """
        key = self.prepared_key(scenario, config)
        directory = self.root / "prepared" / key
        meta_path = directory / "meta.json"
        if not meta_path.exists():
            return None
        meta = untag(json.loads(meta_path.read_text()), "prepared_data")
        reduction_report = ReductionReport.from_dict(meta["reduction_report"])

        with np.load(directory / "arrays.npz") as archive:
            nodes = [int(node) for node in archive["nodes"]]
            tracks = {
                node: NodeFeatureTrack(
                    node=node,
                    times=archive[f"track_{node}_times"],
                    features=archive[f"track_{node}_features"],
                    is_ue=archive[f"track_{node}_is_ue"],
                )
                for node in nodes
            }
            job_log = JobLog(
                job_id=archive["job_id"],
                submit=archive["job_submit"],
                start=archive["job_start"],
                end=archive["job_end"],
                n_nodes=archive["job_n_nodes"],
            )
        # Same seed derivation as prepare_data; the pipeline never draws from
        # the sampler's internal generator, but keep it identical anyway.
        sampler = JobSequenceSampler(
            job_log, seed=RngFactory(scenario.seed).stream("sampler")
        )
        return PreparedData(
            scenario=scenario,
            tracks=tracks,
            sampler=sampler,
            reduction_report=reduction_report,
            data_key=prepared_data_key(scenario, config),
        )

    # ------------------------------------------------------------------ #
    # Experiment results
    # ------------------------------------------------------------------ #
    def has_result(self, scenario: ScenarioConfig, config: ExperimentConfig) -> bool:
        return (self.root / "results" / f"{self.result_key(scenario, config)}.json").exists()

    def save_result(
        self,
        scenario: ScenarioConfig,
        config: ExperimentConfig,
        result: ExperimentResult,
    ) -> str:
        """Persist one experiment result with its full provenance; returns its key."""
        key = self.result_key(scenario, config)
        payload = tag(
            "stored_result",
            {
                "scenario": scenario.to_dict(),
                "config": config.to_dict(),
                "result": result.to_dict(),
            },
        )
        _atomic_write_text(
            self.root / "results" / f"{key}.json", canonical_json(payload)
        )
        return key

    def load_result(
        self, scenario: ScenarioConfig, config: ExperimentConfig
    ) -> Optional[ExperimentResult]:
        """Reload one experiment result, or ``None`` on a miss."""
        return self.load_result_by_key(self.result_key(scenario, config))

    def load_result_by_key(self, key: str) -> Optional[ExperimentResult]:
        path = self.root / "results" / f"{key}.json"
        if not path.exists():
            return None
        payload = untag(json.loads(path.read_text()), "stored_result")
        return ExperimentResult.from_dict(payload["result"])

    # ------------------------------------------------------------------ #
    # Sweep manifests
    # ------------------------------------------------------------------ #
    def save_sweep(self, spec, config: ExperimentConfig, result) -> str:
        """Persist a sweep manifest (``result`` is a ``SweepResult``).

        Point results must already be stored (``run_sweep`` writes each one
        before recording the manifest); the manifest only records the spec,
        the config and the label -> result-key mapping.
        """
        key = self.sweep_key(spec, config)
        payload = tag(
            "sweep_manifest",
            {
                "spec": spec.to_dict(),
                "config": config.to_dict(),
                "points": {
                    point.label: self.result_key(point.scenario, config)
                    for point in result.points
                },
            },
        )
        _atomic_write_text(self.root / "sweeps" / f"{key}.json", canonical_json(payload))
        return key

    def load_sweep_manifest(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw manifest payload of one stored sweep, or ``None``."""
        path = self.root / "sweeps" / f"{key}.json"
        if not path.exists():
            return None
        return untag(json.loads(path.read_text()), "sweep_manifest")

    def load_sweep_by_key(self, key: str):
        """Rebuild a :class:`~repro.evaluation.sweep.SweepResult` from disk.

        Raises :class:`repro.serialization.SchemaError` when a point result
        referenced by the manifest is missing (a partially computed sweep —
        resume it through :class:`repro.study.Study` first).
        """
        from repro.evaluation.sweep import SweepResult, SweepSpec

        manifest = self.load_sweep_manifest(key)
        if manifest is None:
            return None
        spec = SweepSpec.from_dict(manifest["spec"])
        results: Dict[str, ExperimentResult] = {}
        for label, result_key in manifest["points"].items():
            result = self.load_result_by_key(result_key)
            if result is None:
                raise SchemaError(
                    f"sweep {key} references missing result {result_key} "
                    f"for point {label!r}; resume the sweep to recompute it"
                )
            results[label] = result
        return SweepResult(
            spec=spec,
            points=spec.points(),
            results=results,
            wallclock_seconds=0.0,
        )

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #
    def list_sweeps(self) -> List[Dict[str, Any]]:
        """Summaries of every stored sweep (key, base scenario, point labels)."""
        entries: List[Dict[str, Any]] = []
        for path in sorted((self.root / "sweeps").glob("*.json")):
            manifest = untag(json.loads(path.read_text()), "sweep_manifest")
            spec = manifest["spec"]
            base = untag(spec, "sweep_spec")["base"]
            entries.append(
                {
                    "key": path.stem,
                    "base_scenario": untag(base, "scenario_config")["name"],
                    "labels": list(manifest["points"]),
                }
            )
        return entries

    def list_results(self) -> List[Dict[str, Any]]:
        """Summaries of every stored experiment result."""
        entries: List[Dict[str, Any]] = []
        for path in sorted((self.root / "results").glob("*.json")):
            payload = untag(json.loads(path.read_text()), "stored_result")
            scenario = untag(payload["scenario"], "scenario_config")
            result = untag(payload["result"], "experiment_result")
            entries.append(
                {
                    "key": path.stem,
                    "scenario": scenario["name"],
                    "seed": scenario["seed"],
                    "mitigation_cost_node_minutes": scenario["evaluation"].get(
                        "mitigation_cost_node_minutes"
                    ),
                    "approaches": list(result["approaches"]),
                }
            )
        return entries

    def list_prepared(self) -> List[str]:
        """Content keys of every stored prepared-data product."""
        return sorted(
            path.name
            for path in (self.root / "prepared").iterdir()
            if (path / "meta.json").exists()
        )

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def referenced_prepared_keys(self) -> set:
        """Prepared-product keys reachable from the stored sweeps/results.

        A sweep manifest references the prepared product of each of its
        points; a stored experiment result references the product of its
        (scenario, config) pair.  Everything else in ``prepared/`` is
        orphaned — typically spilled by sweeps whose manifests were never
        written (killed runs) or superseded by later specs — and may be
        pruned by :meth:`gc`.
        """
        from repro.evaluation.sweep import SweepSpec

        referenced = set()
        for path in sorted((self.root / "sweeps").glob("*.json")):
            manifest = untag(json.loads(path.read_text()), "sweep_manifest")
            spec = SweepSpec.from_dict(manifest["spec"])
            config = ExperimentConfig.from_dict(manifest["config"])
            for point in spec.points():
                referenced.add(self.prepared_key(point.scenario, config))
        for path in sorted((self.root / "results").glob("*.json")):
            payload = untag(json.loads(path.read_text()), "stored_result")
            scenario = ScenarioConfig.from_dict(payload["scenario"])
            config = ExperimentConfig.from_dict(payload["config"])
            referenced.add(self.prepared_key(scenario, config))
        return referenced

    def gc(
        self, dry_run: bool = False, grace_seconds: float = 3600.0
    ) -> "StoreGcReport":
        """Prune prepared products not referenced by any sweep or result.

        Incomplete entries (a crashed writer left no ``meta.json``) are
        pruned as well — their content key can never be trusted.  Entries
        modified within ``grace_seconds`` are always kept: a sweep that is
        *currently* spilling products (or has written products but not yet
        its manifest) must not have the ground pulled from under it by a
        concurrent gc pass.  With ``dry_run`` nothing is deleted; the
        report still lists what would go and how many bytes it would free.
        """
        import shutil
        import time

        referenced = self.referenced_prepared_keys()
        now = time.time()
        removed: List[str] = []
        kept: List[str] = []
        freed = 0
        for path in sorted((self.root / "prepared").iterdir()):
            if not path.is_dir():
                continue
            complete = (path / "meta.json").exists()
            if complete and path.name in referenced:
                kept.append(path.name)
                continue
            newest = max(
                (item.stat().st_mtime for item in path.rglob("*") if item.is_file()),
                default=path.stat().st_mtime,
            )
            if now - newest < grace_seconds:
                kept.append(path.name)
                continue
            freed += sum(
                item.stat().st_size for item in path.rglob("*") if item.is_file()
            )
            removed.append(path.name)
            if not dry_run:
                shutil.rmtree(path)
        return StoreGcReport(
            removed=tuple(removed),
            kept=tuple(kept),
            freed_bytes=freed,
            dry_run=dry_run,
        )
