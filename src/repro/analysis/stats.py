"""Summary statistics of an error log (generator validation, Section 2).

The paper's environment description quantifies the MareNostrum 3 logs:
4.5 M corrected errors and 333 uncorrected errors over two years across
~25k DIMMs, reduced to 67 first-of-burst UEs; a class imbalance of roughly
3.5 orders of magnitude between merged events and UEs; three manufacturers
with 6694 / 5207 / 13,419 DIMMs; and a substantial fraction of UEs with no
telemetry in the preceding day.  These helpers compute the same quantities
for any :class:`~repro.telemetry.error_log.ErrorLog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.merging import count_merged_events
from repro.telemetry.records import MANUFACTURER_NAMES, EventKind
from repro.utils.timeutils import DAY, MINUTE


@dataclass(frozen=True)
class LogSummary:
    """Headline statistics of one error log."""

    n_events: int
    n_merged_events: int
    n_corrected_errors: int
    n_ce_records: int
    n_uncorrected_errors: int
    n_ue_warnings: int
    n_boots: int
    n_nodes_with_events: int
    n_dimms_with_ce: int
    class_imbalance_orders_of_magnitude: float
    silent_ue_fraction: float


def class_imbalance_ratio(
    log: ErrorLog, merge_window_seconds: float = MINUTE
) -> float:
    """Ratio of merged events to uncorrected errors (paper: ~3.5 orders)."""
    ues = log.count_ues()
    if ues == 0:
        return float("inf")
    return count_merged_events(log, merge_window_seconds) / ues


def silent_ue_fraction(log: ErrorLog, window_seconds: float = DAY) -> float:
    """Fraction of UEs with no preceding event within ``window_seconds``.

    These are the UEs that no event-triggered policy can mitigate (25 of the
    67 UEs in the paper's dataset).
    """
    ue_mask = log.is_ue_mask
    ue_indices = np.flatnonzero(ue_mask)
    if ue_indices.size == 0:
        return 0.0
    silent = 0
    for idx in ue_indices:
        node = log.node[idx]
        t = log.time[idx]
        preceding = (
            (log.node == node)
            & ~ue_mask
            & (log.time >= t - window_seconds)
            & (log.time < t)
        )
        if not preceding.any():
            silent += 1
    return silent / ue_indices.size


def manufacturer_breakdown(log: ErrorLog) -> Dict[str, Dict[str, float]]:
    """Per-manufacturer CE / UE counts (Section 5.3 partitioning)."""
    result: Dict[str, Dict[str, float]] = {}
    for manufacturer in range(len(MANUFACTURER_NAMES)):
        mask = log.manufacturer == manufacturer
        if not mask.any():
            continue
        sub = log.select(mask)
        result[MANUFACTURER_NAMES[manufacturer]] = {
            "corrected_errors": float(sub.total_corrected_errors()),
            "uncorrected_errors": float(sub.count_ues()),
            "dimms_with_events": float(np.unique(sub.dimm[sub.dimm >= 0]).size),
        }
    return result


def summarize_log(
    log: ErrorLog,
    merge_window_seconds: float = MINUTE,
    silent_window_seconds: float = DAY,
) -> LogSummary:
    """Compute the full :class:`LogSummary` for a log."""
    stats = log.stats()
    merged = count_merged_events(log, merge_window_seconds)
    ues = stats.n_uncorrected_errors
    if ues > 0 and merged > 0:
        imbalance = float(np.log10(merged / ues))
    else:
        imbalance = float("nan")
    return LogSummary(
        n_events=stats.n_events,
        n_merged_events=merged,
        n_corrected_errors=stats.n_corrected_errors,
        n_ce_records=stats.n_ce_records,
        n_uncorrected_errors=ues,
        n_ue_warnings=stats.n_ue_warnings,
        n_boots=stats.n_boots,
        n_nodes_with_events=stats.n_nodes_with_events,
        n_dimms_with_ce=stats.n_dimms_with_ce,
        class_imbalance_orders_of_magnitude=imbalance,
        silent_ue_fraction=silent_ue_fraction(log, silent_window_seconds),
    )
