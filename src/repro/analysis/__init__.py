"""Quantitative log analysis (Section 2.1.5, in the spirit of Zivanovic et al.).

These statistics are used for two purposes: to validate that the synthetic
telemetry generator reproduces the load-bearing properties of the
MareNostrum 3 logs (class imbalance, burstiness, manufacturer skew, silent
UEs), and to report the Section 2 summary numbers alongside the reproduced
figures in ``EXPERIMENTS.md``.
"""

from repro.analysis.burst import BurstStatistics, inter_arrival_times, ue_burst_statistics
from repro.analysis.stats import (
    LogSummary,
    class_imbalance_ratio,
    manufacturer_breakdown,
    silent_ue_fraction,
    summarize_log,
)

__all__ = [
    "BurstStatistics",
    "LogSummary",
    "class_imbalance_ratio",
    "inter_arrival_times",
    "manufacturer_breakdown",
    "silent_ue_fraction",
    "summarize_log",
    "ue_burst_statistics",
]
