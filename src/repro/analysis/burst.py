"""Burstiness analysis of corrected and uncorrected errors (Section 2.1.3).

Uncorrected errors tend to appear in bursts: once a node fails it keeps
failing while it is tested, so only the first UE of each burst matters for a
production workload.  Corrected errors are also strongly clustered in time
on the failing DIMM.  These helpers quantify both effects so that the
synthetic generator can be validated against the paper's description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.reduction import reduce_ue_bursts
from repro.utils.timeutils import WEEK
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BurstStatistics:
    """Summary of UE burst behaviour in a log."""

    n_raw_ues: int
    n_first_ues: int
    mean_burst_size: float
    max_burst_size: int
    burst_window_seconds: float

    @property
    def reduction_factor(self) -> float:
        """Raw-to-first UE ratio (paper: 333 / 67 ≈ 5)."""
        if self.n_first_ues == 0:
            return 0.0
        return self.n_raw_ues / self.n_first_ues


def inter_arrival_times(log: ErrorLog, kind_mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-node inter-arrival times of (a subset of) events, in seconds.

    Used to show that CE arrivals are heavy-tailed / bursty: the coefficient
    of variation of the inter-arrival times is far above 1 for a clustered
    process and about 1 for a Poisson process.
    """
    if kind_mask is None:
        kind_mask = np.ones(len(log), dtype=bool)
    gaps = []
    for node in np.unique(log.node[kind_mask]):
        times = np.sort(log.time[kind_mask & (log.node == node)])
        if times.size > 1:
            gaps.append(np.diff(times))
    if not gaps:
        return np.empty(0)
    return np.concatenate(gaps)


def burstiness_coefficient(inter_arrivals: np.ndarray) -> float:
    """Coefficient of variation of inter-arrival times (>1 means bursty)."""
    inter_arrivals = np.asarray(inter_arrivals, dtype=float)
    if inter_arrivals.size < 2:
        return 0.0
    mean = inter_arrivals.mean()
    if mean <= 0:
        return 0.0
    return float(inter_arrivals.std() / mean)


def ue_burst_statistics(
    log: ErrorLog, window_seconds: float = WEEK
) -> BurstStatistics:
    """Group UEs into per-node bursts and summarise their sizes."""
    check_positive("window_seconds", window_seconds)
    ue_mask = log.is_ue_mask
    n_raw = int(np.count_nonzero(ue_mask))
    reduced = reduce_ue_bursts(log, window_seconds)
    n_first = reduced.count_ues()

    burst_sizes = []
    for node in np.unique(log.node[ue_mask]):
        times = np.sort(log.time[ue_mask & (log.node == node)])
        if times.size == 0:
            continue
        current = 1
        last_start = times[0]
        for t in times[1:]:
            if t - last_start < window_seconds:
                current += 1
            else:
                burst_sizes.append(current)
                current = 1
                last_start = t
        burst_sizes.append(current)

    if not burst_sizes:
        return BurstStatistics(0, 0, 0.0, 0, window_seconds)
    return BurstStatistics(
        n_raw_ues=n_raw,
        n_first_ues=n_first,
        mean_burst_size=float(np.mean(burst_sizes)),
        max_burst_size=int(np.max(burst_sizes)),
        burst_window_seconds=window_seconds,
    )
