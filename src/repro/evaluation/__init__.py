"""Evaluation methodology of Section 4: nested cross-validation, cost–benefit
accounting in node–hours, classical ML metrics, agent-behaviour maps and the
scenario engine that reproduces the paper's figures and tables.

The engine is layered: a pluggable approach :mod:`registry
<repro.evaluation.registry>`, a staged :mod:`pipeline
<repro.evaluation.pipeline>` of pure functions, and a parallel
:mod:`executor <repro.evaluation.executor>` — composed by the thin
:mod:`experiment <repro.evaluation.experiment>` driver.
"""

from repro.evaluation.behavior import BehaviorGrid, behavior_grid
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.cross_validation import TimeSeriesNestedCV, TimeSeriesSplit
from repro.evaluation.executor import Task, execute_tasks
from repro.evaluation.experiment import (
    APPROACH_ORDER,
    ApproachResult,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.evaluation.metrics import ConfusionCounts
from repro.evaluation.pipeline import (
    GroupOutcome,
    PreparedData,
    PreparedDataCache,
    SplitContext,
    SplitEvaluation,
    TrainedSplit,
    aggregate,
    build_split_tasks,
    clear_trace_cache,
    default_prepared_cache,
    evaluate_split,
    make_splits,
    prepare_data,
    prepared_data_key,
    trace_cache_stats,
    train_split,
)
from repro.evaluation.registry import (
    ApproachSpec,
    approach_order,
    approach_specs,
    enabled_specs,
    ensure_sc20_variants,
    get_approach,
    register_approach,
    register_sc20_variant,
    unregister_approach,
)
from repro.evaluation.runner import (
    EvaluationTrace,
    PolicyEvaluation,
    build_traces,
    evaluate_policies,
    evaluate_policy,
)
from repro.evaluation.report import (
    format_cost_table,
    format_metrics_table,
    format_series,
    format_sweep_table,
)
from repro.evaluation.sweep import SweepPoint, SweepResult, SweepSpec, run_sweep

__all__ = [
    "APPROACH_ORDER",
    "ApproachResult",
    "ApproachSpec",
    "BehaviorGrid",
    "ConfusionCounts",
    "CostBreakdown",
    "EvaluationTrace",
    "ExperimentConfig",
    "ExperimentResult",
    "GroupOutcome",
    "PolicyEvaluation",
    "PreparedData",
    "PreparedDataCache",
    "SplitContext",
    "SplitEvaluation",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "Task",
    "TimeSeriesNestedCV",
    "TimeSeriesSplit",
    "TrainedSplit",
    "aggregate",
    "approach_order",
    "approach_specs",
    "behavior_grid",
    "build_split_tasks",
    "build_traces",
    "clear_trace_cache",
    "default_prepared_cache",
    "enabled_specs",
    "ensure_sc20_variants",
    "evaluate_policies",
    "evaluate_policy",
    "evaluate_split",
    "execute_tasks",
    "format_cost_table",
    "format_metrics_table",
    "format_series",
    "format_sweep_table",
    "get_approach",
    "make_splits",
    "prepare_data",
    "prepared_data_key",
    "register_approach",
    "register_sc20_variant",
    "run_experiment",
    "run_sweep",
    "trace_cache_stats",
    "train_split",
    "unregister_approach",
]
