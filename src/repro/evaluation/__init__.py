"""Evaluation methodology of Section 4: nested cross-validation, cost–benefit
accounting in node–hours, classical ML metrics, agent-behaviour maps and the
scenario engine that reproduces the paper's figures and tables.

The engine is layered: a pluggable approach :mod:`registry
<repro.evaluation.registry>`, a staged :mod:`pipeline
<repro.evaluation.pipeline>` of pure functions, and a parallel
:mod:`executor <repro.evaluation.executor>` — composed by the thin
:mod:`experiment <repro.evaluation.experiment>` driver.

This package re-exports the *public* evaluation surface: configs, result
types, the ``run_experiment`` / ``run_sweep`` entry points, the approach
registry, the policy-replay helpers and the report formatters.  Pipeline
internals (the individual stages, the executor, the content keys and cache
handles) live in — and must be imported from — their home modules:
:mod:`repro.evaluation.pipeline` and :mod:`repro.evaluation.executor`.
(The package-level aliases for those internals were deprecated for one
release and have been removed.)
"""

from repro.evaluation.behavior import BehaviorGrid, behavior_grid
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.cross_validation import TimeSeriesNestedCV, TimeSeriesSplit
from repro.evaluation.experiment import (
    APPROACH_ORDER,
    ApproachResult,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.evaluation.metrics import ConfusionCounts
from repro.evaluation.pipeline import PreparedData, PreparedDataCache
from repro.evaluation.registry import (
    ApproachSpec,
    approach_order,
    approach_specs,
    enabled_specs,
    ensure_sc20_variants,
    get_approach,
    register_approach,
    register_sc20_variant,
    unregister_approach,
)
from repro.evaluation.runner import (
    EvaluationTrace,
    PolicyEvaluation,
    build_traces,
    evaluate_policies,
    evaluate_policy,
    replay_decision_masks,
)
from repro.evaluation.report import (
    format_cost_table,
    format_metrics_table,
    format_series,
    format_sweep_table,
)
from repro.evaluation.sweep import SweepPoint, SweepResult, SweepSpec, run_sweep

__all__ = [
    "APPROACH_ORDER",
    "ApproachResult",
    "ApproachSpec",
    "BehaviorGrid",
    "ConfusionCounts",
    "CostBreakdown",
    "EvaluationTrace",
    "ExperimentConfig",
    "ExperimentResult",
    "PolicyEvaluation",
    "PreparedData",
    "PreparedDataCache",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "TimeSeriesNestedCV",
    "TimeSeriesSplit",
    "approach_order",
    "approach_specs",
    "behavior_grid",
    "build_traces",
    "enabled_specs",
    "ensure_sc20_variants",
    "evaluate_policies",
    "evaluate_policy",
    "format_cost_table",
    "format_metrics_table",
    "format_series",
    "format_sweep_table",
    "get_approach",
    "register_approach",
    "register_sc20_variant",
    "replay_decision_masks",
    "run_experiment",
    "run_sweep",
    "unregister_approach",
]
