"""Evaluation methodology of Section 4: nested cross-validation, cost–benefit
accounting in node–hours, classical ML metrics, agent-behaviour maps and the
high-level experiment driver that reproduces the paper's figures and tables.
"""

from repro.evaluation.behavior import BehaviorGrid, behavior_grid
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.cross_validation import TimeSeriesNestedCV, TimeSeriesSplit
from repro.evaluation.experiment import (
    ApproachResult,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.evaluation.metrics import ConfusionCounts
from repro.evaluation.runner import (
    EvaluationTrace,
    PolicyEvaluation,
    build_traces,
    evaluate_policies,
    evaluate_policy,
)
from repro.evaluation.report import (
    format_cost_table,
    format_metrics_table,
    format_series,
)

__all__ = [
    "ApproachResult",
    "BehaviorGrid",
    "ConfusionCounts",
    "CostBreakdown",
    "EvaluationTrace",
    "ExperimentConfig",
    "ExperimentResult",
    "PolicyEvaluation",
    "TimeSeriesNestedCV",
    "TimeSeriesSplit",
    "behavior_grid",
    "build_traces",
    "evaluate_policies",
    "evaluate_policy",
    "format_cost_table",
    "format_metrics_table",
    "format_series",
    "run_experiment",
]
