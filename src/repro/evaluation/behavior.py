"""RL agent behaviour map (Figure 6).

The figure shows, for every combination of potential UE cost (x-axis, log
scale) and likelihood of a UE (y-axis, proxied by the SC20 random-forest
probability, since the RL agent has no such value internally), how often the
agent triggers a mitigation.  The expected structure: almost never at low
cost and low probability, almost always when either the cost or the
probability is high, with a smooth transition in between — including for
costs orders of magnitude above anything seen during training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.sc20 import SC20RandomForestPolicy
from repro.core.policies import DecisionContext, MitigationPolicy
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BehaviorGrid:
    """Fraction of mitigations per (UE-cost bin, probability bin)."""

    #: Edges of the UE-cost bins, node–hours (log-spaced), length ``nx + 1``.
    ue_cost_edges: np.ndarray
    #: Edges of the probability bins, length ``ny + 1``.
    probability_edges: np.ndarray
    #: Fraction of events mitigated in each cell, shape ``(ny, nx)``;
    #: ``nan`` marks cells with no data.
    mitigation_fraction: np.ndarray
    #: Number of (event, cost) samples falling in each cell, shape ``(ny, nx)``.
    counts: np.ndarray

    @property
    def overall_mitigation_rate(self) -> float:
        """Fraction of all sampled decisions that were mitigations."""
        total = self.counts.sum()
        if total == 0:
            return 0.0
        filled = np.nan_to_num(self.mitigation_fraction, nan=0.0)
        return float((filled * self.counts).sum() / total)

    def mean_fraction_for_cost_above(self, cost: float) -> float:
        """Mean mitigation fraction over cells with bin centre above ``cost``."""
        centers = np.sqrt(self.ue_cost_edges[:-1] * self.ue_cost_edges[1:])
        mask = centers >= cost
        cells = self.mitigation_fraction[:, mask]
        valid = ~np.isnan(cells)
        if not valid.any():
            return 0.0
        return float(np.nanmean(cells))

    def mean_fraction_for_cost_below(self, cost: float) -> float:
        """Mean mitigation fraction over cells with bin centre below ``cost``."""
        centers = np.sqrt(self.ue_cost_edges[:-1] * self.ue_cost_edges[1:])
        mask = centers < cost
        cells = self.mitigation_fraction[:, mask]
        valid = ~np.isnan(cells)
        if not valid.any():
            return 0.0
        return float(np.nanmean(cells))


def behavior_grid(
    rl_policy: MitigationPolicy,
    sc20_policy: SC20RandomForestPolicy,
    features: np.ndarray,
    ue_cost_range: Sequence[float] = (1.0, 1e6),
    n_cost_bins: int = 12,
    n_probability_bins: int = 10,
    costs_per_event: int = 8,
    seed: int = 0,
) -> BehaviorGrid:
    """Compute the Figure 6 grid.

    For every telemetry feature vector the SC20 forest provides the y-axis
    coordinate (UE likelihood); the x-axis is swept by sampling
    ``costs_per_event`` potential UE costs log-uniformly over
    ``ue_cost_range`` — exactly the quantity the environment would supply —
    and the RL policy is queried for each (event, cost) pair.
    """
    check_positive("n_cost_bins", n_cost_bins)
    check_positive("n_probability_bins", n_probability_bins)
    check_positive("costs_per_event", costs_per_event)
    features = np.atleast_2d(np.asarray(features, dtype=float))
    if features.shape[0] == 0:
        raise ValueError("behaviour grid needs at least one event")
    lo, hi = float(ue_cost_range[0]), float(ue_cost_range[1])
    if not (0 < lo < hi):
        raise ValueError("ue_cost_range must be increasing and positive")

    rng = np.random.default_rng(seed)
    cost_edges = np.logspace(np.log10(lo), np.log10(hi), n_cost_bins + 1)
    probability_edges = np.linspace(0.0, 1.0, n_probability_bins + 1)

    probabilities = sc20_policy.predict_probabilities(features)
    prob_bins = np.clip(
        np.digitize(probabilities, probability_edges) - 1, 0, n_probability_bins - 1
    )

    mitigations = np.zeros((n_probability_bins, n_cost_bins))
    counts = np.zeros((n_probability_bins, n_cost_bins))

    for event_index in range(features.shape[0]):
        sampled_costs = np.exp(
            rng.uniform(np.log(lo), np.log(hi), size=costs_per_event)
        )
        for cost in sampled_costs:
            context = DecisionContext(
                time=0.0,
                node=-1,
                features=features[event_index],
                ue_cost=float(cost),
            )
            decided = rl_policy.decide(context)
            x = int(
                np.clip(np.digitize(cost, cost_edges) - 1, 0, n_cost_bins - 1)
            )
            y = int(prob_bins[event_index])
            counts[y, x] += 1
            if decided:
                mitigations[y, x] += 1

    with np.errstate(invalid="ignore", divide="ignore"):
        fraction = np.where(counts > 0, mitigations / np.maximum(counts, 1), np.nan)
    return BehaviorGrid(
        ue_cost_edges=cost_edges,
        probability_edges=probability_edges,
        mitigation_fraction=fraction,
        counts=counts,
    )
