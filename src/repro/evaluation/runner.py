"""Policy roll-out over the test portion of the error log.

Every policy is replayed over exactly the same per-node *evaluation traces*:
the merged telemetry events of the test range plus a job timeline sampled
once per node (deterministically from the scenario seed), so that all
approaches are charged against identical UEs and identical job states.  The
runner accumulates the cost–benefit breakdown of Section 4.3 and the
classical ML confusion counts of Section 4.4.

Replay is vectorized (the *decision core*): policies implementing
``MitigationPolicy.decide_batch`` decide a whole trace per call, and the
cost accounting becomes a segmented scan over the resulting decision mask —
the mitigation-dependent UE-cost resets are reconstructed from
forward-filled last-mitigation/last-UE indices instead of being carried
event by event.  Policies whose decisions *feed back* into the potential UE
cost (``cost_dependent`` — the RL agent and Myopic-RF — with restartable
jobs) are resolved through a renewal walk: decisions are batch-computed
under the running last-mitigation assumption and re-batched only over the
remainder of the job a fresh mitigation actually affects.  The walk runs in
*lockstep* across the whole trace panel: every trace keeps a frontier
cursor, each round concatenates the open speculative windows of all traces
into one ``MitigationPolicy.decide_windows`` call (and one segmented cost
computation), and traces retire from the frontier as they finish — so the
per-window Python and dispatch overhead that used to dominate restart=on
replay is paid once per *round* instead of once per window.  Every
floating-point operation is applied element-wise in the order of the
historical scalar loop (totals fold with ``np.add.accumulate``), so results
are bit-identical; the scalar per-event path remains as the tested fallback
for user-registered policies without ``decide_batch`` (and for
``ue_cost_fn`` overrides, whose per-event callbacks cannot be batched).
The hottest residual loops optionally dispatch to the compiled kernels of
:mod:`repro.core.kernels` (``ExperimentConfig.compiled``), which perform
the identical element-wise operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.features import NodeFeatureTrack
from repro.core.policies import (
    DecisionContext,
    MitigationPolicy,
    WindowSpec,
    concat_ranges,
)
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.metrics import ConfusionCounts
from repro.utils.rng import RngFactory
from repro.utils.timeutils import DAY, HOUR
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.sampling import JobSequenceSampler, NodeJobTimeline

#: Signature of an optional override of the potential UE cost used at each
#: event: ``fn(trace, event_index, time, default_cost) -> cost``.
UECostFn = Callable[["EvaluationTrace", int, float, float], float]


@dataclass(frozen=True)
class EvaluationTrace:
    """Replayable test-range trace of one node."""

    node: int
    times: np.ndarray
    features: np.ndarray
    is_ue: np.ndarray
    is_last_before_ue: np.ndarray
    timeline: NodeJobTimeline

    def __post_init__(self) -> None:
        n = len(self.times)
        if not (
            len(self.features) == n
            and len(self.is_ue) == n
            and len(self.is_last_before_ue) == n
        ):
            raise ValueError("trace arrays must be aligned")

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def n_ues(self) -> int:
        return int(np.count_nonzero(self.is_ue))

    @property
    def n_decision_points(self) -> int:
        return int(np.count_nonzero(~self.is_ue))


@dataclass(frozen=True)
class PolicyEvaluation:
    """Outcome of replaying one policy over a set of traces."""

    policy_name: str
    costs: CostBreakdown
    confusion: ConfusionCounts
    n_traces: int
    n_decision_points: int

    @property
    def total_cost(self) -> float:
        """Total lost node–hours."""
        return self.costs.total

    def to_dict(self) -> Dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import tag

        return tag(
            "policy_evaluation",
            {
                "policy_name": self.policy_name,
                "costs": self.costs.to_dict(),
                "confusion": self.confusion.to_dict(),
                "n_traces": self.n_traces,
                "n_decision_points": self.n_decision_points,
            },
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "PolicyEvaluation":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import untag

        payload = untag(data, "policy_evaluation")
        return cls(
            policy_name=payload["policy_name"],
            costs=CostBreakdown.from_dict(payload["costs"]),
            confusion=ConfusionCounts.from_dict(payload["confusion"]),
            n_traces=payload["n_traces"],
            n_decision_points=payload["n_decision_points"],
        )


def build_traces(
    tracks: Dict[int, NodeFeatureTrack],
    job_sampler: JobSequenceSampler,
    t_start: float,
    t_end: float,
    seed: int = 0,
    oracle_window_seconds: float = DAY,
) -> List[EvaluationTrace]:
    """Build per-node evaluation traces for the ``[t_start, t_end)`` range.

    The job timeline of each node is sampled with an RNG derived from
    ``seed`` and the node id, so repeated calls (and different policies)
    see identical workloads.

    ``oracle_window_seconds`` bounds the Oracle hint: an event is flagged as
    "last event before a UE" only when the UE follows within that window
    (the paper's Oracle performs exactly one mitigation per *predictable* UE
    — UEs with no event in the preceding day are not mitigated by any
    event-triggered policy, including the Oracle).
    """
    check_positive("time range", t_end - t_start)
    factory = RngFactory(seed)
    traces: List[EvaluationTrace] = []
    for node in sorted(tracks):
        track = tracks[node].slice_time(t_start, t_end)
        if len(track) == 0:
            continue
        is_last_before_ue = np.zeros(len(track), dtype=bool)
        if len(track) > 1:
            is_last_before_ue[:-1] = (
                track.is_ue[1:]
                & ~track.is_ue[:-1]
                & (np.diff(track.times) <= oracle_window_seconds)
            )
        timeline = job_sampler.sample_timeline(
            t_start, t_end, rng=factory.stream(f"node-{node}")
        )
        traces.append(
            EvaluationTrace(
                node=node,
                times=track.times,
                features=track.features,
                is_ue=track.is_ue,
                is_last_before_ue=is_last_before_ue,
                timeline=timeline,
            )
        )
    return traces


@dataclass
class _ReplayAccumulator:
    """Counters and cost streams collected while replaying traces.

    The float totals are folded only at the end: per-event UE costs are
    collected per trace (in event order) and left-folded with
    ``np.add.accumulate``, which matches the scalar loop's running
    ``total += cost`` additions bit for bit; the mitigation total is the
    same fold of ``mitigation_cost`` repeated once per mitigation.
    """

    n_ues: int = 0
    n_mitigations: int = 0
    n_no_actions: int = 0
    true_positives: int = 0
    n_ues_without_preceding_event: int = 0
    n_decision_points: int = 0
    ue_cost_chunks: List[np.ndarray] = field(default_factory=list)

    def ue_cost_total(self) -> float:
        if not self.ue_cost_chunks:
            return 0.0
        costs = np.concatenate(self.ue_cost_chunks)
        if costs.size == 0:
            return 0.0
        return float(np.add.accumulate(costs)[-1])

    def mitigation_cost_total(self, mitigation_cost: float) -> float:
        if self.n_mitigations == 0:
            return 0.0
        repeated = np.full(self.n_mitigations, mitigation_cost)
        return float(np.add.accumulate(repeated)[-1])


def _timeline_job_arrays(
    trace: EvaluationTrace,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-event ``(job_start, job_n_nodes)`` — vectorized ``timeline.job_at``.

    Memoised on the (immutable) trace: the arrays are a pure function of the
    trace's event times and job timeline, and every policy × restartable
    combination of a replay panel asks for the same ones.
    """
    cached = trace.__dict__.get("_job_arrays")
    if cached is not None:
        return cached
    timeline = trace.timeline
    position = np.searchsorted(timeline.starts, trace.times, side="right") - 1
    position = np.clip(position, 0, len(timeline.starts) - 1)
    arrays = (timeline.starts[position], timeline.n_nodes[position])
    object.__setattr__(trace, "_job_arrays", arrays)
    return arrays


def _candidate_decisions(
    trace: EvaluationTrace,
    policy: MitigationPolicy,
    job_start: np.ndarray,
    job_nodes: np.ndarray,
) -> Optional[np.ndarray]:
    """Whole-trace decision mask under the no-mitigation cost baseline.

    Decisions of cost-independent policies — and of cost-dependent ones
    when mitigations cannot reset the UE cost (``restartable=False``) —
    resolve in this single batch: the potential cost of every event is the
    no-mitigation baseline either way.  With restartable jobs the result is
    the *candidate* mask the lockstep renewal walk starts from (see
    :func:`_lockstep_walk`).  Returns ``None`` when the policy declines,
    sending the caller down the scalar path.  Every per-event cost is
    computed with the same element-wise operations as
    ``NodeJobTimeline.potential_ue_cost``.
    """
    n = len(trace)
    if not policy.cost_dependent:
        mask = policy.decide_batch(trace)
    else:
        base_costs = job_nodes * np.maximum(0.0, trace.times - job_start) / HOUR
        mask = policy.decide_batch(trace, ue_costs=base_costs)
    if mask is None:
        return None
    mask = np.array(mask, dtype=bool, copy=True)
    if mask.shape != (n,):
        raise ValueError(
            f"decide_batch of {policy.name!r} returned shape {mask.shape}, "
            f"expected ({n},)"
        )
    mask[np.asarray(trace.is_ue, dtype=bool)] = False
    return mask


#: Cumulative statistics of the lockstep renewal walk (reset via
#: :func:`reset_renewal_walk_stats`): ``rounds`` counts ``decide_windows``
#: calls, ``windows`` the speculative windows submitted across all rounds,
#: ``retries`` the seeded continuation windows among them (windows whose
#: initial guess is the unconfirmed decision suffix of the previous
#: window — the lockstep analog of a fixpoint retry).
_WALK_STATS = {"rounds": 0, "windows": 0, "retries": 0}

#: Window-scheduling knobs of the lockstep walk.  Pure performance tuning:
#: the resolved mask is the unique fixpoint of the confirm-prefix rule, so
#: any window size or retry policy yields the same decisions (pinned by the
#: scalar-vs-vector equivalence suite); only the number of rounds and the
#: batched rows per round move.  ``_WALK_CHUNK`` is the fresh window width
#: (doubled on fully consumed windows, reset at the next baseline-regime
#: mitigation).  Partially consumed windows hand the unconfirmed suffix of
#: their observed decisions to the next window as its initial guess (a
#: "seeded" window) — the informative part of a classical fixpoint retry
#: without re-deciding the already-final prefix; seeds shorter than the
#: chunk are padded with the precomputed candidate decisions.
_WALK_CHUNK = 48


def renewal_walk_stats() -> Dict[str, int]:
    """Snapshot of the lockstep renewal-walk counters (see ``_WALK_STATS``)."""
    return dict(_WALK_STATS)


def reset_renewal_walk_stats() -> None:
    """Zero the lockstep renewal-walk counters (benchmark bookkeeping)."""
    for key in _WALK_STATS:
        _WALK_STATS[key] = 0


@dataclass
class _PanelArrays:
    """Panel-concatenated event arrays of one replay.

    Built once per batched replay and shared by the lockstep walk and the
    panel accounting; ``bounds[k]:bounds[k+1]`` is trace ``k``'s row range.
    ``candidates`` (the baseline-cost candidate decision mask, see
    :func:`_panel_candidates`) is attached once the policy has answered.
    """

    bounds: np.ndarray
    times: np.ndarray
    is_ue: np.ndarray
    job_start: np.ndarray
    job_nodes: np.ndarray
    candidates: Optional[np.ndarray] = None


def _panel_arrays(
    panel: Sequence[Tuple[EvaluationTrace, np.ndarray, np.ndarray]],
) -> _PanelArrays:
    """Concatenate a (non-empty) panel's per-trace arrays."""
    n_traces = len(panel)
    lengths = np.fromiter(
        (len(trace) for trace, _, _ in panel), dtype=np.int64, count=n_traces
    )
    bounds = np.empty(n_traces + 1, dtype=np.int64)
    bounds[0] = 0
    np.cumsum(lengths, out=bounds[1:])
    return _PanelArrays(
        bounds=bounds,
        times=np.concatenate([trace.times for trace, _, _ in panel]),
        is_ue=np.concatenate(
            [np.asarray(trace.is_ue, dtype=bool) for trace, _, _ in panel]
        ),
        job_start=np.concatenate([entry[1] for entry in panel]),
        job_nodes=np.concatenate([entry[2] for entry in panel]),
    )


def _panel_candidates(
    panel: Sequence[Tuple[EvaluationTrace, np.ndarray, np.ndarray]],
    arrays: _PanelArrays,
    policy: MitigationPolicy,
) -> Optional[np.ndarray]:
    """Whole-panel candidate mask of a cost-dependent policy, in one call.

    The candidate decisions (see :func:`_candidate_decisions`) of every
    trace depend only on the no-mitigation baseline costs, so the whole
    panel resolves as a single ``decide_windows`` call — one batched model
    evaluation instead of one ``decide_batch`` per trace.  Returns ``None``
    when the policy declines (the caller falls back to the scalar path).
    """
    base_costs = (
        arrays.job_nodes * np.maximum(0.0, arrays.times - arrays.job_start) / HOUR
    )
    windows = [(trace, 0, len(trace)) for trace, _, _ in panel]
    result = policy.decide_windows(windows, ue_costs=base_costs)
    if result is None:
        return None
    mask = np.array(result, dtype=bool, copy=True)
    n_total = int(arrays.bounds[-1])
    if mask.shape != (n_total,):
        raise ValueError(
            f"decide_windows of {policy.name!r} returned shape {mask.shape}, "
            f"expected ({n_total},)"
        )
    mask[arrays.is_ue] = False
    return mask


class _Frontier:
    """Per-trace cursor state of the lockstep renewal walk.

    Replays the renewal walk of one trace — the same two regimes, window
    guesses, and chunk doubling as the historical per-trace walk — but
    pauses whenever a speculative window needs the policy, so the runner
    can answer every paused trace's window with one batched
    ``decide_windows`` call per round.
    """

    __slots__ = (
        "trace",
        "n",
        "times",
        "is_ue",
        "job_start",
        "resolved",
        "breaks",
        "candidates",
        "pointer",
        "i0",
        "stop",
        "last_mitigation",
        "chunk",
        "guess",
        "leftover",
        "base",
    )

    def __init__(
        self,
        trace: EvaluationTrace,
        base: int,
        times: np.ndarray,
        is_ue: np.ndarray,
        job_start: np.ndarray,
        resolved: np.ndarray,
        breaks: np.ndarray,
        candidates: np.ndarray,
    ) -> None:
        # All arrays are this trace's views into the panel-concatenated
        # arrays (``resolved`` writes through to the walk's global mask);
        # ``breaks`` holds the trace-relative UE/candidate positions.
        self.trace = trace
        self.n = int(times.shape[0])
        self.times = times
        self.is_ue = is_ue
        self.job_start = job_start
        self.resolved = resolved
        self.breaks = breaks
        self.candidates = candidates
        self.pointer = 0
        self.i0 = 0
        self.stop = 0
        self.last_mitigation: Optional[float] = None
        self.chunk = _WALK_CHUNK
        self.guess: Optional[np.ndarray] = None
        #: Unconfirmed decision suffix of the last window, used as the next
        #: window's guess while the cursor stays inside the same regime.
        self.leftover: Optional[np.ndarray] = None
        #: Row offset of this trace in the panel-concatenated event arrays.
        self.base = base

    def advance(self) -> bool:
        """Run the baseline regime until the next speculative window.

        Baseline — no live mitigation influences the next event (the last
        one was forgotten at a UE, or the running job started after it, and
        job starts are nondecreasing): the precomputed candidate decisions
        apply verbatim, no policy calls; jump straight to the next
        UE/candidate mitigation.  Returns ``True`` with a fresh speculative
        window prepared (``[i0, stop)`` plus its initial guess) when a live
        mitigation changes upcoming costs, ``False`` when the trace is
        finished and retires from the frontier.
        """
        while self.i0 < self.n:
            if (
                self.last_mitigation is None
                or self.job_start[self.i0] >= self.last_mitigation
            ):
                # Crossing into the baseline regime invalidates any seeded
                # guess (it was aligned with the speculative cursor).
                self.leftover = None
                while (
                    self.pointer < len(self.breaks)
                    and self.breaks[self.pointer] < self.i0
                ):
                    self.pointer += 1
                if self.pointer == len(self.breaks):
                    self.i0 = self.n
                    return False
                j = int(self.breaks[self.pointer])
                if self.is_ue[j]:
                    self.last_mitigation = None
                else:
                    self.resolved[j] = True
                    self.last_mitigation = float(self.times[j])
                    self.chunk = _WALK_CHUNK
                self.i0 = j + 1
                continue
            leftover = self.leftover
            self.leftover = None
            if leftover is not None and leftover.size:
                # Seeded window: the previous window's unconfirmed decision
                # suffix is the best available guess for the events right
                # after its accepted prefix (same regime, so still aligned).
                # Padded out to the chunk width (with the precomputed
                # baseline-cost candidate decisions) so a confirm can run
                # past the seed instead of stopping at its end and opening
                # yet another window.
                stop = min(self.i0 + max(leftover.size, self.chunk), self.n)
                width = stop - self.i0
                if width > leftover.size:
                    guess = self.candidates[self.i0 : stop].copy()
                    guess[: leftover.size] = leftover
                else:
                    guess = leftover
                self.stop = stop
                self.guess = guess
                _WALK_STATS["retries"] += 1
                return True
            # Fresh window.  Initial guess: the precomputed baseline-cost
            # candidate decisions (already False at UEs) — the policy's own
            # behavior pattern under the cost regime the window converges
            # back to.
            self.stop = min(self.i0 + self.chunk, self.n)
            self.guess = self.candidates[self.i0 : self.stop]
            return True
        return False

    def accept(
        self,
        consumed: int,
        decisions: np.ndarray,
        last_mit_rel: int,
        last_ue_rel: int,
    ) -> None:
        """Consume this round's confirmed prefix and advance the cursor.

        ``decisions`` is the window's observed decision vector;
        ``last_mit_rel``/``last_ue_rel`` are the offsets of the last
        mitigation decision and last UE within the consumed prefix (``-1``
        when absent), precomputed per round for all windows at once.  The
        unconfirmed suffix becomes the next window's guess seed.
        """
        i0 = self.i0
        self.resolved[i0 : i0 + consumed] = decisions[:consumed]
        if last_ue_rel > last_mit_rel:
            self.last_mitigation = None
        elif last_mit_rel >= 0:
            self.last_mitigation = float(self.times[i0 + last_mit_rel])
        width = self.stop - i0
        self.i0 = i0 + consumed
        if consumed == width:
            self.chunk = self.chunk * 2
            self.leftover = None
        else:
            self.chunk = _WALK_CHUNK
            # A view is safe: the round's decision buffer is never reused.
            self.leftover = decisions[consumed:]


def _lockstep_walk(
    panel: Sequence[Tuple[EvaluationTrace, np.ndarray, np.ndarray]],
    arrays: _PanelArrays,
    policy: MitigationPolicy,
) -> Optional[np.ndarray]:
    """Resolve the cost-feedback renewal walk of every trace in lockstep.

    ``panel`` carries ``(trace, job_start, job_nodes)`` per
    trace; ``arrays`` their panel-wide concatenation (see
    :func:`_panel_arrays`).  Each trace replays the same renewal walk as
    before — candidate
    decisions apply verbatim while no live mitigation influences the next
    event; otherwise guess a window's decisions, derive each event's
    implied last-mitigation cost reference from the guess, decide under
    those costs, and consume the longest prefix on which the decisions
    confirm the guess *plus one* (the first divergent decision only depends
    on the confirmed prefix, so it is valid too), seeding the next window's
    guess with the unconfirmed decision suffix — but all traces' open
    windows are answered by a single
    ``decide_windows`` call per round, and the cost references of the whole
    round are derived with one segmented scan over the concatenation
    (global ``maximum.accumulate`` positions clamped at each window's
    start, which reproduces the per-window scans exactly because positions
    from earlier windows are always below the current window's start).

    Returns the panel-concatenated resolved mask (sliced per trace by
    ``arrays.bounds``), or ``None`` when the policy declines a window
    batch — the caller then replays the panel scalar (batch support is a
    property of the policy, not of one trace).
    """
    trace_bounds = arrays.bounds
    ue_all = arrays.is_ue
    resolved_all = np.zeros(ue_all.size, dtype=bool)
    breaks_all = np.flatnonzero(ue_all | arrays.candidates)
    break_bounds = np.searchsorted(breaks_all, trace_bounds, side="left")
    frontiers: List[_Frontier] = []
    for k, (trace, _, _) in enumerate(panel):
        a = int(trace_bounds[k])
        b = int(trace_bounds[k + 1])
        frontiers.append(
            _Frontier(
                trace,
                a,
                arrays.times[a:b],
                ue_all[a:b],
                arrays.job_start[a:b],
                resolved_all[a:b],
                breaks_all[break_bounds[k] : break_bounds[k + 1]] - a,
                arrays.candidates[a:b],
            )
        )
    pending = [frontier for frontier in frontiers if frontier.advance()]

    if pending:
        # Times/job-start/job-nodes stacked into one float matrix (a
        # single fancy-index gathers all three per round) and a reusable
        # position ramp sliced per round instead of re-allocated.
        panel_f = np.vstack([arrays.times, arrays.job_start, arrays.job_nodes])
        positions_all = np.arange(panel_f.shape[1], dtype=np.int64)

    while pending:
        _WALK_STATS["rounds"] += 1
        _WALK_STATS["windows"] += len(pending)
        n_windows = len(pending)
        starts = np.empty(n_windows, dtype=np.int64)
        stops = np.empty(n_windows, dtype=np.int64)
        lm = np.empty(n_windows, dtype=np.float64)
        guesses: List[np.ndarray] = []
        windows: List[WindowSpec] = []
        for k, frontier in enumerate(pending):
            starts[k] = frontier.base + frontier.i0
            stops[k] = frontier.base + frontier.stop
            last_mitigation = frontier.last_mitigation
            lm[k] = -np.inf if last_mitigation is None else last_mitigation
            guesses.append(frontier.guess)
            windows.append((frontier.trace, frontier.i0, frontier.stop))
        rows, widths = concat_ranges(starts, stops)
        total = int(rows.size)
        bounds = np.empty(n_windows + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(widths, out=bounds[1:])

        gathered = panel_f[:, rows]
        times_c = gathered[0]
        job_start_c = gathered[1]
        job_nodes_c = gathered[2]
        ue_c = ue_all[rows]
        guess_c = np.concatenate(guesses)
        lm_row = lm.repeat(widths)
        window_start_row = bounds[:-1].repeat(widths)

        # Cost reference implied by the guesses: the latest guessed
        # mitigation not separated by a UE, falling back to the window's
        # incoming one.  One segmented scan over the whole round: the
        # global accumulate positions of earlier windows are < the current
        # window's start, so clamping at ``window_start_row`` recovers the
        # per-window "no previous mitigation/UE" (-1) states exactly.
        positions = positions_all[:total]
        guess_accumulate = np.maximum.accumulate(np.where(guess_c, positions, -1))
        ue_accumulate = np.maximum.accumulate(np.where(ue_c, positions, -1))
        previous_mit = np.empty(total, dtype=np.int64)
        previous_mit[0] = -1
        previous_mit[1:] = guess_accumulate[:-1]
        previous_ue = np.empty(total, dtype=np.int64)
        previous_ue[0] = -1
        previous_ue[1:] = ue_accumulate[:-1]
        mit_in = previous_mit >= window_start_row
        ue_in = previous_ue >= window_start_row
        internal = mit_in & (previous_mit > previous_ue)
        reference_times = np.where(~mit_in & ~ue_in, lm_row, -np.inf)
        reference_times = np.where(
            internal, times_c[np.maximum(previous_mit, 0)], reference_times
        )
        reference = np.maximum(job_start_c, reference_times)
        costs_c = job_nodes_c * np.maximum(0.0, times_c - reference) / HOUR

        result = policy.decide_windows(windows, ue_costs=costs_c)
        if result is None:
            # The policy declined the window batch (its right under the
            # decide_windows contract): abandon the batch resolution and
            # let the caller replay the panel scalar.
            return None
        decisions_c = np.asarray(result, dtype=bool)
        if decisions_c.shape != (total,):
            raise ValueError(
                f"decide_windows of {policy.name!r} returned shape "
                f"{decisions_c.shape}, expected ({total},)"
            )
        decisions_c = decisions_c & ~ue_c

        # First divergence (and thus the consumed prefix) of every window
        # from one global comparison.
        divergent = np.flatnonzero(decisions_c != guess_c)
        first_at = np.searchsorted(divergent, bounds[:-1])
        padded = np.append(divergent, total)
        first_divergent = padded[np.minimum(first_at, divergent.size)]
        confirmed = np.where(
            first_divergent < bounds[1:], first_divergent - bounds[:-1], widths
        )
        consumed_all = np.minimum(confirmed + 1, widths)

        # Last mitigation/UE inside every window's consumed prefix, from
        # the same kind of segmented scan (clamped at each window's start;
        # the UE scan is the one already computed for the cost references).
        mit_accumulate = np.maximum.accumulate(np.where(decisions_c, positions, -1))
        prefix_end = bounds[:-1] + consumed_all - 1
        last_mit = mit_accumulate[prefix_end]
        last_ue = ue_accumulate[prefix_end]
        mit_rel_all = np.where(last_mit >= bounds[:-1], last_mit - bounds[:-1], -1)
        ue_rel_all = np.where(last_ue >= bounds[:-1], last_ue - bounds[:-1], -1)

        still_pending: List[_Frontier] = []
        for k, frontier in enumerate(pending):
            frontier.accept(
                int(consumed_all[k]),
                decisions_c[bounds[k] : bounds[k + 1]],
                int(mit_rel_all[k]),
                int(ue_rel_all[k]),
            )
            if frontier.advance():
                still_pending.append(frontier)
        pending = still_pending

    return resolved_all


def _account_panel(
    panel: Sequence[Tuple[EvaluationTrace, np.ndarray, np.ndarray]],
    arrays: _PanelArrays,
    mask_all: np.ndarray,
    accumulator: _ReplayAccumulator,
    restartable: bool,
    prediction_window_seconds: float,
    mitigation_overhead_seconds: float,
) -> None:
    """Cost/metric accounting of a whole panel of resolved decision masks.

    Reconstructs, for every event, the last mitigation that survives up to
    it (a mitigation is forgotten at the next UE — the node reboots) from
    forward-filled indices and recomputes the per-event potential UE cost
    under that reference — for the whole panel at once: clamping the
    forward-filled global mitigation/UE positions at each trace's first
    row reproduces the per-trace "no previous mitigation/UE" states
    exactly (positions from earlier traces are always below it), and the
    single UE-cost chunk appended at the end is the per-trace chunks
    concatenated in trace order — so the accumulator's left-folded totals
    are bit-identical to per-trace accounting (and to the scalar event
    loop).  Only the classical ML metrics (searchsorted range counts over
    each trace's own sorted times) stay per trace.
    """
    if not panel:
        return
    bounds = arrays.bounds
    lengths = np.diff(bounds)
    n_total = int(bounds[-1])
    times_all = arrays.times
    ue_all = arrays.is_ue
    job_start_all = arrays.job_start
    job_nodes_all = arrays.job_nodes

    ue_pos_global = np.flatnonzero(ue_all)
    mit_pos_global = np.flatnonzero(mask_all)
    n_ues_total = int(ue_pos_global.size)
    n_mit_total = int(mit_pos_global.size)
    accumulator.n_ues += n_ues_total
    accumulator.n_mitigations += n_mit_total
    accumulator.n_decision_points += n_total - n_ues_total
    accumulator.n_no_actions += (n_total - n_ues_total) - n_mit_total
    if n_ues_total == 0:
        return

    compiled = kernels.active()
    if restartable and n_mit_total and compiled is not None:
        costs_all = np.empty(n_total, dtype=np.float64)
        for k in range(len(panel)):
            a = int(bounds[k])
            b = int(bounds[k + 1])
            costs_all[a:b] = compiled.account_costs(
                np.ascontiguousarray(times_all[a:b], dtype=np.float64),
                ue_all[a:b],
                np.ascontiguousarray(mask_all[a:b], dtype=bool),
                np.ascontiguousarray(job_start_all[a:b], dtype=np.float64),
                np.ascontiguousarray(job_nodes_all[a:b], dtype=np.float64),
                HOUR,
            )
    elif restartable and n_mit_total:
        positions = np.arange(n_total, dtype=np.int64)
        trace_start_row = np.repeat(bounds[:-1], lengths)
        previous_mit = np.concatenate(
            [[-1], np.maximum.accumulate(np.where(mask_all, positions, -1))[:-1]]
        )
        previous_ue = np.concatenate(
            [[-1], np.maximum.accumulate(np.where(ue_all, positions, -1))[:-1]]
        )
        live = (previous_mit >= trace_start_row) & (previous_mit > previous_ue)
        reference = np.where(
            live,
            np.maximum(job_start_all, times_all[np.maximum(previous_mit, 0)]),
            job_start_all,
        )
        costs_all = job_nodes_all * np.maximum(0.0, times_all - reference) / HOUR
    else:
        costs_all = (
            job_nodes_all * np.maximum(0.0, times_all - job_start_all) / HOUR
        )
    accumulator.ue_cost_chunks.append(costs_all[ue_pos_global])

    # Classical ML metrics: each trace's searchsorted range counts run over
    # its own (sorted) times, so they stay per trace — sliced out of the
    # global UE/mitigation position lists instead of re-scanning each mask.
    ue_lo = np.searchsorted(ue_pos_global, bounds[:-1], side="left")
    ue_hi = np.searchsorted(ue_pos_global, bounds[1:], side="left")
    mit_lo = np.searchsorted(mit_pos_global, bounds[:-1], side="left")
    mit_hi = np.searchsorted(mit_pos_global, bounds[1:], side="left")
    for k, (trace, _, _) in enumerate(panel):
        if ue_hi[k] == ue_lo[k]:
            continue
        base = bounds[k]
        ue_positions = ue_pos_global[ue_lo[k] : ue_hi[k]] - base
        mitigation_positions = mit_pos_global[mit_lo[k] : mit_hi[k]] - base
        times = trace.times
        is_ue = ue_all[bounds[k] : bounds[k + 1]]

        ue_times = times[ue_positions]
        window_start = ue_times - prediction_window_seconds
        latest_complete = ue_times - mitigation_overhead_seconds
        mitigation_times = times[mitigation_positions]
        visible = np.searchsorted(mitigation_positions, ue_positions, side="left")
        low = np.searchsorted(mitigation_times, window_start, side="left")
        high = np.searchsorted(mitigation_times, latest_complete, side="right")
        completed = np.minimum(high, visible) > low
        accumulator.true_positives += int(np.count_nonzero(completed))

        non_ue_before = np.concatenate(
            [[0], np.add.accumulate((~is_ue).astype(np.int64))]
        )
        first_in_window = np.searchsorted(times, window_start, side="left")
        first_at_time = np.searchsorted(times, ue_times, side="left")
        upper = np.minimum(first_at_time, ue_positions)
        lower = np.minimum(first_in_window, upper)
        preceding = non_ue_before[upper] - non_ue_before[lower]
        accumulator.n_ues_without_preceding_event += int(
            np.count_nonzero(preceding == 0)
        )


def _resolve_panel_masks(
    traces: Sequence[EvaluationTrace],
    policy: MitigationPolicy,
    restartable: bool,
) -> Optional[Tuple[List[Tuple[EvaluationTrace, np.ndarray, np.ndarray]], Optional[_PanelArrays], Optional[np.ndarray]]]:
    """Resolve every trace's final decision mask through the batched core.

    This is the whole vectorized decision pipeline minus the accounting:
    per-trace hooks and candidate masks (in trace order, exactly as the
    scalar path runs them), then — for cost-dependent policies under
    restartable jobs — the lockstep renewal walk.  Callers must have called
    ``policy.prepare_traces(traces)`` beforehand (and are responsible for
    releasing the bulk caches afterwards).

    Returns ``(panel, arrays, resolved)`` where ``resolved`` is the
    panel-concatenated final mask (``arrays.bounds`` slices it per trace),
    or ``None`` when the policy declines anywhere — batch support is a
    property of the policy, not of one trace, so the caller falls back to
    the scalar path wholesale.  An empty ``traces`` yields ``([], None,
    None)``.
    """
    panel: List[Tuple[EvaluationTrace, np.ndarray, np.ndarray]] = []
    chunks: List[np.ndarray] = []
    for trace in traces:
        policy.reset()
        policy.prepare_trace(trace.features)
        job_start, job_nodes = _timeline_job_arrays(trace)
        if not policy.cost_dependent:
            # Cost-independent candidates stay per trace, right after the
            # trace's own hooks (the pairing the scalar path has).
            mask = _candidate_decisions(trace, policy, job_start, job_nodes)
            if mask is None:
                return None
            chunks.append(mask)
        panel.append((trace, job_start, job_nodes))
    if not panel:
        return [], None, None
    arrays = _panel_arrays(panel)
    if policy.cost_dependent:
        arrays.candidates = _panel_candidates(panel, arrays, policy)
        if arrays.candidates is None:
            return None
    else:
        arrays.candidates = np.concatenate(chunks)
    if policy.cost_dependent and restartable:
        resolved = _lockstep_walk(panel, arrays, policy)
        if resolved is None:
            return None
    else:
        resolved = arrays.candidates
    return panel, arrays, resolved


def replay_decision_masks(
    traces: Sequence[EvaluationTrace],
    policy: MitigationPolicy,
    restartable: bool = True,
    vectorized: bool = True,
) -> List[np.ndarray]:
    """Per-trace decision masks of a replay — what ``evaluate_policy`` accounts.

    Returns one boolean array per trace (aligned with ``traces``), True where
    the policy triggers a mitigation; entries at UE events are always False.
    This is the *offline reference* the online serving equivalence is tested
    against: the masks come from the same candidate/lockstep machinery as
    ``evaluate_policy`` (or, with ``vectorized=False`` or when the policy
    declines batching, from the same sequential ``decide()`` replay with
    mitigation-cost feedback), so they are bit-identical to the decisions an
    evaluation of the same panel charges.
    """
    if vectorized:
        policy.prepare_traces(traces)
        resolution = _resolve_panel_masks(traces, policy, restartable)
        policy.prepare_traces(())
        if resolution is not None:
            panel, arrays, resolved = resolution
            if not panel:
                return []
            bounds = arrays.bounds
            return [
                np.array(
                    resolved[int(bounds[k]) : int(bounds[k + 1])],
                    dtype=bool,
                    copy=True,
                )
                for k in range(len(panel))
            ]
    masks: List[np.ndarray] = []
    for trace in traces:
        policy.reset()
        policy.prepare_trace(trace.features)
        mask = np.zeros(len(trace), dtype=bool)
        last_mitigation: Optional[float] = None
        for i in range(len(trace)):
            t = float(trace.times[i])
            if trace.is_ue[i]:
                last_mitigation = None
                continue
            cost = trace.timeline.potential_ue_cost(t, last_mitigation, restartable)
            context = DecisionContext(
                time=t,
                node=trace.node,
                features=trace.features[i],
                ue_cost=cost,
                is_last_event_before_ue=bool(trace.is_last_before_ue[i]),
                event_index=i,
            )
            if policy.decide(context):
                mask[i] = True
                last_mitigation = t
        masks.append(mask)
    return masks


def _replay_scalar(
    trace: EvaluationTrace,
    policy: MitigationPolicy,
    accumulator: _ReplayAccumulator,
    restartable: bool,
    prediction_window_seconds: float,
    mitigation_overhead_seconds: float,
    ue_cost_fn: Optional[UECostFn],
) -> None:
    """Reference per-event replay of one trace (the decide() fallback path)."""
    last_mitigation: Optional[float] = None
    mitigation_times: List[float] = []
    ue_costs: List[float] = []

    for i in range(len(trace)):
        t = float(trace.times[i])
        default_cost = trace.timeline.potential_ue_cost(
            t, last_mitigation, restartable
        )
        if ue_cost_fn is not None:
            cost_now = float(ue_cost_fn(trace, i, t, default_cost))
        else:
            cost_now = default_cost

        if trace.is_ue[i]:
            accumulator.n_ues += 1
            ue_costs.append(cost_now)
            # Classical ML metrics bookkeeping (Section 4.4).
            window_start = t - prediction_window_seconds
            completed = [
                m
                for m in mitigation_times
                if window_start <= m <= t - mitigation_overhead_seconds
            ]
            has_preceding_event = bool(
                np.any(
                    (~trace.is_ue[:i])
                    & (trace.times[:i] >= window_start)
                    & (trace.times[:i] < t)
                )
            )
            if completed:
                accumulator.true_positives += 1
            if not has_preceding_event:
                accumulator.n_ues_without_preceding_event += 1
            # The node is rebooted after the UE; the next job starts fresh.
            last_mitigation = None
            continue

        accumulator.n_decision_points += 1
        context = DecisionContext(
            time=t,
            node=trace.node,
            features=trace.features[i],
            ue_cost=cost_now,
            is_last_event_before_ue=bool(trace.is_last_before_ue[i]),
            event_index=i,
        )
        if policy.decide(context):
            accumulator.n_mitigations += 1
            mitigation_times.append(t)
            last_mitigation = t
        else:
            accumulator.n_no_actions += 1

    accumulator.ue_cost_chunks.append(np.asarray(ue_costs, dtype=np.float64))


def evaluate_policy(
    traces: Sequence[EvaluationTrace],
    policy: MitigationPolicy,
    mitigation_cost: float,
    restartable: bool = True,
    prediction_window_seconds: float = DAY,
    mitigation_overhead_seconds: Optional[float] = None,
    include_training_cost: bool = True,
    ue_cost_fn: Optional[UECostFn] = None,
    vectorized: bool = True,
) -> PolicyEvaluation:
    """Replay ``policy`` over ``traces`` and account costs and metrics.

    Parameters
    ----------
    traces:
        Evaluation traces from :func:`build_traces`.
    policy:
        The mitigation policy under evaluation.
    mitigation_cost:
        Cost of one mitigation in node–hours.
    restartable:
        Whether a mitigation resets the potential UE cost (checkpointing).
    prediction_window_seconds:
        Window of the classical ML metrics (Section 4.4), default one day.
    mitigation_overhead_seconds:
        Wall-clock duration of a mitigation; a mitigation must have been
        initiated at least this long before a UE to count as completed.
        Defaults to the mitigation cost interpreted as minutes of wall-clock
        time on a single node.
    include_training_cost:
        Whether to charge ``policy.training_cost_node_hours`` to the total.
    ue_cost_fn:
        Optional override of the potential UE cost seen at each event (used
        by the Table 2 UE-cost-range analysis); receives the trace, event
        index, event time and the default timeline-derived cost.  Forces the
        scalar path: an arbitrary per-event callback cannot be batched.
    vectorized:
        Use the batched decision core for policies implementing
        ``decide_batch`` (the default).  ``False`` forces the per-event
        reference path for every policy — results are identical either way
        (the equivalence suite pins this); the flag exists for A/B
        measurement and debugging.
    """
    check_non_negative("mitigation_cost", mitigation_cost)
    check_positive("prediction_window_seconds", prediction_window_seconds)
    if mitigation_overhead_seconds is None:
        mitigation_overhead_seconds = mitigation_cost * 3600.0
    check_non_negative("mitigation_overhead_seconds", mitigation_overhead_seconds)

    accumulator = _ReplayAccumulator()
    use_batches = vectorized and ue_cost_fn is None
    prepared_bulk = use_batches
    if use_batches:
        # Bulk pre-computation across the whole replay (one batch predictor
        # call instead of one per trace); the scalar reference path below
        # never does this, so policies may treat it as a pure optimisation.
        policy.prepare_traces(traces)

    # Batched replay is two-phase: collect every trace's candidate mask
    # (one whole-trace decide_batch each, with the per-trace hooks run in
    # trace order, exactly as the scalar path runs them), then resolve the
    # cost-feedback renewal walk over the whole panel in lockstep and
    # account each mask.  Cost-independent (or restart=off) panels skip the
    # walk: their candidate masks are already final.  A decline anywhere —
    # batch support is a property of the policy, not of one trace — falls
    # back wholesale: the whole replay re-runs through the scalar reference
    # path, so the per-trace hook sequence and the order of the cost folds
    # stay exactly those of ``vectorized=False``.
    if use_batches:
        resolution = _resolve_panel_masks(traces, policy, restartable)
        if resolution is None:
            use_batches = False
        else:
            panel, arrays, resolved = resolution
            if panel:
                _account_panel(
                    panel,
                    arrays,
                    resolved,
                    accumulator,
                    restartable,
                    prediction_window_seconds,
                    mitigation_overhead_seconds,
                )

    if not use_batches:
        for trace in traces:
            policy.reset()
            policy.prepare_trace(trace.features)
            _replay_scalar(
                trace,
                policy,
                accumulator,
                restartable,
                prediction_window_seconds,
                mitigation_overhead_seconds,
                ue_cost_fn,
            )

    if prepared_bulk:
        # Release the per-policy bulk caches so a policy kept alive in the
        # results does not pin this replay's trace data.
        policy.prepare_traces(())

    n_ues = accumulator.n_ues
    n_mitigations = accumulator.n_mitigations
    true_positives = accumulator.true_positives
    false_negatives = n_ues - true_positives
    false_positives = n_mitigations - true_positives
    non_mitigations = (
        accumulator.n_no_actions + accumulator.n_ues_without_preceding_event
    )
    true_negatives = max(0, non_mitigations - false_negatives)

    training_cost = policy.training_cost_node_hours if include_training_cost else 0.0
    costs = CostBreakdown(
        ue_cost=accumulator.ue_cost_total(),
        mitigation_cost=accumulator.mitigation_cost_total(mitigation_cost),
        training_cost=training_cost,
        n_ues=n_ues,
        n_mitigations=n_mitigations,
    )
    confusion = ConfusionCounts(
        true_positives=true_positives,
        false_negatives=false_negatives,
        false_positives=false_positives,
        true_negatives=true_negatives,
    )
    return PolicyEvaluation(
        policy_name=policy.name,
        costs=costs,
        confusion=confusion,
        n_traces=len(traces),
        n_decision_points=accumulator.n_decision_points,
    )


def evaluate_policies(
    traces: Sequence[EvaluationTrace],
    policies: Sequence[MitigationPolicy],
    mitigation_cost: float,
    restartable: bool = True,
    prediction_window_seconds: float = DAY,
    **kwargs,
) -> Dict[str, PolicyEvaluation]:
    """Evaluate several policies over the same traces."""
    return {
        policy.name: evaluate_policy(
            traces,
            policy,
            mitigation_cost,
            restartable=restartable,
            prediction_window_seconds=prediction_window_seconds,
            **kwargs,
        )
        for policy in policies
    }
