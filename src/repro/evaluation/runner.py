"""Policy roll-out over the test portion of the error log.

Every policy is replayed over exactly the same per-node *evaluation traces*:
the merged telemetry events of the test range plus a job timeline sampled
once per node (deterministically from the scenario seed), so that all
approaches are charged against identical UEs and identical job states.  The
runner accumulates the cost–benefit breakdown of Section 4.3 and the
classical ML confusion counts of Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.features import NodeFeatureTrack
from repro.core.policies import DecisionContext, MitigationPolicy
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.metrics import ConfusionCounts
from repro.utils.rng import RngFactory
from repro.utils.timeutils import DAY
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.sampling import JobSequenceSampler, NodeJobTimeline

#: Signature of an optional override of the potential UE cost used at each
#: event: ``fn(trace, event_index, time, default_cost) -> cost``.
UECostFn = Callable[["EvaluationTrace", int, float, float], float]


@dataclass(frozen=True)
class EvaluationTrace:
    """Replayable test-range trace of one node."""

    node: int
    times: np.ndarray
    features: np.ndarray
    is_ue: np.ndarray
    is_last_before_ue: np.ndarray
    timeline: NodeJobTimeline

    def __post_init__(self) -> None:
        n = len(self.times)
        if not (
            len(self.features) == n
            and len(self.is_ue) == n
            and len(self.is_last_before_ue) == n
        ):
            raise ValueError("trace arrays must be aligned")

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def n_ues(self) -> int:
        return int(np.count_nonzero(self.is_ue))

    @property
    def n_decision_points(self) -> int:
        return int(np.count_nonzero(~self.is_ue))


@dataclass(frozen=True)
class PolicyEvaluation:
    """Outcome of replaying one policy over a set of traces."""

    policy_name: str
    costs: CostBreakdown
    confusion: ConfusionCounts
    n_traces: int
    n_decision_points: int

    @property
    def total_cost(self) -> float:
        """Total lost node–hours."""
        return self.costs.total

    def to_dict(self) -> Dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import tag

        return tag(
            "policy_evaluation",
            {
                "policy_name": self.policy_name,
                "costs": self.costs.to_dict(),
                "confusion": self.confusion.to_dict(),
                "n_traces": self.n_traces,
                "n_decision_points": self.n_decision_points,
            },
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "PolicyEvaluation":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import untag

        payload = untag(data, "policy_evaluation")
        return cls(
            policy_name=payload["policy_name"],
            costs=CostBreakdown.from_dict(payload["costs"]),
            confusion=ConfusionCounts.from_dict(payload["confusion"]),
            n_traces=payload["n_traces"],
            n_decision_points=payload["n_decision_points"],
        )


def build_traces(
    tracks: Dict[int, NodeFeatureTrack],
    job_sampler: JobSequenceSampler,
    t_start: float,
    t_end: float,
    seed: int = 0,
    oracle_window_seconds: float = DAY,
) -> List[EvaluationTrace]:
    """Build per-node evaluation traces for the ``[t_start, t_end)`` range.

    The job timeline of each node is sampled with an RNG derived from
    ``seed`` and the node id, so repeated calls (and different policies)
    see identical workloads.

    ``oracle_window_seconds`` bounds the Oracle hint: an event is flagged as
    "last event before a UE" only when the UE follows within that window
    (the paper's Oracle performs exactly one mitigation per *predictable* UE
    — UEs with no event in the preceding day are not mitigated by any
    event-triggered policy, including the Oracle).
    """
    check_positive("time range", t_end - t_start)
    factory = RngFactory(seed)
    traces: List[EvaluationTrace] = []
    for node in sorted(tracks):
        track = tracks[node].slice_time(t_start, t_end)
        if len(track) == 0:
            continue
        is_last_before_ue = np.zeros(len(track), dtype=bool)
        if len(track) > 1:
            is_last_before_ue[:-1] = (
                track.is_ue[1:]
                & ~track.is_ue[:-1]
                & (np.diff(track.times) <= oracle_window_seconds)
            )
        timeline = job_sampler.sample_timeline(
            t_start, t_end, rng=factory.stream(f"node-{node}")
        )
        traces.append(
            EvaluationTrace(
                node=node,
                times=track.times,
                features=track.features,
                is_ue=track.is_ue,
                is_last_before_ue=is_last_before_ue,
                timeline=timeline,
            )
        )
    return traces


def evaluate_policy(
    traces: Sequence[EvaluationTrace],
    policy: MitigationPolicy,
    mitigation_cost: float,
    restartable: bool = True,
    prediction_window_seconds: float = DAY,
    mitigation_overhead_seconds: Optional[float] = None,
    include_training_cost: bool = True,
    ue_cost_fn: Optional[UECostFn] = None,
) -> PolicyEvaluation:
    """Replay ``policy`` over ``traces`` and account costs and metrics.

    Parameters
    ----------
    traces:
        Evaluation traces from :func:`build_traces`.
    policy:
        The mitigation policy under evaluation.
    mitigation_cost:
        Cost of one mitigation in node–hours.
    restartable:
        Whether a mitigation resets the potential UE cost (checkpointing).
    prediction_window_seconds:
        Window of the classical ML metrics (Section 4.4), default one day.
    mitigation_overhead_seconds:
        Wall-clock duration of a mitigation; a mitigation must have been
        initiated at least this long before a UE to count as completed.
        Defaults to the mitigation cost interpreted as minutes of wall-clock
        time on a single node.
    include_training_cost:
        Whether to charge ``policy.training_cost_node_hours`` to the total.
    ue_cost_fn:
        Optional override of the potential UE cost seen at each event (used
        by the Table 2 UE-cost-range analysis); receives the trace, event
        index, event time and the default timeline-derived cost.
    """
    check_non_negative("mitigation_cost", mitigation_cost)
    check_positive("prediction_window_seconds", prediction_window_seconds)
    if mitigation_overhead_seconds is None:
        mitigation_overhead_seconds = mitigation_cost * 3600.0
    check_non_negative("mitigation_overhead_seconds", mitigation_overhead_seconds)

    ue_cost_total = 0.0
    mitigation_cost_total = 0.0
    n_ues = 0
    n_mitigations = 0
    n_no_actions = 0
    true_positives = 0
    n_ues_without_preceding_event = 0
    n_decision_points = 0

    for trace in traces:
        policy.reset()
        policy.prepare_trace(trace.features)
        last_mitigation: Optional[float] = None
        mitigation_times: List[float] = []

        for i in range(len(trace)):
            t = float(trace.times[i])
            default_cost = trace.timeline.potential_ue_cost(
                t, last_mitigation, restartable
            )
            if ue_cost_fn is not None:
                cost_now = float(ue_cost_fn(trace, i, t, default_cost))
            else:
                cost_now = default_cost

            if trace.is_ue[i]:
                n_ues += 1
                ue_cost_total += cost_now
                # Classical ML metrics bookkeeping (Section 4.4).
                window_start = t - prediction_window_seconds
                completed = [
                    m
                    for m in mitigation_times
                    if window_start <= m <= t - mitigation_overhead_seconds
                ]
                has_preceding_event = bool(
                    np.any(
                        (~trace.is_ue[:i])
                        & (trace.times[:i] >= window_start)
                        & (trace.times[:i] < t)
                    )
                )
                if completed:
                    true_positives += 1
                if not has_preceding_event:
                    n_ues_without_preceding_event += 1
                # The node is rebooted after the UE; the next job starts fresh.
                last_mitigation = None
                continue

            n_decision_points += 1
            context = DecisionContext(
                time=t,
                node=trace.node,
                features=trace.features[i],
                ue_cost=cost_now,
                is_last_event_before_ue=bool(trace.is_last_before_ue[i]),
                event_index=i,
            )
            if policy.decide(context):
                n_mitigations += 1
                mitigation_cost_total += mitigation_cost
                mitigation_times.append(t)
                last_mitigation = t
            else:
                n_no_actions += 1

    false_negatives = n_ues - true_positives
    false_positives = n_mitigations - true_positives
    non_mitigations = n_no_actions + n_ues_without_preceding_event
    true_negatives = max(0, non_mitigations - false_negatives)

    training_cost = policy.training_cost_node_hours if include_training_cost else 0.0
    costs = CostBreakdown(
        ue_cost=ue_cost_total,
        mitigation_cost=mitigation_cost_total,
        training_cost=training_cost,
        n_ues=n_ues,
        n_mitigations=n_mitigations,
    )
    confusion = ConfusionCounts(
        true_positives=true_positives,
        false_negatives=false_negatives,
        false_positives=false_positives,
        true_negatives=true_negatives,
    )
    return PolicyEvaluation(
        policy_name=policy.name,
        costs=costs,
        confusion=confusion,
        n_traces=len(traces),
        n_decision_points=n_decision_points,
    )


def evaluate_policies(
    traces: Sequence[EvaluationTrace],
    policies: Sequence[MitigationPolicy],
    mitigation_cost: float,
    restartable: bool = True,
    prediction_window_seconds: float = DAY,
    **kwargs,
) -> Dict[str, PolicyEvaluation]:
    """Evaluate several policies over the same traces."""
    return {
        policy.name: evaluate_policy(
            traces,
            policy,
            mitigation_cost,
            restartable=restartable,
            prediction_window_seconds=prediction_window_seconds,
            **kwargs,
        )
        for policy in policies
    }
