"""Policy roll-out over the test portion of the error log.

Every policy is replayed over exactly the same per-node *evaluation traces*:
the merged telemetry events of the test range plus a job timeline sampled
once per node (deterministically from the scenario seed), so that all
approaches are charged against identical UEs and identical job states.  The
runner accumulates the cost–benefit breakdown of Section 4.3 and the
classical ML confusion counts of Section 4.4.

Replay is vectorized (the *decision core*): policies implementing
``MitigationPolicy.decide_batch`` decide a whole trace per call, and the
cost accounting becomes a segmented scan over the resulting decision mask —
the mitigation-dependent UE-cost resets are reconstructed from
forward-filled last-mitigation/last-UE indices instead of being carried
event by event.  Policies whose decisions *feed back* into the potential UE
cost (``cost_dependent`` — the RL agent and Myopic-RF — with restartable
jobs) are resolved through a renewal walk: decisions are batch-computed
under the running last-mitigation assumption and re-batched only over the
remainder of the job a fresh mitigation actually affects.  Every
floating-point operation is applied element-wise in the order of the
historical scalar loop (totals fold with ``np.add.accumulate``), so results
are bit-identical; the scalar per-event path remains as the tested fallback
for user-registered policies without ``decide_batch`` (and for
``ue_cost_fn`` overrides, whose per-event callbacks cannot be batched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import NodeFeatureTrack
from repro.core.policies import DecisionContext, MitigationPolicy
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.metrics import ConfusionCounts
from repro.utils.rng import RngFactory
from repro.utils.timeutils import DAY, HOUR
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.sampling import JobSequenceSampler, NodeJobTimeline

#: Signature of an optional override of the potential UE cost used at each
#: event: ``fn(trace, event_index, time, default_cost) -> cost``.
UECostFn = Callable[["EvaluationTrace", int, float, float], float]


@dataclass(frozen=True)
class EvaluationTrace:
    """Replayable test-range trace of one node."""

    node: int
    times: np.ndarray
    features: np.ndarray
    is_ue: np.ndarray
    is_last_before_ue: np.ndarray
    timeline: NodeJobTimeline

    def __post_init__(self) -> None:
        n = len(self.times)
        if not (
            len(self.features) == n
            and len(self.is_ue) == n
            and len(self.is_last_before_ue) == n
        ):
            raise ValueError("trace arrays must be aligned")

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def n_ues(self) -> int:
        return int(np.count_nonzero(self.is_ue))

    @property
    def n_decision_points(self) -> int:
        return int(np.count_nonzero(~self.is_ue))


@dataclass(frozen=True)
class PolicyEvaluation:
    """Outcome of replaying one policy over a set of traces."""

    policy_name: str
    costs: CostBreakdown
    confusion: ConfusionCounts
    n_traces: int
    n_decision_points: int

    @property
    def total_cost(self) -> float:
        """Total lost node–hours."""
        return self.costs.total

    def to_dict(self) -> Dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import tag

        return tag(
            "policy_evaluation",
            {
                "policy_name": self.policy_name,
                "costs": self.costs.to_dict(),
                "confusion": self.confusion.to_dict(),
                "n_traces": self.n_traces,
                "n_decision_points": self.n_decision_points,
            },
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "PolicyEvaluation":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import untag

        payload = untag(data, "policy_evaluation")
        return cls(
            policy_name=payload["policy_name"],
            costs=CostBreakdown.from_dict(payload["costs"]),
            confusion=ConfusionCounts.from_dict(payload["confusion"]),
            n_traces=payload["n_traces"],
            n_decision_points=payload["n_decision_points"],
        )


def build_traces(
    tracks: Dict[int, NodeFeatureTrack],
    job_sampler: JobSequenceSampler,
    t_start: float,
    t_end: float,
    seed: int = 0,
    oracle_window_seconds: float = DAY,
) -> List[EvaluationTrace]:
    """Build per-node evaluation traces for the ``[t_start, t_end)`` range.

    The job timeline of each node is sampled with an RNG derived from
    ``seed`` and the node id, so repeated calls (and different policies)
    see identical workloads.

    ``oracle_window_seconds`` bounds the Oracle hint: an event is flagged as
    "last event before a UE" only when the UE follows within that window
    (the paper's Oracle performs exactly one mitigation per *predictable* UE
    — UEs with no event in the preceding day are not mitigated by any
    event-triggered policy, including the Oracle).
    """
    check_positive("time range", t_end - t_start)
    factory = RngFactory(seed)
    traces: List[EvaluationTrace] = []
    for node in sorted(tracks):
        track = tracks[node].slice_time(t_start, t_end)
        if len(track) == 0:
            continue
        is_last_before_ue = np.zeros(len(track), dtype=bool)
        if len(track) > 1:
            is_last_before_ue[:-1] = (
                track.is_ue[1:]
                & ~track.is_ue[:-1]
                & (np.diff(track.times) <= oracle_window_seconds)
            )
        timeline = job_sampler.sample_timeline(
            t_start, t_end, rng=factory.stream(f"node-{node}")
        )
        traces.append(
            EvaluationTrace(
                node=node,
                times=track.times,
                features=track.features,
                is_ue=track.is_ue,
                is_last_before_ue=is_last_before_ue,
                timeline=timeline,
            )
        )
    return traces


@dataclass
class _ReplayAccumulator:
    """Counters and cost streams collected while replaying traces.

    The float totals are folded only at the end: per-event UE costs are
    collected per trace (in event order) and left-folded with
    ``np.add.accumulate``, which matches the scalar loop's running
    ``total += cost`` additions bit for bit; the mitigation total is the
    same fold of ``mitigation_cost`` repeated once per mitigation.
    """

    n_ues: int = 0
    n_mitigations: int = 0
    n_no_actions: int = 0
    true_positives: int = 0
    n_ues_without_preceding_event: int = 0
    n_decision_points: int = 0
    ue_cost_chunks: List[np.ndarray] = field(default_factory=list)

    def ue_cost_total(self) -> float:
        if not self.ue_cost_chunks:
            return 0.0
        costs = np.concatenate(self.ue_cost_chunks)
        if costs.size == 0:
            return 0.0
        return float(np.add.accumulate(costs)[-1])

    def mitigation_cost_total(self, mitigation_cost: float) -> float:
        if self.n_mitigations == 0:
            return 0.0
        repeated = np.full(self.n_mitigations, mitigation_cost)
        return float(np.add.accumulate(repeated)[-1])


def _timeline_job_arrays(
    trace: EvaluationTrace,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-event ``(job_start, job_n_nodes)`` — vectorized ``timeline.job_at``."""
    timeline = trace.timeline
    position = np.searchsorted(timeline.starts, trace.times, side="right") - 1
    position = np.clip(position, 0, len(timeline.starts) - 1)
    return timeline.starts[position], timeline.n_nodes[position]


def _batched_decisions(
    trace: EvaluationTrace,
    policy: MitigationPolicy,
    restartable: bool,
    job_start: np.ndarray,
    job_nodes: np.ndarray,
) -> Optional[np.ndarray]:
    """Whole-trace decision mask via ``decide_batch``, or ``None`` to fall back.

    Decisions of cost-independent policies — and of cost-dependent ones
    when mitigations cannot reset the UE cost (``restartable=False``) —
    resolve in a single batch: the potential cost of every event is the
    no-mitigation baseline either way.  With restartable jobs a
    cost-dependent policy's fresh mitigation lowers the cost of the later
    events *of the same job* (until the next job starts or a UE reboots the
    node), so the mask is resolved as a renewal walk: batch-decide under
    the current last-mitigation assumption, accept decisions up to the
    first mitigation/UE, and re-batch only the affected remainder of the
    running job.  Every per-event cost is computed with the same
    element-wise operations as ``NodeJobTimeline.potential_ue_cost``.
    """
    n = len(trace)
    base_costs = job_nodes * np.maximum(0.0, trace.times - job_start) / HOUR

    if not policy.cost_dependent:
        mask = policy.decide_batch(trace)
    else:
        mask = policy.decide_batch(trace, ue_costs=base_costs)
    if mask is None:
        return None
    mask = np.array(mask, dtype=bool, copy=True)
    if mask.shape != (n,):
        raise ValueError(
            f"decide_batch of {policy.name!r} returned shape {mask.shape}, "
            f"expected ({n},)"
        )
    is_ue = np.asarray(trace.is_ue, dtype=bool)
    mask[is_ue] = False
    if not policy.cost_dependent or not restartable or n == 0:
        return mask

    # Renewal walk for the cost feedback loop.  ``mask`` holds the candidate
    # decisions under the "no live mitigation" cost baseline; the resolved
    # decisions are rebuilt into ``resolved``.  Two regimes:
    #
    # * baseline — no live mitigation influences the next event (the last
    #   one was forgotten at a UE, or the running job started after it, and
    #   job starts are nondecreasing): the precomputed baseline decisions
    #   apply verbatim, no policy calls;
    # * speculative windows — a live mitigation changes upcoming costs:
    #   guess the window's decisions (initially: repeat the last decision),
    #   derive each event's implied last-mitigation reference from the
    #   guess, batch-decide under those costs, and consume the longest
    #   prefix on which the decisions confirm the guess *plus one* (the
    #   first divergent decision only depends on the confirmed prefix, so
    #   it is valid too).  One fixpoint retry with the computed decisions
    #   as the new guess lets mixed mitigate/skip patterns confirm whole
    #   windows, so dense mitigation runs cost one batch per chunk instead
    #   of one batch per mitigation.
    times = trace.times
    resolved = np.zeros(n, dtype=bool)
    baseline_breaks = np.flatnonzero(is_ue | mask)
    pointer = 0
    i0 = 0
    last_mitigation: Optional[float] = None
    chunk = 32
    while i0 < n:
        if last_mitigation is None or job_start[i0] >= last_mitigation:
            # Baseline regime: jump to the next UE/candidate mitigation.
            while pointer < len(baseline_breaks) and baseline_breaks[pointer] < i0:
                pointer += 1
            if pointer == len(baseline_breaks):
                break
            j = int(baseline_breaks[pointer])
            if is_ue[j]:
                last_mitigation = None
            else:
                resolved[j] = True
                last_mitigation = float(times[j])
                chunk = 32
            i0 = j + 1
            continue

        stop = min(i0 + chunk, n)
        width = stop - i0
        window = slice(i0, stop)
        ue_window = is_ue[window]
        times_window = times[window]
        job_start_window = job_start[window]
        # Initial guess: repeat the last decision (runs of mitigations and
        # runs of refusals are the common patterns; the fixpoint retry below
        # handles mixed windows).
        guess = np.full(width, bool(resolved[i0 - 1]) if i0 else False)
        guess[ue_window] = False
        has_ue = bool(ue_window.any())
        best_consumed = 0
        best_decisions = guess
        for _ in range(2):
            # Reference implied by the guess: the latest guessed mitigation
            # not separated by a UE, falling back to the incoming one.  The
            # first round's guess is constant, where the chain collapses to
            # a closed form (no accumulate scans needed).
            if not has_ue and not guess.any():
                reference = np.maximum(job_start_window, last_mitigation)
            elif not has_ue and guess.all():
                reference_times = np.empty(width)
                reference_times[0] = last_mitigation
                reference_times[1:] = times_window[:-1]
                reference = np.maximum(job_start_window, reference_times)
            else:
                relative = np.arange(width)
                previous_mit = np.concatenate(
                    [[-1], np.maximum.accumulate(np.where(guess, relative, -1))[:-1]]
                )
                previous_ue = np.concatenate(
                    [[-1], np.maximum.accumulate(np.where(ue_window, relative, -1))[:-1]]
                )
                internal = previous_mit > previous_ue
                reference_times = np.full(width, -np.inf)
                reference_times[
                    (previous_mit < 0) & (previous_ue < 0)
                ] = last_mitigation
                reference_times = np.where(
                    internal,
                    times_window[np.maximum(previous_mit, 0)],
                    reference_times,
                )
                reference = np.maximum(job_start_window, reference_times)
            window_costs = (
                job_nodes[window] * np.maximum(0.0, times_window - reference) / HOUR
            )
            window_result = policy.decide_batch(
                trace, ue_costs=window_costs, start=i0, stop=stop
            )
            if window_result is None:
                # The policy declined the partial range (its right under
                # the decide_batch contract): abandon the batch resolution
                # and let the caller replay this trace scalar.
                return None
            decisions = np.asarray(window_result, dtype=bool) & ~ue_window
            divergent = np.flatnonzero(decisions != guess)
            confirmed = int(divergent[0]) if divergent.size else width
            consumed = min(confirmed + 1, width)
            if consumed > best_consumed:
                best_consumed = consumed
                best_decisions = decisions
            if consumed * 2 >= width:
                # Good-enough consumption: a fixpoint retry would cost more
                # than the events it could still confirm.
                break
            guess = decisions
        consumed = best_consumed
        decisions = best_decisions
        resolved[i0 : i0 + consumed] = decisions[:consumed]
        segment_mits = np.flatnonzero(decisions[:consumed])
        segment_ues = np.flatnonzero(ue_window[:consumed])
        last_mit_rel = int(segment_mits[-1]) if segment_mits.size else -1
        last_ue_rel = int(segment_ues[-1]) if segment_ues.size else -1
        if last_ue_rel > last_mit_rel:
            last_mitigation = None
        elif last_mit_rel >= 0:
            last_mitigation = float(times_window[last_mit_rel])
        i0 += consumed
        chunk = chunk * 2 if consumed == width else 32
    return resolved


def _account_vectorized(
    trace: EvaluationTrace,
    mask: np.ndarray,
    accumulator: _ReplayAccumulator,
    restartable: bool,
    prediction_window_seconds: float,
    mitigation_overhead_seconds: float,
    job_start: np.ndarray,
    job_nodes: np.ndarray,
) -> None:
    """Segmented-scan cost/metric accounting of one trace's decision mask.

    Reconstructs, for every event, the last mitigation that survives up to
    it (a mitigation is forgotten at the next UE — the node reboots) from
    forward-filled indices, recomputes the per-event potential UE cost
    under that reference, and folds the Section 4.3/4.4 statistics with
    searchsorted range counts — all bit-identical to the event loop.
    """
    n = len(trace)
    times = trace.times
    is_ue = np.asarray(trace.is_ue, dtype=bool)
    indices = np.arange(n)

    ue_positions = np.flatnonzero(is_ue)
    mitigation_positions = np.flatnonzero(mask)
    n_events_ue = len(ue_positions)
    n_mitigations = len(mitigation_positions)

    accumulator.n_ues += n_events_ue
    accumulator.n_mitigations += n_mitigations
    accumulator.n_decision_points += n - n_events_ue
    accumulator.n_no_actions += (n - n_events_ue) - n_mitigations

    if n_events_ue == 0:
        return

    # Potential UE cost at the UE events under the final decision mask.
    if restartable and n_mitigations:
        previous_mitigation = np.concatenate(
            [[-1], np.maximum.accumulate(np.where(mask, indices, -1))[:-1]]
        )
        previous_ue = np.concatenate(
            [[-1], np.maximum.accumulate(np.where(is_ue, indices, -1))[:-1]]
        )
        live = (previous_mitigation >= 0) & (previous_mitigation > previous_ue)
        reference = np.where(
            live,
            np.maximum(job_start, times[np.maximum(previous_mitigation, 0)]),
            job_start,
        )
    else:
        reference = job_start
    costs = job_nodes * np.maximum(0.0, times - reference) / HOUR
    accumulator.ue_cost_chunks.append(costs[ue_positions])

    # Classical ML metrics (Section 4.4), one searchsorted pass per bound.
    ue_times = times[ue_positions]
    window_start = ue_times - prediction_window_seconds
    latest_complete = ue_times - mitigation_overhead_seconds
    mitigation_times = times[mitigation_positions]
    # Mitigations visible to a UE are those at earlier event indices.
    visible = np.searchsorted(mitigation_positions, ue_positions, side="left")
    low = np.searchsorted(mitigation_times, window_start, side="left")
    high = np.searchsorted(mitigation_times, latest_complete, side="right")
    completed = np.minimum(high, visible) > low
    accumulator.true_positives += int(np.count_nonzero(completed))

    # "Any non-UE event in [window_start, t) before index i" via prefix
    # counts of non-UE events.
    non_ue_before = np.concatenate(
        [[0], np.add.accumulate((~is_ue).astype(np.int64))]
    )
    first_in_window = np.searchsorted(times, window_start, side="left")
    first_at_time = np.searchsorted(times, ue_times, side="left")
    upper = np.minimum(first_at_time, ue_positions)
    lower = np.minimum(first_in_window, upper)
    preceding = non_ue_before[upper] - non_ue_before[lower]
    accumulator.n_ues_without_preceding_event += int(
        np.count_nonzero(preceding == 0)
    )


def _replay_scalar(
    trace: EvaluationTrace,
    policy: MitigationPolicy,
    accumulator: _ReplayAccumulator,
    restartable: bool,
    prediction_window_seconds: float,
    mitigation_overhead_seconds: float,
    ue_cost_fn: Optional[UECostFn],
) -> None:
    """Reference per-event replay of one trace (the decide() fallback path)."""
    last_mitigation: Optional[float] = None
    mitigation_times: List[float] = []
    ue_costs: List[float] = []

    for i in range(len(trace)):
        t = float(trace.times[i])
        default_cost = trace.timeline.potential_ue_cost(
            t, last_mitigation, restartable
        )
        if ue_cost_fn is not None:
            cost_now = float(ue_cost_fn(trace, i, t, default_cost))
        else:
            cost_now = default_cost

        if trace.is_ue[i]:
            accumulator.n_ues += 1
            ue_costs.append(cost_now)
            # Classical ML metrics bookkeeping (Section 4.4).
            window_start = t - prediction_window_seconds
            completed = [
                m
                for m in mitigation_times
                if window_start <= m <= t - mitigation_overhead_seconds
            ]
            has_preceding_event = bool(
                np.any(
                    (~trace.is_ue[:i])
                    & (trace.times[:i] >= window_start)
                    & (trace.times[:i] < t)
                )
            )
            if completed:
                accumulator.true_positives += 1
            if not has_preceding_event:
                accumulator.n_ues_without_preceding_event += 1
            # The node is rebooted after the UE; the next job starts fresh.
            last_mitigation = None
            continue

        accumulator.n_decision_points += 1
        context = DecisionContext(
            time=t,
            node=trace.node,
            features=trace.features[i],
            ue_cost=cost_now,
            is_last_event_before_ue=bool(trace.is_last_before_ue[i]),
            event_index=i,
        )
        if policy.decide(context):
            accumulator.n_mitigations += 1
            mitigation_times.append(t)
            last_mitigation = t
        else:
            accumulator.n_no_actions += 1

    accumulator.ue_cost_chunks.append(np.asarray(ue_costs, dtype=np.float64))


def evaluate_policy(
    traces: Sequence[EvaluationTrace],
    policy: MitigationPolicy,
    mitigation_cost: float,
    restartable: bool = True,
    prediction_window_seconds: float = DAY,
    mitigation_overhead_seconds: Optional[float] = None,
    include_training_cost: bool = True,
    ue_cost_fn: Optional[UECostFn] = None,
    vectorized: bool = True,
) -> PolicyEvaluation:
    """Replay ``policy`` over ``traces`` and account costs and metrics.

    Parameters
    ----------
    traces:
        Evaluation traces from :func:`build_traces`.
    policy:
        The mitigation policy under evaluation.
    mitigation_cost:
        Cost of one mitigation in node–hours.
    restartable:
        Whether a mitigation resets the potential UE cost (checkpointing).
    prediction_window_seconds:
        Window of the classical ML metrics (Section 4.4), default one day.
    mitigation_overhead_seconds:
        Wall-clock duration of a mitigation; a mitigation must have been
        initiated at least this long before a UE to count as completed.
        Defaults to the mitigation cost interpreted as minutes of wall-clock
        time on a single node.
    include_training_cost:
        Whether to charge ``policy.training_cost_node_hours`` to the total.
    ue_cost_fn:
        Optional override of the potential UE cost seen at each event (used
        by the Table 2 UE-cost-range analysis); receives the trace, event
        index, event time and the default timeline-derived cost.  Forces the
        scalar path: an arbitrary per-event callback cannot be batched.
    vectorized:
        Use the batched decision core for policies implementing
        ``decide_batch`` (the default).  ``False`` forces the per-event
        reference path for every policy — results are identical either way
        (the equivalence suite pins this); the flag exists for A/B
        measurement and debugging.
    """
    check_non_negative("mitigation_cost", mitigation_cost)
    check_positive("prediction_window_seconds", prediction_window_seconds)
    if mitigation_overhead_seconds is None:
        mitigation_overhead_seconds = mitigation_cost * 3600.0
    check_non_negative("mitigation_overhead_seconds", mitigation_overhead_seconds)

    accumulator = _ReplayAccumulator()
    use_batches = vectorized and ue_cost_fn is None
    prepared_bulk = use_batches
    if use_batches:
        # Bulk pre-computation across the whole replay (one batch predictor
        # call instead of one per trace); the scalar reference path below
        # never does this, so policies may treat it as a pure optimisation.
        policy.prepare_traces(traces)

    for trace in traces:
        policy.reset()
        policy.prepare_trace(trace.features)
        mask: Optional[np.ndarray] = None
        if use_batches:
            job_start, job_nodes = _timeline_job_arrays(trace)
            mask = _batched_decisions(trace, policy, restartable, job_start, job_nodes)
            if mask is None:
                # Batch support is a property of the policy, not the trace:
                # skip the probe (and its timeline arrays) from here on.
                # Re-run the per-trace hooks in case the declined batch
                # attempt advanced any policy state.
                use_batches = False
                policy.reset()
                policy.prepare_trace(trace.features)
        if mask is None:
            _replay_scalar(
                trace,
                policy,
                accumulator,
                restartable,
                prediction_window_seconds,
                mitigation_overhead_seconds,
                ue_cost_fn,
            )
        else:
            _account_vectorized(
                trace,
                mask,
                accumulator,
                restartable,
                prediction_window_seconds,
                mitigation_overhead_seconds,
                job_start,
                job_nodes,
            )

    if prepared_bulk:
        # Release the per-policy bulk caches so a policy kept alive in the
        # results does not pin this replay's trace data.
        policy.prepare_traces(())

    n_ues = accumulator.n_ues
    n_mitigations = accumulator.n_mitigations
    true_positives = accumulator.true_positives
    false_negatives = n_ues - true_positives
    false_positives = n_mitigations - true_positives
    non_mitigations = (
        accumulator.n_no_actions + accumulator.n_ues_without_preceding_event
    )
    true_negatives = max(0, non_mitigations - false_negatives)

    training_cost = policy.training_cost_node_hours if include_training_cost else 0.0
    costs = CostBreakdown(
        ue_cost=accumulator.ue_cost_total(),
        mitigation_cost=accumulator.mitigation_cost_total(mitigation_cost),
        training_cost=training_cost,
        n_ues=n_ues,
        n_mitigations=n_mitigations,
    )
    confusion = ConfusionCounts(
        true_positives=true_positives,
        false_negatives=false_negatives,
        false_positives=false_positives,
        true_negatives=true_negatives,
    )
    return PolicyEvaluation(
        policy_name=policy.name,
        costs=costs,
        confusion=confusion,
        n_traces=len(traces),
        n_decision_points=accumulator.n_decision_points,
    )


def evaluate_policies(
    traces: Sequence[EvaluationTrace],
    policies: Sequence[MitigationPolicy],
    mitigation_cost: float,
    restartable: bool = True,
    prediction_window_seconds: float = DAY,
    **kwargs,
) -> Dict[str, PolicyEvaluation]:
    """Evaluate several policies over the same traces."""
    return {
        policy.name: evaluate_policy(
            traces,
            policy,
            mitigation_cost,
            restartable=restartable,
            prediction_window_seconds=prediction_window_seconds,
            **kwargs,
        )
        for policy in policies
    }
