"""Scenario sweep engine: many experiments, one task graph, shared data.

The paper's results are a *grid* of experiments, not a single run.  Each
sweep axis maps directly onto one of its figures:

``mitigation_costs``
    The 2 / 5 / 10 node–minute cost groups of **Figure 3** (and the cost
    sensitivity discussion of Section 5.2).
``restartable``
    The restartable vs. non-restartable job assumption of **Figure 3**
    (checkpointing on/off, Section 4.3).
``manufacturers``
    The per-DRAM-manufacturer subsystems MN/A, MN/B, MN/C of **Figure 5**
    (Section 5.3); ``None`` is the whole fleet MN/All.
``job_scales``
    The job-size scaling factors 0.1–10× of **Figure 7** (Section 5.6).
``seeds``
    Replicated runs over independent synthetic histories (the confidence
    intervals of Figure 4 and Table 2).

:class:`SweepSpec` crosses a base :class:`~repro.config.ScenarioConfig` with
any subset of these axes; :func:`run_sweep` schedules *all* resulting
(point × split × approach-group) tasks as one dependency-aware graph on the
:mod:`executor <repro.evaluation.executor>` — an 18-task RL chain of one
point can overlap with the forest training of another — instead of N
sequential ``run_experiment`` calls.

Crucially, points that share data-preparation inputs (same fault model and
seed, differing only in evaluation parameters such as the mitigation cost)
reuse **one** :class:`~repro.evaluation.pipeline.PreparedData` product via
the content-keyed :class:`~repro.evaluation.pipeline.PreparedDataCache`, and
points on a data axis still share the raw telemetry/workload logs.  Results
are identical to independent ``run_experiment`` calls because every task
seeds its own keyed random streams — the sweep only removes redundant work,
never reorders randomness.

>>> spec = SweepSpec(
...     base=ScenarioConfig.small(),
...     mitigation_costs=(2.0, 5.0, 10.0),
...     restartable=(True, False),
... )
>>> result = run_sweep(spec, ExperimentConfig.fast())   # doctest: +SKIP
>>> print(result.table())                               # doctest: +SKIP
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import ScenarioConfig
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.executor import ExecutorStats, Task, execute_tasks
from repro.evaluation.pipeline import (
    ExperimentConfig,
    ExperimentResult,
    GroupOutcome,
    PreparedData,
    PreparedDataCache,
    aggregate,
    build_split_tasks,
    default_prepared_cache,
    make_splits,
    run_rl_reduce,
    run_rl_trial,
    run_split_group,
)
from repro.evaluation.report import format_cost_table, format_sweep_table
from repro.telemetry.error_log import ErrorLog
from repro.utils.profiling import StageProfiler
from repro.telemetry.records import MANUFACTURER_NAMES
from repro.workload.job import JobLog

__all__ = [
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "assign_shard",
    "run_sweep",
]


# --------------------------------------------------------------------- #
# Sweep specification
# --------------------------------------------------------------------- #
def _format_axis(axis: str, value: Any) -> str:
    """Human-readable ``axis=value`` fragment of a point label."""
    if axis == "mitigation_cost":
        return f"cost={value:g}"
    if axis == "restartable":
        return "restart=on" if value else "restart=off"
    if axis == "manufacturer":
        if value is None:
            return "mfr=all"
        if 0 <= value < len(MANUFACTURER_NAMES):
            return f"mfr={MANUFACTURER_NAMES[value]}"
        return f"mfr={value}"
    if axis == "job_scale":
        return f"scale=x{value:g}"
    if axis == "seed":
        return f"seed={value}"
    return f"{axis}={value}"


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved scenario of a sweep."""

    #: Unique human-readable label, e.g. ``"cost=5,restart=off"``; doubles as
    #: the task-key prefix and the key of :attr:`SweepResult.results`.
    label: str
    #: The base scenario with every axis value applied.
    scenario: ScenarioConfig
    #: The ``(axis, value)`` assignments that produced this point.
    axes: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario crossed with any subset of the paper's sweep axes.

    Axes left at ``None`` are not swept; the cross product of the supplied
    axes defines the points.  An empty spec is the degenerate one-point
    sweep of the base scenario.
    """

    base: ScenarioConfig
    #: Mitigation costs in node–minutes (Figure 3: 2, 5, 10).
    mitigation_costs: Optional[Sequence[float]] = None
    #: Restartable-job assumptions (Figure 3: checkpointing on/off).
    restartable: Optional[Sequence[bool]] = None
    #: DRAM manufacturers, ``None`` entries meaning the whole fleet
    #: (Figure 5: MN/All plus MN/A, MN/B, MN/C).
    manufacturers: Optional[Sequence[Optional[int]]] = None
    #: Job-size scaling factors (Figure 7: 0.1–10×).
    job_scales: Optional[Sequence[float]] = None
    #: Root seeds for replicated synthetic histories.
    seeds: Optional[Sequence[int]] = None

    def _axes(self) -> List[Tuple[str, Tuple[Any, ...]]]:
        """The swept axes, in canonical application order."""
        axes: List[Tuple[str, Tuple[Any, ...]]] = []
        for name, values in (
            ("seed", self.seeds),
            ("manufacturer", self.manufacturers),
            ("job_scale", self.job_scales),
            ("mitigation_cost", self.mitigation_costs),
            ("restartable", self.restartable),
        ):
            if values is not None:
                values = tuple(values)
                if not values:
                    raise ValueError(f"sweep axis {name!r} must not be empty")
                axes.append((name, values))
        return axes

    @property
    def n_points(self) -> int:
        count = 1
        for _, values in self._axes():
            count *= len(values)
        return count

    def points(self) -> Tuple[SweepPoint, ...]:
        """The cross product of all supplied axes, base scenario applied."""
        assignments: List[Tuple[Tuple[str, Any], ...]] = [()]
        for name, values in self._axes():
            assignments = [
                done + ((name, value),) for done in assignments for value in values
            ]
        points: List[SweepPoint] = []
        seen: Dict[str, Tuple[Tuple[str, Any], ...]] = {}
        for axes in assignments:
            scenario = self.base
            for name, value in axes:
                if name == "seed":
                    scenario = scenario.with_seed(value)
                elif name == "manufacturer":
                    scenario = scenario.with_manufacturer(value)
                elif name == "job_scale":
                    scenario = scenario.with_job_scale(value)
                elif name == "mitigation_cost":
                    scenario = scenario.with_mitigation_cost(value)
                elif name == "restartable":
                    scenario = scenario.with_restartable(value)
            label = (
                ",".join(_format_axis(name, value) for name, value in axes)
                or self.base.name
            )
            if label in seen:
                raise ValueError(
                    f"duplicate sweep point {label!r} "
                    f"(axes {seen[label]!r} and {axes!r}); "
                    "remove repeated axis values"
                )
            seen[label] = axes
            points.append(SweepPoint(label=label, scenario=scenario, axes=axes))
        return tuple(points)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import tag

        def axis(values):
            return None if values is None else list(values)

        return tag(
            "sweep_spec",
            {
                "base": self.base.to_dict(),
                "mitigation_costs": axis(self.mitigation_costs),
                "restartable": axis(self.restartable),
                "manufacturers": axis(self.manufacturers),
                "job_scales": axis(self.job_scales),
                "seeds": axis(self.seeds),
            },
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import untag

        payload = untag(data, "sweep_spec")

        def axis(values):
            return None if values is None else tuple(values)

        return cls(
            base=ScenarioConfig.from_dict(payload["base"]),
            mitigation_costs=axis(payload["mitigation_costs"]),
            restartable=axis(payload["restartable"]),
            manufacturers=axis(payload["manufacturers"]),
            job_scales=axis(payload["job_scales"]),
            seeds=axis(payload["seeds"]),
        )


# --------------------------------------------------------------------- #
# Sweep result
# --------------------------------------------------------------------- #
@dataclass
class SweepResult:
    """Everything produced by :func:`run_sweep`."""

    spec: SweepSpec
    points: Tuple[SweepPoint, ...]
    #: Point label -> the point's :class:`ExperimentResult`, exactly as an
    #: independent ``run_experiment`` call would have produced it.
    results: Dict[str, ExperimentResult]
    wallclock_seconds: float
    #: How many :func:`prepare_data` products were actually built (vs. the
    #: number of points — the difference is the cross-scenario cache's win).
    prepare_calls: int = 0
    cache_hits: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, label: str) -> ExperimentResult:
        try:
            return self.results[label]
        except KeyError:
            available = ", ".join(repr(known) for known in self.labels)
            raise KeyError(
                f"unknown sweep point {label!r}; available points: {available}"
            ) from None

    def __len__(self) -> int:
        return len(self.results)

    @property
    def labels(self) -> List[str]:
        return [point.label for point in self.points]

    @property
    def approach_names(self) -> List[str]:
        """Union of approach names across points, canonical order first."""
        names: List[str] = []
        for label in self.labels:
            for name in self.results[label].approach_names:
                if name not in names:
                    names.append(name)
        return names

    def totals(self) -> Dict[str, Dict[str, "Any"]]:
        """Point label -> approach -> :class:`CostBreakdown` (Figure 3/5/7)."""
        return {label: self.results[label].total_costs() for label in self.labels}

    def series(self, approach: str, which: str = "total") -> List[float]:
        """One approach's per-point cost series, in point order.

        Raises a :class:`KeyError` naming the available approaches when
        ``approach`` is unknown, and a :class:`ValueError` naming the
        :class:`~repro.evaluation.costs.CostBreakdown` fields when ``which``
        is not one of them.
        """
        known_fields = CostBreakdown.series_fields()
        if which not in known_fields:
            raise ValueError(
                f"unknown cost series {which!r}; "
                f"available: {', '.join(known_fields)}"
            )
        values = []
        for label in self.labels:
            totals = self.results[label].total_costs()
            if approach not in totals:
                available = ", ".join(repr(name) for name in self.approach_names)
                raise KeyError(
                    f"approach {approach!r} not present at sweep point "
                    f"{label!r}; available approaches: {available}"
                ) from None
            values.append(getattr(totals[approach], which))
        return values

    def table(self, which: str = "total", title: str = "") -> str:
        """Points × approaches cost matrix as aligned text."""
        return format_sweep_table(
            self.totals(), which=which, title=title or f"Sweep — {which} cost"
        )

    def point_table(self, label: str) -> str:
        """One point's full cost breakdown (a Figure 3/5 bar group)."""
        return format_cost_table(self[label].total_costs(), title=label)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`).

        Covers the scientific payload: the spec and every point's result.
        Run diagnostics (``wallclock_seconds``, ``prepare_calls``,
        ``cache_hits``, ``extras``) describe one particular execution, not
        the sweep's outcome, and are deliberately excluded — a sweep resumed
        from a store therefore serializes byte-identically to the run that
        first produced it (the resume round-trip test pins this).
        """
        from repro.serialization import tag

        return tag(
            "sweep_result",
            {
                "spec": self.spec.to_dict(),
                "results": {
                    point.label: self.results[point.label].to_dict()
                    for point in self.points
                },
            },
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepResult":
        """Inverse of :meth:`to_dict` (run diagnostics come back zeroed)."""
        from repro.serialization import SchemaError, untag

        payload = untag(data, "sweep_result")
        spec = SweepSpec.from_dict(payload["spec"])
        points = spec.points()
        results = {
            label: ExperimentResult.from_dict(item)
            for label, item in payload["results"].items()
        }
        missing = [point.label for point in points if point.label not in results]
        if missing:
            raise SchemaError(f"sweep_result payload lacks points {missing!r}")
        return cls(
            spec=spec, points=points, results=results, wallclock_seconds=0.0
        )

    def to_json(self) -> str:
        """Deterministic JSON text of :meth:`to_dict` (sorted keys)."""
        from repro.serialization import canonical_json

        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Inverse of :meth:`to_json`."""
        import json

        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #
def _run_sweep_group(
    deps: Dict[str, GroupOutcome],
    shared: Dict[str, PreparedData],
    label: str,
    split,
    group: str,
    config: ExperimentConfig,
) -> GroupOutcome:
    """Executor task of one (point × split × group); module-level so the
    process backend can pickle it.  ``shared`` is the per-point prepared-data
    map shipped once per worker."""
    return run_split_group(deps, shared[label], split, group, config)


def _run_sweep_rl_trial(
    deps: Dict[str, Any],
    shared: Dict[str, PreparedData],
    label: str,
    split,
    trial: int,
    config: ExperimentConfig,
):
    """One (point × split × RL trial) task — the sweep-side trampoline of
    :func:`~repro.evaluation.pipeline.run_rl_trial`."""
    return run_rl_trial(deps, shared[label], split, trial, config)


def _run_sweep_rl_reduce(
    deps: Dict[str, Any],
    shared: Dict[str, PreparedData],
    label: str,
    split,
    config: ExperimentConfig,
) -> GroupOutcome:
    """One (point × split) RL select-best reduce task — the sweep-side
    trampoline of :func:`~repro.evaluation.pipeline.run_rl_reduce`."""
    return run_rl_reduce(deps, shared[label], split, config)


def assign_shard(
    points: Sequence[SweepPoint], index: int, count: int
) -> Tuple[SweepPoint, ...]:
    """The points of static shard ``index`` out of ``count``.

    Deterministic round-robin over the canonical point order, so N workers
    running ``assign_shard(points, i, N)`` for ``i = 0..N-1`` partition the
    sweep exactly — no store coordination needed, only the shared point
    order every worker derives from the same :class:`SweepSpec`.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return tuple(point for k, point in enumerate(points) if k % count == index)


def run_sweep(
    spec: SweepSpec,
    config: Optional[ExperimentConfig] = None,
    cache: Optional[PreparedDataCache] = None,
    error_log: Optional[ErrorLog] = None,
    job_log: Optional[JobLog] = None,
    store=None,
    shard: Optional[Tuple[int, int]] = None,
) -> SweepResult:
    """Run every point of ``spec`` as one dependency-aware task graph.

    Equivalent to — and tested against — one ``run_experiment`` call per
    point, but (a) all points' (split × approach-group) tasks are scheduled
    together on the executor, so ``config.n_workers`` parallelism spans the
    whole sweep rather than one experiment at a time, and (b) points sharing
    data-preparation inputs reuse one prepared dataset through ``cache``
    (the process-wide default when ``None``).

    ``error_log`` / ``job_log`` optionally substitute externally supplied
    logs for the synthetic generators, exactly as in ``run_experiment``.

    ``store`` optionally attaches a :class:`repro.store.ArtifactStore`:
    points whose result is already on disk are loaded instead of executed,
    every computed point's result is written through (after the task graph
    completes — a run killed mid-graph persists spilled prepared data but
    no point results), and a sweep manifest is recorded — so re-running the
    same spec resumes from disk and only executes the missing points.  ``extras["points_loaded"]`` /
    ``extras["points_computed"]`` report the split.  Externally supplied
    logs bypass the store entirely (their content is not derivable from the
    spec, so stored results would silently mismatch).

    With the process backend, the whole label -> prepared-data map crosses
    into each worker once (points sharing a product are pickled once —
    pickle preserves object identity within one payload), because any
    worker may execute any point's tasks.  Data-axis sweeps with many large
    *distinct* products therefore cost O(points) memory per worker; split
    such sweeps into chunks if that bites.

    Per-point ``wallclock_seconds`` is the whole sweep's wall-clock (the
    points ran concurrently; attributing shares would be fiction); points
    loaded from a store keep the wall-clock of the run that computed them.

    ``shard=(i, n)`` restricts *computation* to static shard ``i`` of ``n``
    (see :func:`assign_shard`) for one worker of a distributed sweep:
    points outside the shard are loaded when the store already holds them
    and otherwise left pending (``extras["points_pending"]``; they are
    absent from the returned result).  Sharding requires a store — the
    other workers' results have nowhere else to meet — and the sweep
    manifest is recorded only by the run that observes the last point
    land, so a complete manifest always names a complete sweep.
    """
    config = config or ExperimentConfig()
    cache = cache if cache is not None else default_prepared_cache()
    points = spec.points()
    started = time.perf_counter()
    profiler = StageProfiler(enabled=config.profile)
    hits_before, calls_before = cache.hits, cache.prepare_calls

    external_inputs = error_log is not None or job_log is not None
    use_store = store is not None and not external_inputs
    assigned = {point.label for point in points}
    if shard is not None:
        if not use_store:
            raise ValueError(
                "run_sweep(shard=...) needs a store: shard workers meet "
                "only through their shared ArtifactStore"
            )
        assigned = {
            point.label for point in assign_shard(points, shard[0], shard[1])
        }
    loaded: Dict[str, ExperimentResult] = {}
    if use_store:
        for point in points:
            stored = store.load_result(point.scenario, config)
            if stored is not None:
                loaded[point.label] = stored

    prepared: Dict[str, PreparedData] = {}
    splits_by_label: Dict[str, list] = {}
    tasks: List[Task] = []
    with profiler.stage("prepare_data"):
        for point in points:
            if point.label in loaded or point.label not in assigned:
                continue
            prepared[point.label] = cache.get(
                point.scenario, config, error_log=error_log, job_log=job_log
            )
            splits_by_label[point.label] = make_splits(point.scenario)
            tasks.extend(
                build_split_tasks(
                    prepared[point.label],
                    splits_by_label[point.label],
                    config,
                    key_prefix=f"{point.label}/",
                    task_fn=_run_sweep_group,
                    task_args=(point.label,),
                    trial_task_fn=_run_sweep_rl_trial,
                    reduce_task_fn=_run_sweep_rl_reduce,
                )
            )

    stats = ExecutorStats()
    with profiler.stage("execute_tasks"):
        outcomes = execute_tasks(
            tasks,
            n_workers=config.n_workers,
            kind=config.executor_kind,
            shared=prepared,
            stats=stats,
        )
    elapsed = time.perf_counter() - started

    results: Dict[str, ExperimentResult] = {}
    for point in points:
        if point.label in loaded:
            results[point.label] = loaded[point.label]
            continue
        if point.label not in prepared:
            continue  # another shard's point, not yet in the store
        prefix = f"{point.label}/"
        point_outcomes = {
            key[len(prefix):]: outcome
            for key, outcome in outcomes.items()
            if key.startswith(prefix)
        }
        results[point.label] = aggregate(
            prepared[point.label],
            splits_by_label[point.label],
            point_outcomes,
            config,
            wallclock_seconds=elapsed,
        )
        if use_store:
            # Persist each point as soon as it is aggregated, so a failure
            # while assembling later points loses as little as possible.
            store.save_result(point.scenario, config, results[point.label])

    available = tuple(point for point in points if point.label in results)
    result = SweepResult(
        spec=spec,
        points=available,
        results=results,
        wallclock_seconds=elapsed,
        prepare_calls=cache.prepare_calls - calls_before,
        cache_hits=cache.hits - hits_before,
        extras={
            "points_loaded": [p.label for p in points if p.label in loaded],
            "points_computed": [
                p.label for p in points if p.label in results and p.label not in loaded
            ],
            "points_pending": [p.label for p in points if p.label not in results],
            # Run diagnostics (never serialized): task-level timing of the
            # whole sweep graph, including the measured critical path.
            "executor_stats": stats,
        },
    )
    if config.profile:
        result.extras["profile"] = profiler.report()
    if use_store and len(available) == len(points):
        store.save_sweep(spec, config, result)
    return result
