"""Classical machine-learning metrics with a 1-day prediction window (§4.4).

The cost–benefit analysis is the paper's primary metric, but recall and
precision are also reported for comparability with prior error-prediction
work.  A UE counts as successfully mitigated (true positive) if at least one
mitigation action *completed* within the preceding 24 hours, i.e. was
initiated within the window minus the mitigation overhead.  UEs with no
event in the preceding day cannot be mitigated by event-triggered policies
but still count as false negatives (an implicit "no-mitigate" decision), so
the hardest UEs are not silently dropped from the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ConfusionCounts:
    """TP / FN / FP / TN counts of one policy over one evaluation."""

    true_positives: int = 0
    false_negatives: int = 0
    false_positives: int = 0
    true_negatives: int = 0

    def __post_init__(self) -> None:
        for name in ("true_positives", "false_negatives", "false_positives", "true_negatives"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def n_ues(self) -> int:
        """Total uncorrected errors in the evaluated period."""
        return self.true_positives + self.false_negatives

    @property
    def n_mitigations(self) -> int:
        """Total mitigation actions performed (TPs + FPs)."""
        return self.true_positives + self.false_positives

    @property
    def n_decisions(self) -> int:
        """Total classified decisions (including implicit no-mitigate ones)."""
        return (
            self.true_positives
            + self.false_negatives
            + self.false_positives
            + self.true_negatives
        )

    @property
    def recall(self) -> float:
        """Fraction of UEs correctly mitigated; 0 when there were no UEs."""
        if self.n_ues == 0:
            return 0.0
        return self.true_positives / self.n_ues

    @property
    def precision(self) -> Optional[float]:
        """Fraction of mitigations that were useful; None when undefined."""
        if self.n_mitigations == 0:
            return None
        return self.true_positives / self.n_mitigations

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        return simple_to_dict(self, "confusion_counts")

    @classmethod
    def from_dict(cls, data: dict) -> "ConfusionCounts":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import simple_from_dict

        return simple_from_dict(cls, data, "confusion_counts")

    # ------------------------------------------------------------------ #
    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        if not isinstance(other, ConfusionCounts):
            return NotImplemented
        return ConfusionCounts(
            true_positives=self.true_positives + other.true_positives,
            false_negatives=self.false_negatives + other.false_negatives,
            false_positives=self.false_positives + other.false_positives,
            true_negatives=self.true_negatives + other.true_negatives,
        )

    def __radd__(self, other):
        if other == 0:
            return self
        return self.__add__(other)
