"""Dependency-aware task executor for the experiment pipeline.

The experiment decomposes into independent (split × approach-group) tasks —
see :mod:`repro.evaluation.pipeline` — plus a small number of ordering
constraints (the RL warm-start chain).  This module runs such a task graph
either serially or on a :class:`concurrent.futures.ProcessPoolExecutor`,
preserving determinism: every task seeds its own random streams from stable
string keys, so the schedule cannot change the results, only the wall-clock.

Two scheduling refinements keep the wall-clock close to the graph's
theoretical minimum:

* **Critical-path-first dispatch** — among simultaneously ready tasks, the
  ones with the highest :attr:`Task.priority` are submitted first.  The
  pipeline marks the RL warm-start chain (trial-0 and reduce tasks) as
  high priority, so the chain — the longest dependency path of every
  experiment — never waits behind independent fan-out work.
* **Task-level timing** — pass an :class:`ExecutorStats` to
  :func:`execute_tasks` to record every task's in-task execution seconds
  and the measured critical path (the heaviest dependency chain), the
  lower bound on the graph's wall-clock at infinite parallelism.

The executor is deliberately generic (tasks are plain callables), so other
subsystems can reuse it for their own fan-out.

Backends
--------
``"process"``
    One OS process per worker (the default).  Sidesteps the GIL for the
    numpy-heavy training stages.  Falls back to serial execution when the
    platform refuses to spawn processes (restricted sandboxes).
``"thread"``
    Threads in the current process; useful where processes are unavailable
    and the workload releases the GIL.
``"serial"``
    In-process topological execution, also used whenever ``n_workers <= 1``.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["ExecutorStats", "Task", "TaskGraphError", "execute_tasks"]


class TaskGraphError(ValueError):
    """Raised for malformed task graphs (duplicate keys, cycles, bad deps)."""


class _PoolSpawnError(RuntimeError):
    """Internal: the platform refused to start pool workers.

    ``ProcessPoolExecutor`` spawns workers lazily at ``submit()`` time, so a
    sandbox that forbids process creation raises OSError *inside* the
    scheduling loop, not in the pool constructor.  Wrapping the submit-time
    failure in a distinct type keeps it separable from an OSError raised by
    a task itself (which must propagate, not trigger the serial fallback).
    """


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``fn`` is called as ``fn(dep_results, *args)`` where ``dep_results`` maps
    each key in ``deps`` to that task's result.  With the process backend,
    ``fn``, ``args`` and all results must be picklable (``fn`` must be a
    module-level callable).

    ``priority`` orders simultaneously *ready* tasks: higher runs first.
    It never overrides a dependency edge — it only decides which of the
    tasks whose dependencies are already satisfied gets a worker next.
    Mark the tasks on the graph's critical path with a high priority so
    the longest chain is always making progress.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple = ()
    deps: Tuple[str, ...] = ()
    priority: int = 0


@dataclass
class ExecutorStats:
    """Task-level timing of one :func:`execute_tasks` run.

    Pass an instance via ``execute_tasks(..., stats=stats)``; the executor
    fills it in place.  ``task_seconds`` is in-task execution time (queueing
    and result transfer excluded; with the process backend the clock runs
    inside the worker).  The *critical path* is the dependency chain with
    the largest total execution time — the wall-clock lower bound however
    many workers are available — computed from the recorded durations and
    the task graph's edges.
    """

    #: Task key -> in-task execution seconds.
    task_seconds: Dict[str, float] = field(default_factory=dict)
    #: End-to-end wall-clock of the whole run (scheduling included).
    wallclock_seconds: float = 0.0
    #: Total execution seconds of the heaviest dependency chain.
    critical_path_seconds: float = 0.0
    #: The task keys of that chain, in execution order.
    critical_path: Tuple[str, ...] = ()

    @property
    def total_task_seconds(self) -> float:
        """Sum of all task execution times (serial-equivalent work)."""
        return float(sum(self.task_seconds.values()))

    def _finalize(self, tasks: Sequence["Task"], wallclock_seconds: float) -> None:
        """Compute the critical path from the recorded durations."""
        self.wallclock_seconds = wallclock_seconds
        finish: Dict[str, float] = {}
        predecessor: Dict[str, Optional[str]] = {}
        best_key: Optional[str] = None
        for task in _topological_order(tasks):
            longest_dep = 0.0
            via: Optional[str] = None
            for dep in task.deps:
                if finish.get(dep, 0.0) > longest_dep:
                    longest_dep = finish[dep]
                    via = dep
            finish[task.key] = longest_dep + self.task_seconds.get(task.key, 0.0)
            predecessor[task.key] = via
            if best_key is None or finish[task.key] > finish[best_key]:
                best_key = task.key
        if best_key is None:
            self.critical_path_seconds = 0.0
            self.critical_path = ()
            return
        self.critical_path_seconds = finish[best_key]
        path: List[str] = []
        cursor: Optional[str] = best_key
        while cursor is not None:
            path.append(cursor)
            cursor = predecessor[cursor]
        self.critical_path = tuple(reversed(path))


def _validate(tasks: Sequence[Task]) -> None:
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        duplicates = sorted({k for k in keys if keys.count(k) > 1})
        raise TaskGraphError(f"duplicate task keys: {duplicates}")
    known = set(keys)
    for task in tasks:
        missing = [dep for dep in task.deps if dep not in known]
        if missing:
            raise TaskGraphError(f"task {task.key!r} depends on unknown {missing}")


def _by_priority(ready: List[Task]) -> List[Task]:
    """Highest priority first; the sort is stable, so ties keep input order."""
    return sorted(ready, key=lambda task: -task.priority)


def _topological_order(tasks: Sequence[Task]) -> List[Task]:
    """Kahn's algorithm: priority, then input order, among ready tasks."""
    done: set = set()
    pending: List[Task] = list(tasks)
    ordered: List[Task] = []
    while pending:
        ready = [task for task in pending if all(d in done for d in task.deps)]
        if not ready:
            cycle = sorted(task.key for task in pending)
            raise TaskGraphError(f"dependency cycle among tasks: {cycle}")
        for task in _by_priority(ready):
            ordered.append(task)
            done.add(task.key)
        pending = [task for task in pending if task.key not in done]
    return ordered


#: Sentinel: no shared payload configured.
_NO_SHARED = object()

#: Per-process shared payload, set once per worker by the pool initializer
#: (so a heavyweight payload crosses the process boundary once per worker,
#: not once per task).
_WORKER_SHARED: Any = _NO_SHARED


def _set_worker_shared(value: Any) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = value


def _invoke(
    fn: Callable[..., Any],
    dep_results: Dict[str, Any],
    args: Tuple,
    shared: Any = _NO_SHARED,
) -> Any:
    """Module-level trampoline so the process backend can pickle the call."""
    if shared is _NO_SHARED:
        shared = _WORKER_SHARED
    if shared is _NO_SHARED:
        return fn(dep_results, *args)
    return fn(dep_results, shared, *args)


def _invoke_timed(
    fn: Callable[..., Any],
    dep_results: Dict[str, Any],
    args: Tuple,
    shared: Any = _NO_SHARED,
) -> Tuple[float, Any]:
    """:func:`_invoke` returning ``(execution seconds, result)``.

    The clock runs around the task body only — with the process backend it
    runs *inside* the worker, so queueing and pickle transfer are excluded
    and the recorded duration is schedule-independent.
    """
    started = time.perf_counter()
    result = _invoke(fn, dep_results, args, shared)
    return time.perf_counter() - started, result


def _run_serial(
    tasks: Sequence[Task],
    shared: Any = _NO_SHARED,
    stats: Optional[ExecutorStats] = None,
) -> Dict[str, Any]:
    results: Dict[str, Any] = {}
    for task in _topological_order(tasks):
        dep_results = {dep: results[dep] for dep in task.deps}
        if stats is None:
            results[task.key] = _invoke(task.fn, dep_results, task.args, shared)
        else:
            seconds, result = _invoke_timed(task.fn, dep_results, task.args, shared)
            stats.task_seconds[task.key] = seconds
            results[task.key] = result
    return results


def _run_pooled(
    tasks: Sequence[Task],
    pool: Executor,
    shared: Any = _NO_SHARED,
    stats: Optional[ExecutorStats] = None,
    max_in_flight: Optional[int] = None,
) -> Dict[str, Any]:
    """Schedule on ``pool``; pass ``shared`` only for same-process pools
    (process pools receive it through the worker initializer instead).

    ``max_in_flight`` caps concurrent submissions at the worker count: the
    pools' internal queues are FIFO, so handing them every ready task at
    once would freeze the priority order at submission time — a chain task
    becoming ready later would queue behind already-submitted fan-out work.
    Keeping submissions at the worker count means every freed slot re-runs
    the priority selection over everything ready *now*.
    """
    trampoline = _invoke if stats is None else _invoke_timed
    results: Dict[str, Any] = {}
    pending: List[Task] = _topological_order(tasks)
    in_flight: Dict[Any, str] = {}
    try:
        while pending or in_flight:
            # Critical-path first: among the ready tasks, submit the highest
            # priority ones first so chained work never waits behind fan-out.
            ready = _by_priority(
                [t for t in pending if all(d in results for d in t.deps)]
            )
            if max_in_flight is not None:
                ready = ready[: max(0, max_in_flight - len(in_flight))]
            for task in ready:
                dep_results = {dep: results[dep] for dep in task.deps}
                try:
                    if shared is _NO_SHARED:
                        # Never ship the sentinel across a pickle boundary:
                        # its identity would not survive, so the worker falls
                        # back to its own (initializer-set or absent) global.
                        future = pool.submit(
                            trampoline, task.fn, dep_results, task.args
                        )
                    else:
                        future = pool.submit(
                            trampoline, task.fn, dep_results, task.args, shared
                        )
                except (OSError, PermissionError, NotImplementedError) as exc:
                    # submit() is where workers are actually spawned.
                    raise _PoolSpawnError(str(exc)) from exc
                in_flight[future] = task.key
            ready_keys = {task.key for task in ready}
            pending = [t for t in pending if t.key not in ready_keys]
            finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in finished:
                key = in_flight.pop(future)
                if stats is None:
                    results[key] = future.result()
                else:
                    seconds, result = future.result()
                    stats.task_seconds[key] = seconds
                    results[key] = result
    finally:
        for future in in_flight:
            future.cancel()
    return results


def execute_tasks(
    tasks: Sequence[Task],
    n_workers: int = 1,
    kind: str = "process",
    shared: Any = _NO_SHARED,
    stats: Optional[ExecutorStats] = None,
) -> Dict[str, Any]:
    """Execute a task graph and return ``{task.key: result}``.

    Parameters
    ----------
    tasks:
        The task graph.  Dependencies must refer to keys within ``tasks``.
    n_workers:
        Maximum concurrent tasks; ``<= 1`` forces serial execution.
    kind:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.
    shared:
        Optional payload handed to every task as ``fn(deps, shared, *args)``.
        The process backend ships it once per worker (through the pool
        initializer) rather than once per task — use it for large read-only
        inputs such as the experiment's prepared dataset.
    stats:
        Optional :class:`ExecutorStats` filled in place with per-task
        execution seconds, the run's wall-clock, and the measured critical
        path.  Timing adds one clock read per task — negligible against the
        training workloads this executor schedules.
    """
    tasks = list(tasks)
    _validate(tasks)
    if not tasks:
        if stats is not None:
            stats._finalize(tasks, 0.0)
        return {}
    started = time.perf_counter()
    try:
        return _dispatch(tasks, n_workers, kind, shared, stats)
    finally:
        if stats is not None:
            stats._finalize(tasks, time.perf_counter() - started)


def _dispatch(
    tasks: List[Task],
    n_workers: int,
    kind: str,
    shared: Any,
    stats: Optional[ExecutorStats],
) -> Dict[str, Any]:
    if n_workers <= 1 or kind == "serial":
        return _run_serial(tasks, shared, stats)
    if kind == "thread":
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            return _run_pooled(tasks, pool, shared, stats, max_in_flight=n_workers)
    if kind != "process":
        raise ValueError(f"unknown executor kind {kind!r}")
    pool_kwargs: Dict[str, Any] = {"max_workers": n_workers}
    if shared is not _NO_SHARED:
        pool_kwargs.update(initializer=_set_worker_shared, initargs=(shared,))
    try:
        pool = ProcessPoolExecutor(**pool_kwargs)
    except (OSError, PermissionError, NotImplementedError) as exc:
        # Restricted sandboxes may forbid spawning processes; results are
        # schedule-independent, so serial execution only costs wall-clock.
        warnings.warn(
            f"process pool unavailable ({exc!r}); running all "
            f"{len(tasks)} tasks serially",
            RuntimeWarning,
            stacklevel=3,
        )
        return _run_serial(tasks, shared, stats)
    try:
        with pool:
            return _run_pooled(tasks, pool, stats=stats, max_in_flight=n_workers)
    except (BrokenProcessPool, _PoolSpawnError) as exc:
        # Worker spawn refused at submit time, or the platform killed the
        # workers mid-run (sandbox limits, OOM of a forked child — but also
        # any native-code crash in a task, which this fallback would
        # otherwise mask; the warning keeps it visible).
        # Task-level exceptions — including OSError raised *inside* a task,
        # which arrives via future.result() — propagate to the caller
        # instead of triggering this fallback.
        warnings.warn(
            f"process pool died mid-run ({exc!r}); discarding partial "
            f"results and re-running all {len(tasks)} tasks serially",
            RuntimeWarning,
            stacklevel=3,
        )
        return _run_serial(tasks, shared, stats)
