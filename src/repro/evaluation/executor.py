"""Dependency-aware task executor for the experiment pipeline.

The experiment decomposes into independent (split × approach-group) tasks —
see :mod:`repro.evaluation.pipeline` — plus a small number of ordering
constraints (the RL warm-start chain).  This module runs such a task graph
either serially or on a :class:`concurrent.futures.ProcessPoolExecutor`,
preserving determinism: every task seeds its own random streams from stable
string keys, so the schedule cannot change the results, only the wall-clock.

The executor is deliberately generic (tasks are plain callables), so other
subsystems can reuse it for their own fan-out.

Backends
--------
``"process"``
    One OS process per worker (the default).  Sidesteps the GIL for the
    numpy-heavy training stages.  Falls back to serial execution when the
    platform refuses to spawn processes (restricted sandboxes).
``"thread"``
    Threads in the current process; useful where processes are unavailable
    and the workload releases the GIL.
``"serial"``
    In-process topological execution, also used whenever ``n_workers <= 1``.
"""

from __future__ import annotations

import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

__all__ = ["Task", "TaskGraphError", "execute_tasks"]


class TaskGraphError(ValueError):
    """Raised for malformed task graphs (duplicate keys, cycles, bad deps)."""


class _PoolSpawnError(RuntimeError):
    """Internal: the platform refused to start pool workers.

    ``ProcessPoolExecutor`` spawns workers lazily at ``submit()`` time, so a
    sandbox that forbids process creation raises OSError *inside* the
    scheduling loop, not in the pool constructor.  Wrapping the submit-time
    failure in a distinct type keeps it separable from an OSError raised by
    a task itself (which must propagate, not trigger the serial fallback).
    """


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``fn`` is called as ``fn(dep_results, *args)`` where ``dep_results`` maps
    each key in ``deps`` to that task's result.  With the process backend,
    ``fn``, ``args`` and all results must be picklable (``fn`` must be a
    module-level callable).
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple = ()
    deps: Tuple[str, ...] = ()


def _validate(tasks: Sequence[Task]) -> None:
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        duplicates = sorted({k for k in keys if keys.count(k) > 1})
        raise TaskGraphError(f"duplicate task keys: {duplicates}")
    known = set(keys)
    for task in tasks:
        missing = [dep for dep in task.deps if dep not in known]
        if missing:
            raise TaskGraphError(f"task {task.key!r} depends on unknown {missing}")


def _topological_order(tasks: Sequence[Task]) -> List[Task]:
    """Kahn's algorithm preserving the input order among ready tasks."""
    done: set = set()
    pending: List[Task] = list(tasks)
    ordered: List[Task] = []
    while pending:
        ready = [task for task in pending if all(d in done for d in task.deps)]
        if not ready:
            cycle = sorted(task.key for task in pending)
            raise TaskGraphError(f"dependency cycle among tasks: {cycle}")
        for task in ready:
            ordered.append(task)
            done.add(task.key)
        pending = [task for task in pending if task.key not in done]
    return ordered


#: Sentinel: no shared payload configured.
_NO_SHARED = object()

#: Per-process shared payload, set once per worker by the pool initializer
#: (so a heavyweight payload crosses the process boundary once per worker,
#: not once per task).
_WORKER_SHARED: Any = _NO_SHARED


def _set_worker_shared(value: Any) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = value


def _invoke(
    fn: Callable[..., Any],
    dep_results: Dict[str, Any],
    args: Tuple,
    shared: Any = _NO_SHARED,
) -> Any:
    """Module-level trampoline so the process backend can pickle the call."""
    if shared is _NO_SHARED:
        shared = _WORKER_SHARED
    if shared is _NO_SHARED:
        return fn(dep_results, *args)
    return fn(dep_results, shared, *args)


def _run_serial(tasks: Sequence[Task], shared: Any = _NO_SHARED) -> Dict[str, Any]:
    results: Dict[str, Any] = {}
    for task in _topological_order(tasks):
        dep_results = {dep: results[dep] for dep in task.deps}
        results[task.key] = _invoke(task.fn, dep_results, task.args, shared)
    return results


def _run_pooled(
    tasks: Sequence[Task], pool: Executor, shared: Any = _NO_SHARED
) -> Dict[str, Any]:
    """Schedule on ``pool``; pass ``shared`` only for same-process pools
    (process pools receive it through the worker initializer instead)."""
    results: Dict[str, Any] = {}
    pending: List[Task] = _topological_order(tasks)
    in_flight: Dict[Any, str] = {}
    try:
        while pending or in_flight:
            ready = [t for t in pending if all(d in results for d in t.deps)]
            for task in ready:
                dep_results = {dep: results[dep] for dep in task.deps}
                try:
                    if shared is _NO_SHARED:
                        # Never ship the sentinel across a pickle boundary:
                        # its identity would not survive, so the worker falls
                        # back to its own (initializer-set or absent) global.
                        future = pool.submit(
                            _invoke, task.fn, dep_results, task.args
                        )
                    else:
                        future = pool.submit(
                            _invoke, task.fn, dep_results, task.args, shared
                        )
                except (OSError, PermissionError, NotImplementedError) as exc:
                    # submit() is where workers are actually spawned.
                    raise _PoolSpawnError(str(exc)) from exc
                in_flight[future] = task.key
            ready_keys = {task.key for task in ready}
            pending = [t for t in pending if t.key not in ready_keys]
            finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in finished:
                key = in_flight.pop(future)
                results[key] = future.result()
    finally:
        for future in in_flight:
            future.cancel()
    return results


def execute_tasks(
    tasks: Sequence[Task],
    n_workers: int = 1,
    kind: str = "process",
    shared: Any = _NO_SHARED,
) -> Dict[str, Any]:
    """Execute a task graph and return ``{task.key: result}``.

    Parameters
    ----------
    tasks:
        The task graph.  Dependencies must refer to keys within ``tasks``.
    n_workers:
        Maximum concurrent tasks; ``<= 1`` forces serial execution.
    kind:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.
    shared:
        Optional payload handed to every task as ``fn(deps, shared, *args)``.
        The process backend ships it once per worker (through the pool
        initializer) rather than once per task — use it for large read-only
        inputs such as the experiment's prepared dataset.
    """
    tasks = list(tasks)
    _validate(tasks)
    if not tasks:
        return {}
    if n_workers <= 1 or kind == "serial":
        return _run_serial(tasks, shared)
    if kind == "thread":
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            return _run_pooled(tasks, pool, shared)
    if kind != "process":
        raise ValueError(f"unknown executor kind {kind!r}")
    pool_kwargs: Dict[str, Any] = {"max_workers": n_workers}
    if shared is not _NO_SHARED:
        pool_kwargs.update(initializer=_set_worker_shared, initargs=(shared,))
    try:
        pool = ProcessPoolExecutor(**pool_kwargs)
    except (OSError, PermissionError, NotImplementedError) as exc:
        # Restricted sandboxes may forbid spawning processes; results are
        # schedule-independent, so serial execution only costs wall-clock.
        warnings.warn(
            f"process pool unavailable ({exc!r}); running all "
            f"{len(tasks)} tasks serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial(tasks, shared)
    try:
        with pool:
            return _run_pooled(tasks, pool)
    except (BrokenProcessPool, _PoolSpawnError) as exc:
        # Worker spawn refused at submit time, or the platform killed the
        # workers mid-run (sandbox limits, OOM of a forked child — but also
        # any native-code crash in a task, which this fallback would
        # otherwise mask; the warning keeps it visible).
        # Task-level exceptions — including OSError raised *inside* a task,
        # which arrives via future.result() — propagate to the caller
        # instead of triggering this fallback.
        warnings.warn(
            f"process pool died mid-run ({exc!r}); discarding partial "
            f"results and re-running all {len(tasks)} tasks serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial(tasks, shared)
