"""Pluggable registry of the mitigation approaches under evaluation.

Every bar of Figure 3 — Never/Always-mitigate, the SC20-RF family, Myopic-RF,
the RL agent and the Oracle — is an :class:`ApproachSpec`: a display name, a
``build(ctx, config, factory) -> MitigationPolicy`` factory, a *group* naming
the training resource it shares with sibling approaches, and an ``enabled``
predicate over the :class:`~repro.evaluation.pipeline.ExperimentConfig`.

The experiment driver derives everything from the registry: the canonical
approach ordering (``APPROACH_ORDER``), the set of per-split tasks handed to
the parallel executor (one task per *group*, so the three SC20 variants and
Myopic-RF share a single trained forest), and the mapping of ``include_*``
toggles to approaches.  New approaches therefore plug in without touching the
driver:

>>> from repro.evaluation.registry import ApproachSpec, register_approach
>>> from repro.baselines.static import PeriodicMitigatePolicy
>>> register_approach(ApproachSpec(
...     name="Periodic-24h",
...     build=lambda ctx, config, factory: PeriodicMitigatePolicy(24.0),
... ))  # doctest: +SKIP

Builders receive the per-split :class:`~repro.evaluation.pipeline.SplitContext`
(training data, cached shared resources such as the trained forest or the RL
agent), the experiment config, and a scenario-rooted
:class:`~repro.utils.rng.RngFactory` whose keyed streams make results
independent of execution order — the property the parallel executor relies on.

The registry is process-global.  The process-pool executor reaches it through
``fork`` inheritance on Linux; on spawn-based platforms, approaches registered
at runtime (outside an imported module) are invisible to worker processes —
register them at import time, or run with ``executor_kind="thread"`` /
``"serial"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.baselines.myopic import MyopicRFPolicy
from repro.baselines.sc20 import SC20RandomForestPolicy
from repro.baselines.static import (
    AlwaysMitigatePolicy,
    NeverMitigatePolicy,
    OraclePolicy,
)
from repro.core.policies import FallbackPolicy, MitigationPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.evaluation.pipeline import ExperimentConfig, SplitContext
    from repro.utils.rng import RngFactory

__all__ = [
    "ApproachSpec",
    "approach_groups",
    "approach_order",
    "approach_specs",
    "enabled_specs",
    "ensure_sc20_variants",
    "get_approach",
    "register_approach",
    "register_sc20_variant",
    "registered_names",
    "unregister_approach",
]

#: Builder signature: per-split context, experiment config, scenario-rooted
#: RNG factory -> a ready-to-evaluate policy.
PolicyBuilder = Callable[
    ["SplitContext", "ExperimentConfig", "RngFactory"], MitigationPolicy
]


def _always_enabled(config: "ExperimentConfig") -> bool:
    return True


@dataclass(frozen=True)
class ApproachSpec:
    """Declaration of one approach of the Section 4.2 comparison."""

    #: Display name — the key of ``ExperimentResult.approaches``.
    name: str
    #: Factory producing the policy evaluated on each split's test range.
    build: PolicyBuilder
    #: Approaches in the same group share one executor task per split (and
    #: through the :class:`SplitContext` cache, one set of trained models).
    group: str = "custom"
    #: Sort position in reports; registration order breaks ties.
    order: float = 1000.0
    #: Whether the approach runs under a given experiment config.
    enabled: Callable[["ExperimentConfig"], bool] = field(default=_always_enabled)
    #: One-line description for documentation and reports.
    description: str = ""


_REGISTRY: Dict[str, ApproachSpec] = {}

#: Display name -> exact threshold offset of each registered SC20 variant.
#: :func:`ensure_sc20_variants` consults this (not ``spec.enabled``, which
#: also folds in the ``include_rf`` toggle) to tell "this offset's variant
#: already exists" apart from a genuine display-name collision.
_SC20_OFFSETS: Dict[str, float] = {}


def register_approach(spec: ApproachSpec, replace: bool = False) -> ApproachSpec:
    """Register ``spec``; set ``replace=True`` to overwrite an existing name."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(
            f"approach {spec.name!r} is already registered "
            "(pass replace=True to overwrite)"
        )
    # A replacement is no longer (necessarily) an SC20 variant;
    # register_sc20_variant re-records the offset right after this call.
    _SC20_OFFSETS.pop(spec.name, None)
    _REGISTRY[spec.name] = spec
    return spec


def unregister_approach(name: str) -> ApproachSpec:
    """Remove and return a registered approach (KeyError when unknown)."""
    spec = _REGISTRY.pop(name)
    _SC20_OFFSETS.pop(name, None)
    return spec


def get_approach(name: str) -> ApproachSpec:
    """Look up a registered approach by display name."""
    return _REGISTRY[name]


def registered_names() -> Tuple[str, ...]:
    """All registered names, unsorted (registration order)."""
    return tuple(_REGISTRY)


def approach_specs() -> Tuple[ApproachSpec, ...]:
    """All registered approaches in canonical (``order``, registration) order."""
    indexed = sorted(
        enumerate(_REGISTRY.values()), key=lambda pair: (pair[1].order, pair[0])
    )
    return tuple(spec for _, spec in indexed)


def approach_order() -> Tuple[str, ...]:
    """Canonical ordering of the approach names (the bars of Figure 3)."""
    return tuple(spec.name for spec in approach_specs())


def enabled_specs(config: "ExperimentConfig") -> Tuple[ApproachSpec, ...]:
    """The approaches that run under ``config``, in canonical order."""
    return tuple(spec for spec in approach_specs() if spec.enabled(config))


def approach_groups(config: "ExperimentConfig") -> Dict[str, List[ApproachSpec]]:
    """Enabled approaches keyed by group, groups in canonical order."""
    groups: Dict[str, List[ApproachSpec]] = {}
    for spec in enabled_specs(config):
        groups.setdefault(spec.group, []).append(spec)
    return groups


# --------------------------------------------------------------------- #
# Default approaches (Section 4.2)
# --------------------------------------------------------------------- #
def _build_never(ctx, config, factory) -> MitigationPolicy:
    return NeverMitigatePolicy()


def _build_always(ctx, config, factory) -> MitigationPolicy:
    return AlwaysMitigatePolicy()


def _build_oracle(ctx, config, factory) -> MitigationPolicy:
    return OraclePolicy()


def _build_sc20_optimal(ctx, config, factory) -> MitigationPolicy:
    artifacts = ctx.sc20()
    if artifacts is None:
        return FallbackPolicy(NeverMitigatePolicy(), "SC20-RF")
    return artifacts.optimal_policy


def _sc20_variant_builder(offset: float) -> PolicyBuilder:
    name = SC20RandomForestPolicy.variant_name(offset)

    def _build(ctx, config, factory) -> MitigationPolicy:
        artifacts = ctx.sc20()
        if artifacts is None:
            return FallbackPolicy(NeverMitigatePolicy(), name)
        return artifacts.base_policy.with_threshold(
            artifacts.optimal_threshold, offset=offset, name=name
        )

    return _build


def _sc20_variant_enabled(offset: float):
    def _enabled(config: "ExperimentConfig") -> bool:
        return config.include_rf and offset in tuple(config.sc20_threshold_offsets)

    return _enabled


def register_sc20_variant(offset: float, replace: bool = False) -> ApproachSpec:
    """Register a perturbed-threshold SC20-RF variant for ``offset``.

    The variant only runs for configs whose ``sc20_threshold_offsets``
    contain ``offset``, so registering extra variants never changes the
    approach set of other experiments.  Sorted between SC20-RF and
    Myopic-RF, larger offsets later.
    """
    name = SC20RandomForestPolicy.variant_name(offset)
    spec = register_approach(
        ApproachSpec(
            name=name,
            build=_sc20_variant_builder(offset),
            group="rf",
            order=min(49.0, 30.0 + 100.0 * float(offset)),
            enabled=_sc20_variant_enabled(offset),
            description=f"SC20-RF with the threshold perturbed by {offset:+.0%}.",
        ),
        replace=replace,
    )
    _SC20_OFFSETS[name] = float(offset)
    return spec


def ensure_sc20_variants(config: "ExperimentConfig") -> None:
    """Register any configured threshold offset that has no variant yet.

    Keeps ``ExperimentConfig(sc20_threshold_offsets=...)`` sweeps working
    without an explicit :func:`register_sc20_variant` call for each offset.
    The pipeline calls this before resolving the enabled specs.

    Raises ``ValueError`` when a configured offset percent-rounds to the
    display name of an approach registered for a *different* offset (e.g.
    0.049 collides with the default 0.05 → both would be "SC20-RF-5%") or
    to the name of a non-variant approach: silently evaluating neither —
    or mixing two offsets under one name — would corrupt the sweep.
    Whether the variants actually *run* (``include_rf``, the configured
    offsets) is a separate question answered by ``spec.enabled``.
    """
    for offset in tuple(config.sc20_threshold_offsets):
        name = SC20RandomForestPolicy.variant_name(offset)
        if name not in _REGISTRY:
            register_sc20_variant(offset)
        elif _SC20_OFFSETS.get(name) != float(offset):
            raise ValueError(
                f"SC20 threshold offset {offset!r} rounds to display name "
                f"{name!r}, which is already registered for a different "
                "offset; pick offsets that round to distinct percents or "
                "re-register with register_sc20_variant(offset, replace=True)"
            )


def _build_myopic(ctx, config, factory) -> MitigationPolicy:
    artifacts = ctx.sc20()
    if artifacts is None:
        return FallbackPolicy(NeverMitigatePolicy(), "Myopic-RF")
    return MyopicRFPolicy(artifacts.optimal_policy, ctx.mitigation_cost)


def _build_fleet_mix(ctx, config, factory) -> MitigationPolicy:
    from repro.baselines.fleet import build_fleet_policy

    return build_fleet_policy(ctx)


def _build_rl(ctx, config, factory) -> MitigationPolicy:
    policy = ctx.rl()
    if policy is None:
        return FallbackPolicy(NeverMitigatePolicy(), "RL")
    return policy


def _register_defaults() -> None:
    register_approach(ApproachSpec(
        name="Never-mitigate",
        build=_build_never,
        group="static",
        order=0,
        enabled=lambda config: config.include_static,
        description="Do nothing; pays the full UE cost (lower bound baseline).",
    ))
    register_approach(ApproachSpec(
        name="Always-mitigate",
        build=_build_always,
        group="static",
        order=10,
        enabled=lambda config: config.include_static,
        description="Mitigate on every event; maximum mitigation cost.",
    ))
    register_approach(ApproachSpec(
        name="SC20-RF",
        build=_build_sc20_optimal,
        group="rf",
        order=20,
        enabled=lambda config: config.include_rf,
        description="SC20 random-forest predictor at the optimal threshold.",
    ))
    for offset in (0.02, 0.05):
        register_sc20_variant(offset)
    register_approach(ApproachSpec(
        name="Myopic-RF",
        build=_build_myopic,
        group="rf",
        order=50,
        enabled=lambda config: config.include_rf and config.include_myopic,
        description="Expected-cost extension of SC20-RF (uncalibrated).",
    ))
    register_approach(ApproachSpec(
        name="Fleet-mix",
        build=_build_fleet_mix,
        group="rf",
        order=55,
        enabled=lambda config: config.include_fleet_mix,
        description="Per-segment policy routing over a heterogeneous fleet.",
    ))
    register_approach(ApproachSpec(
        name="RL",
        build=_build_rl,
        group="rl",
        order=60,
        enabled=lambda config: config.include_rl,
        description="The paper's DDDQN agent (hyperparameter-searched).",
    ))
    register_approach(ApproachSpec(
        name="Oracle",
        build=_build_oracle,
        group="oracle",
        order=70,
        enabled=lambda config: config.include_oracle,
        description="Mitigates on the last event before each UE (unrealisable).",
    ))


_register_defaults()
