"""Cost–benefit accounting in node–hours (Section 4.3).

Every result of the paper is expressed as the total number of lost node–
hours: the cost of the uncorrected errors that were not (or could not be)
avoided, plus the cost of every mitigation action performed, plus — for the
learned policies — the cost of training and validating the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Tuple


@dataclass(frozen=True)
class CostBreakdown:
    """Lost node–hours, split by cause."""

    #: Node–hours lost to uncorrected errors (Equation 3 at each UE).
    ue_cost: float = 0.0
    #: Node–hours spent performing mitigation actions.
    mitigation_cost: float = 0.0
    #: Node–hours spent training and validating the model.
    training_cost: float = 0.0
    #: Number of uncorrected errors encountered.
    n_ues: int = 0
    #: Number of mitigation actions performed.
    n_mitigations: int = 0

    def __post_init__(self) -> None:
        if self.ue_cost < 0 or self.mitigation_cost < 0 or self.training_cost < 0:
            raise ValueError("costs must be non-negative")
        if self.n_ues < 0 or self.n_mitigations < 0:
            raise ValueError("counts must be non-negative")

    @classmethod
    def series_fields(cls) -> Tuple[str, ...]:
        """Every attribute usable as a cost series (fields + derived totals).

        The single source of truth for ``SweepResult.series`` validation and
        the CLI's ``--which`` choices; stays correct when fields are added.
        """
        return tuple(f.name for f in fields(cls)) + ("total", "overhead_cost")

    @property
    def total(self) -> float:
        """Total lost node–hours (the y-axis of Figures 3, 4, 5 and 7a)."""
        return self.ue_cost + self.mitigation_cost + self.training_cost

    @property
    def overhead_cost(self) -> float:
        """Mitigation plus training cost (everything that is not UE damage)."""
        return self.mitigation_cost + self.training_cost

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        if not isinstance(other, CostBreakdown):
            return NotImplemented
        return CostBreakdown(
            ue_cost=self.ue_cost + other.ue_cost,
            mitigation_cost=self.mitigation_cost + other.mitigation_cost,
            training_cost=self.training_cost + other.training_cost,
            n_ues=self.n_ues + other.n_ues,
            n_mitigations=self.n_mitigations + other.n_mitigations,
        )

    def __radd__(self, other):
        # Allow sum() over breakdowns (which starts from 0).
        if other == 0:
            return self
        return self.__add__(other)

    def saving_vs(self, reference: "CostBreakdown") -> float:
        """Fractional reduction of total cost relative to ``reference``.

        ``reference`` is typically the Never-mitigate policy; the paper
        reports e.g. a 54 % reduction for the RL agent.
        """
        if reference.total <= 0:
            return 0.0
        return 1.0 - self.total / reference.total

    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        return simple_to_dict(self, "cost_breakdown")

    @classmethod
    def from_dict(cls, data: dict) -> "CostBreakdown":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import simple_from_dict

        return simple_from_dict(cls, data, "cost_breakdown")

    def with_training_cost(self, training_cost: float) -> "CostBreakdown":
        """Copy with the training cost replaced."""
        return CostBreakdown(
            ue_cost=self.ue_cost,
            mitigation_cost=self.mitigation_cost,
            training_cost=float(training_cost),
            n_ues=self.n_ues,
            n_mitigations=self.n_mitigations,
        )
