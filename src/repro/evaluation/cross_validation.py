"""Time-series nested cross-validation (Section 4.1, Figure 2).

The error log is divided into six equal parts.  Each part is tested with a
model trained (and hyperparameter-tuned) only on data that precedes it: the
pre-test data is split 75 % / 25 % into training and validation ranges.  The
first split is special — it uses the first two weeks of the log for training
and validation, and the remainder of the first part for testing — so that
almost all of the production log is covered by the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.utils.timeutils import DAY
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class TimeSeriesSplit:
    """One split of the nested cross-validation.

    All ranges are half-open ``[start, end)`` intervals in log time.
    """

    index: int
    train_range: Tuple[float, float]
    validation_range: Tuple[float, float]
    test_range: Tuple[float, float]

    def __post_init__(self) -> None:
        for name, (start, end) in (
            ("train_range", self.train_range),
            ("validation_range", self.validation_range),
            ("test_range", self.test_range),
        ):
            if end < start:
                raise ValueError(f"{name} must satisfy start <= end")
        if self.validation_range[1] > self.test_range[0] + 1e-9:
            raise ValueError("validation data must precede the test range")

    @property
    def history_range(self) -> Tuple[float, float]:
        """Everything available before the test range (train + validation)."""
        return (self.train_range[0], self.validation_range[1])

    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        return simple_to_dict(self, "time_series_split")

    @classmethod
    def from_dict(cls, data: dict) -> "TimeSeriesSplit":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import simple_from_dict

        return simple_from_dict(
            cls,
            data,
            "time_series_split",
            tuple_fields=("train_range", "validation_range", "test_range"),
        )


class TimeSeriesNestedCV:
    """Generator of the six time-series splits of Figure 2."""

    def __init__(
        self,
        n_parts: int = 6,
        train_fraction: float = 0.75,
        bootstrap_seconds: float = 14 * DAY,
    ) -> None:
        check_positive("n_parts", n_parts)
        check_fraction("train_fraction", train_fraction)
        check_positive("bootstrap_seconds", bootstrap_seconds)
        if n_parts < 1:
            raise ValueError("n_parts must be at least 1")
        self.n_parts = int(n_parts)
        self.train_fraction = float(train_fraction)
        self.bootstrap_seconds = float(bootstrap_seconds)

    def part_boundaries(self, t_start: float, t_end: float) -> List[float]:
        """Boundaries of the equal parts, ``n_parts + 1`` values."""
        if t_end <= t_start:
            raise ValueError("t_end must be greater than t_start")
        width = (t_end - t_start) / self.n_parts
        return [t_start + i * width for i in range(self.n_parts + 1)]

    def splits(self, t_start: float, t_end: float) -> List[TimeSeriesSplit]:
        """Build the splits covering ``[t_start, t_end)``."""
        boundaries = self.part_boundaries(t_start, t_end)
        splits: List[TimeSeriesSplit] = []
        for i in range(self.n_parts):
            test_start = boundaries[i]
            test_end = boundaries[i + 1]
            if i == 0:
                # Bootstrap split: the first two weeks are used for training
                # and validation, the rest of the first part for testing.  On
                # very short logs the bootstrap window is capped at half of
                # the first part so the test range is never empty.
                bootstrap_end = min(
                    t_start + self.bootstrap_seconds,
                    test_start + 0.5 * (test_end - test_start),
                )
                train_end = t_start + self.train_fraction * (bootstrap_end - t_start)
                splits.append(
                    TimeSeriesSplit(
                        index=0,
                        train_range=(t_start, train_end),
                        validation_range=(train_end, bootstrap_end),
                        test_range=(bootstrap_end, test_end),
                    )
                )
                continue
            history_start = t_start
            history_end = test_start
            train_end = history_start + self.train_fraction * (
                history_end - history_start
            )
            splits.append(
                TimeSeriesSplit(
                    index=i,
                    train_range=(history_start, train_end),
                    validation_range=(train_end, history_end),
                    test_range=(test_start, test_end),
                )
            )
        return splits
