"""Staged experiment pipeline: pure stages composed by the driver.

The monolithic ``run_experiment`` loop is decomposed into five stages, each a
pure function returning a serializable dataclass:

``prepare_data``
    Telemetry generation (or ingestion), retirement-bias / UE-burst
    reduction, workload generation and per-node Table 1 feature tracks.
``make_splits``
    The time-series nested cross-validation layout (Figure 2).
``train_split``
    Builds every enabled approach's policy for one split via the approach
    registry (random-forest training, threshold selection, RL hyperparameter
    search).
``evaluate_split``
    Replays trained policies over the split's test traces.
``aggregate``
    Folds per-split evaluations into the :class:`ExperimentResult` behind
    Figures 3, 4, 5, 7 and Table 2.

For parallel execution the driver does not call ``train_split`` /
``evaluate_split`` directly: it schedules one :func:`run_split_group` task
per (split × approach group) through :mod:`repro.evaluation.executor`, so
e.g. the random-forest family of split 3 trains while the RL agent of split
1 is still learning.  The dominant "rl" group additionally decomposes into
one :func:`run_rl_trial` task per hyperparameter candidate plus a
:func:`run_rl_reduce` select-best task per split
(``ExperimentConfig.rl_trial_tasks``): only the warm-started trial 0 rides
the cross-split chain, while the remaining trials fan out across idle
workers.  All randomness is drawn from keyed
:class:`~repro.utils.rng.RngFactory` streams (per-trial settings are
pre-drawn from one sequential stream per split), which makes every task
self-seeding: serial and parallel schedules — and both ``rl_trial_tasks``
shapes — produce identical results (wall-clock training-cost accounting
aside — disable ``ExperimentConfig.charge_training_time`` for
bitwise-identical runs).

Two content-keyed caches remove redundant work across experiments:
:class:`PreparedDataCache` shares one :class:`PreparedData` product between
scenarios whose data-preparation inputs match (the sweep engine of
:mod:`repro.evaluation.sweep` relies on it), and a process-wide trace cache
keyed by ``(data key, split, seed)`` lets every approach group of a split
replay the same immutable test traces instead of rebuilding them per task.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dataset import build_prediction_dataset
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.config import ScenarioConfig
from repro.core import kernels
from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.environment import MitigationEnv
from repro.core.features import NodeFeatureTrack, StateNormalizer, build_feature_tracks
from repro.core.hyperparams import HyperparameterSpace
from repro.core.policies import MitigationPolicy, RLPolicy
from repro.core.trainer import train_agent
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.cross_validation import TimeSeriesNestedCV, TimeSeriesSplit
from repro.evaluation.executor import ExecutorStats, Task
from repro.evaluation.metrics import ConfusionCounts
from repro.evaluation.registry import (
    approach_groups,
    approach_order,
    enabled_specs,
    ensure_sc20_variants,
)
from repro.evaluation.runner import (
    EvaluationTrace,
    PolicyEvaluation,
    build_traces,
    evaluate_policy,
)
from repro.telemetry.error_log import ErrorLog
from repro.telemetry.generator import TelemetryGenerator
from repro.telemetry.reduction import ReductionReport, prepare_log
from repro.utils.rng import RngFactory
from repro.workload.generator import WorkloadGenerator
from repro.workload.job import JobLog
from repro.workload.sampling import JobSequenceSampler
from repro.workload.scaling import scale_job_log

__all__ = [
    "ApproachResult",
    "ExperimentConfig",
    "ExperimentResult",
    "GroupOutcome",
    "PreparedData",
    "PreparedDataCache",
    "RLTrialResult",
    "SC20SplitArtifacts",
    "SplitContext",
    "SplitEvaluation",
    "TrainedSplit",
    "aggregate",
    "build_split_tasks",
    "clear_trace_cache",
    "default_prepared_cache",
    "evaluate_split",
    "make_splits",
    "prepare_data",
    "prepared_data_key",
    "run_rl_reduce",
    "run_rl_trial",
    "run_split_group",
    "trace_cache_stats",
    "train_split",
]


# --------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling how heavy the experiment is to run.

    The defaults are a scaled-down schedule suitable for the benchmark
    harness; :meth:`paper` returns the full schedule described in
    Sections 3.3 and 4.1 (20,000 episodes per agent, 60 + narrowed random
    search), which takes hours.
    """

    #: Episodes per hyperparameter trial of the RL agent.
    rl_episodes: int = 400
    #: Number of random-search trials in the first round (the first trial
    #: always uses the base configuration unchanged).
    rl_hyperparam_trials: int = 2
    #: Number of trials in the narrowed second round.
    rl_hyperparam_refine: int = 0
    #: Hidden layout of the Q-network (paper: 256, 256, 128, 64).
    rl_hidden_sizes: Sequence[int] = (64, 48)
    #: Base DQN configuration; hyperparameter search overrides some fields.
    rl_base_config: DQNConfig = field(
        default_factory=lambda: DQNConfig(
            epsilon_decay_steps=4000, warmup_transitions=128, buffer_capacity=20000
        )
    )
    #: Reuse the best agent of the previous split as a warm-started candidate.
    #: Warm starting chains the RL tasks of consecutive splits, limiting how
    #: much of the RL work the parallel executor can overlap.
    rl_warm_start: bool = True
    #: Decompose each split's RL hyperparameter search into one executor task
    #: per trial plus a select-best reduce task (the default).  Only trial 0 —
    #: the warm-started base candidate — rides the cross-split dependency
    #: chain; trials 1..N are independent samples that fan out across workers
    #: immediately, shrinking the serial critical path from splits × trials
    #: training runs to splits.  Results are bit-identical either way (every
    #: trial draws from pre-drawn keyed RNG streams); ``False`` restores the
    #: old in-task trial loop but is **deprecated** (``build_split_tasks``
    #: warns) and will be removed.
    rl_trial_tasks: bool = True
    #: Random forest size of the SC20 baseline.
    rf_n_estimators: int = 25
    rf_max_depth: int = 10
    #: Number of candidate thresholds evaluated to find the optimal one.
    threshold_grid_size: int = 21
    #: Threshold perturbations of the realistic SC20 variants.
    sc20_threshold_offsets: Tuple[float, ...] = (0.02, 0.05)
    #: Approach toggles (consumed by the registry's ``enabled`` predicates).
    include_static: bool = True
    include_oracle: bool = True
    include_rf: bool = True
    include_myopic: bool = True
    include_rl: bool = True
    #: Evaluate the Fleet-mix composite policy, which routes every decision
    #: to a per-segment sub-policy according to the topology's fleet
    #: segments.  Off by default: it only makes sense for heterogeneous
    #: fleets, and keeping it out of the default approach set leaves all
    #: existing results untouched.
    include_fleet_mix: bool = False
    #: Job-size scaling factor (Section 5.6); 1.0 reproduces the base system.
    job_scaling_factor: float = 1.0
    #: Restrict the error log to one DRAM manufacturer (Section 5.3).
    manufacturer: Optional[int] = None
    #: Maximum concurrent (split × approach-group) tasks; 1 runs serially.
    n_workers: int = 1
    #: Executor backend: "process", "thread" or "serial".
    executor_kind: str = "process"
    #: Charge wall-clock training/validation time to the learned policies
    #: (Section 4.3).  Wall-clock is inherently non-deterministic; disable to
    #: make two runs of the same experiment bitwise identical (the
    #: determinism tests and the parallel-vs-serial comparison rely on this).
    charge_training_time: bool = True
    #: Run each pipeline stage under cProfile and surface the top cumulative
    #: functions in ``ExperimentResult.extras["profile"]`` (CLI:
    #: ``--profile``).  A diagnostic knob like the scheduling fields: it
    #: never changes results, only adds instrumentation in the driver
    #: process (the process-pool workers run outside the profiler).
    profile: bool = False
    #: Dispatch the decision core's hottest residual loops (SumTree descent,
    #: CART forest walk, replay cost fold) to numba-compiled kernels (CLI:
    #: ``--compiled``; env: ``REPRO_COMPILED``).  Results are bit-identical
    #: with the flag on or off — the kernels perform the same IEEE-754
    #: operations in the same order — and when numba is not installed the
    #: flag degrades to the pure-numpy path with a single RuntimeWarning.
    compiled: bool = False

    @staticmethod
    def fast() -> "ExperimentConfig":
        """Cheapest configuration that still trains every approach."""
        return ExperimentConfig(
            rl_episodes=120,
            rl_hyperparam_trials=1,
            rl_hidden_sizes=(48, 32),
            rf_n_estimators=15,
            threshold_grid_size=11,
        )

    @staticmethod
    def paper() -> "ExperimentConfig":
        """The full schedule of the paper (hours of compute)."""
        return ExperimentConfig(
            rl_episodes=20_000,
            rl_hyperparam_trials=60,
            rl_hyperparam_refine=20,
            rl_hidden_sizes=(256, 256, 128, 64),
            rf_n_estimators=100,
            threshold_grid_size=101,
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy of the config with some fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import tag

        payload = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "rl_base_config"
        }
        payload["rl_hidden_sizes"] = list(self.rl_hidden_sizes)
        payload["sc20_threshold_offsets"] = list(self.sc20_threshold_offsets)
        payload["rl_base_config"] = self.rl_base_config.to_dict()
        return tag("experiment_config", payload)

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import untag

        payload = dict(untag(data, "experiment_config"))
        payload["rl_hidden_sizes"] = tuple(payload["rl_hidden_sizes"])
        payload["sc20_threshold_offsets"] = tuple(payload["sc20_threshold_offsets"])
        payload["rl_base_config"] = DQNConfig.from_dict(payload["rl_base_config"])
        return cls(**payload)


# --------------------------------------------------------------------- #
# Result containers
# --------------------------------------------------------------------- #
@dataclass
class ApproachResult:
    """Accumulated results of one approach across all splits."""

    name: str
    per_split: List[PolicyEvaluation] = field(default_factory=list)

    @property
    def total_costs(self) -> CostBreakdown:
        if not self.per_split:
            return CostBreakdown()
        return sum(evaluation.costs for evaluation in self.per_split)

    @property
    def total_confusion(self) -> ConfusionCounts:
        if not self.per_split:
            return ConfusionCounts()
        return sum(evaluation.confusion for evaluation in self.per_split)

    @property
    def per_split_total_cost(self) -> List[float]:
        return [evaluation.costs.total for evaluation in self.per_split]

    @property
    def per_split_ue_cost(self) -> List[float]:
        return [evaluation.costs.ue_cost for evaluation in self.per_split]

    @property
    def per_split_mitigation_cost(self) -> List[float]:
        return [evaluation.costs.overhead_cost for evaluation in self.per_split]

    def to_dict(self) -> Dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import tag

        return tag(
            "approach_result",
            {
                "name": self.name,
                "per_split": [evaluation.to_dict() for evaluation in self.per_split],
            },
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "ApproachResult":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import untag

        payload = untag(data, "approach_result")
        return cls(
            name=payload["name"],
            per_split=[
                PolicyEvaluation.from_dict(item) for item in payload["per_split"]
            ],
        )


@dataclass
class ExperimentResult:
    """Everything produced by :func:`repro.evaluation.experiment.run_experiment`."""

    scenario_name: str
    mitigation_cost_node_hours: float
    approaches: Dict[str, ApproachResult]
    splits: List[TimeSeriesSplit]
    reduction_report: ReductionReport
    n_test_events: int
    wallclock_seconds: float
    #: Trained artifacts of the final split (inputs to Figure 6).
    final_rl_policy: Optional[RLPolicy] = None
    final_sc20_policy: Optional[SC20RandomForestPolicy] = None
    final_test_features: Optional[np.ndarray] = None
    #: Task-level timing of the run's executor graph (per-task seconds and
    #: the measured critical path).  A run diagnostic, not a result: like
    #: the Figure 6 artifacts it is not serialized and comes back ``None``
    #: from :meth:`from_dict` / a store load.
    executor_stats: Optional["ExecutorStats"] = None
    #: Run diagnostics keyed by name (e.g. ``"profile"`` when
    #: ``ExperimentConfig.profile`` is set).  Like ``executor_stats``, never
    #: serialized: a store round-trip comes back with an empty mapping.
    extras: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def approach_names(self) -> List[str]:
        ordered = [name for name in approach_order() if name in self.approaches]
        extras = [name for name in self.approaches if name not in ordered]
        return ordered + extras

    def total_costs(self) -> Dict[str, CostBreakdown]:
        """Total cost breakdown per approach (Figure 3 bar group)."""
        return {name: self.approaches[name].total_costs for name in self.approach_names}

    def confusions(self) -> Dict[str, ConfusionCounts]:
        """Accumulated confusion counts per approach (Table 2)."""
        return {
            name: self.approaches[name].total_confusion for name in self.approach_names
        }

    def per_split_series(self, which: str = "total") -> Dict[str, List[float]]:
        """Per-split cost series per approach (Figure 4)."""
        series = {}
        for name in self.approach_names:
            approach = self.approaches[name]
            if which == "total":
                series[name] = approach.per_split_total_cost
            elif which == "ue":
                series[name] = approach.per_split_ue_cost
            elif which == "mitigation":
                series[name] = approach.per_split_mitigation_cost
            else:
                raise ValueError(f"unknown series {which!r}")
        return series

    def split_labels(self) -> List[str]:
        return [f"split-{split.index + 1}" for split in self.splits]

    def saving_vs_never(self, name: str) -> float:
        """Fractional total-cost saving of ``name`` relative to Never-mitigate."""
        never = self.approaches.get("Never-mitigate")
        target = self.approaches.get(name)
        if never is None or target is None:
            raise KeyError("both the approach and Never-mitigate must be present")
        return target.total_costs.saving_vs(never.total_costs)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`).

        Covers the scientific payload — scenario name, per-approach cost and
        confusion accounting, splits, reduction report, event count and
        wall-clock.  The trained Figure 6 artifacts (``final_rl_policy``,
        ``final_sc20_policy``, ``final_test_features``) are *not* serialized:
        they are model objects, not results, and come back as ``None`` from
        :meth:`from_dict`.
        """
        from repro.serialization import tag

        return tag(
            "experiment_result",
            {
                "scenario_name": self.scenario_name,
                "mitigation_cost_node_hours": self.mitigation_cost_node_hours,
                "approaches": {
                    name: self.approaches[name].to_dict()
                    for name in self.approach_names
                },
                "splits": [split.to_dict() for split in self.splits],
                "reduction_report": self.reduction_report.to_dict(),
                "n_test_events": self.n_test_events,
                "wallclock_seconds": self.wallclock_seconds,
            },
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (trained artifacts come back ``None``)."""
        from repro.serialization import untag

        payload = untag(data, "experiment_result")
        return cls(
            scenario_name=payload["scenario_name"],
            mitigation_cost_node_hours=payload["mitigation_cost_node_hours"],
            approaches={
                name: ApproachResult.from_dict(item)
                for name, item in payload["approaches"].items()
            },
            splits=[TimeSeriesSplit.from_dict(item) for item in payload["splits"]],
            reduction_report=ReductionReport.from_dict(payload["reduction_report"]),
            n_test_events=payload["n_test_events"],
            wallclock_seconds=payload["wallclock_seconds"],
        )

    def to_json(self) -> str:
        """Deterministic JSON text of :meth:`to_dict` (sorted keys)."""
        from repro.serialization import canonical_json

        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        import json

        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------- #
# Stage outputs
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PreparedData:
    """Output of :func:`prepare_data` — everything the splits consume."""

    scenario: ScenarioConfig
    tracks: Dict[int, NodeFeatureTrack]
    sampler: JobSequenceSampler
    reduction_report: ReductionReport
    #: Content key of the data-preparation inputs (see
    #: :func:`prepared_data_key`).  Identical keys guarantee identical
    #: tracks/sampler, which the per-split trace cache relies on; the empty
    #: tuple (hand-built instances) opts out of trace caching.
    data_key: Tuple = ()


@dataclass(frozen=True)
class TrainedSplit:
    """Output of :func:`train_split` — ready-to-evaluate policies."""

    split_index: int
    policies: Dict[str, MitigationPolicy]
    #: Best RL agent state after this split (input to the next split's
    #: warm start); passes the incoming state through when RL did not train.
    rl_state: Optional[dict] = None


@dataclass(frozen=True)
class SplitEvaluation:
    """Output of :func:`evaluate_split` — per-approach test-range results."""

    split_index: int
    evaluations: Dict[str, PolicyEvaluation]
    n_test_events: int


@dataclass(frozen=True)
class GroupOutcome:
    """Result of one (split × approach-group) executor task."""

    split_index: int
    group: str
    evaluations: Dict[str, PolicyEvaluation]
    n_test_events: int
    #: RL warm-start carry (only set by the "rl" group).
    rl_state: Optional[dict] = None
    #: Trained artifacts for Figure 6 (last split wins during aggregation).
    sc20_policy: Optional[SC20RandomForestPolicy] = None
    rl_policy: Optional[RLPolicy] = None


# --------------------------------------------------------------------- #
# Stages 1 and 2: data preparation and CV layout
# --------------------------------------------------------------------- #
def _effective_manufacturer(
    scenario: ScenarioConfig, config: ExperimentConfig
) -> Optional[int]:
    """Manufacturer restriction: the config override wins over the scenario."""
    if config.manufacturer is not None:
        return config.manufacturer
    return scenario.manufacturer


def _effective_job_scaling(scenario: ScenarioConfig, config: ExperimentConfig) -> float:
    """Job-size scaling: the scenario axis composes with the config knob."""
    return scenario.job_scaling_factor * config.job_scaling_factor


def prepared_data_key(scenario: ScenarioConfig, config: ExperimentConfig) -> Tuple:
    """Content key of everything :func:`prepare_data` consumes.

    Two (scenario, config) pairs with equal keys produce identical
    :class:`PreparedData` products (same telemetry, same reduction, same
    feature tracks, same sampler).  Evaluation-only parameters — mitigation
    cost, restartability, the CV layout, the prediction window — are
    deliberately excluded: sweeps over them share one prepared dataset.
    """
    return (
        scenario.seed,
        scenario.topology,
        scenario.fault_model,
        scenario.workload,
        scenario.duration_seconds,
        scenario.evaluation.ue_burst_window_seconds,
        scenario.evaluation.merge_window_seconds,
        _effective_manufacturer(scenario, config),
        _effective_job_scaling(scenario, config),
    )


#: Distinguishes products built from externally supplied logs: their content
#: is not derivable from (scenario, config), so each gets a unique data key
#: and never shares trace-cache entries with synthetic runs (or with other
#: external logs of the same scenario).
_EXTERNAL_DATA_NONCE = itertools.count()


def prepare_data(
    scenario: ScenarioConfig,
    config: ExperimentConfig,
    error_log: Optional[ErrorLog] = None,
    job_log: Optional[JobLog] = None,
) -> PreparedData:
    """Generate (or accept) the logs and derive feature tracks and sampler."""
    evaluation_cfg = scenario.evaluation
    factory = RngFactory(scenario.seed)
    external_inputs = error_log is not None or job_log is not None

    if error_log is None:
        error_log = TelemetryGenerator(
            scenario.topology,
            scenario.fault_model,
            scenario.duration_seconds,
            seed=factory.child("telemetry"),
        ).generate()
    manufacturer = _effective_manufacturer(scenario, config)
    if manufacturer is not None:
        error_log = error_log.filter_manufacturer(manufacturer)
    reduced_log, reduction_report = prepare_log(
        error_log, evaluation_cfg.ue_burst_window_seconds
    )

    if job_log is None:
        job_log = WorkloadGenerator(
            scenario.workload,
            n_cluster_nodes=scenario.topology.n_nodes,
            duration_seconds=scenario.duration_seconds,
            seed=factory.stream("workload"),
        ).generate()
    job_scaling = _effective_job_scaling(scenario, config)
    if job_scaling != 1.0:
        job_log = scale_job_log(job_log, job_scaling)
    sampler = JobSequenceSampler(job_log, seed=factory.stream("sampler"))

    tracks = build_feature_tracks(reduced_log, evaluation_cfg.merge_window_seconds)
    data_key = prepared_data_key(scenario, config)
    if external_inputs:
        data_key += (("external", next(_EXTERNAL_DATA_NONCE)),)
    return PreparedData(
        scenario=scenario,
        tracks=tracks,
        sampler=sampler,
        reduction_report=reduction_report,
        data_key=data_key,
    )


class PreparedDataCache:
    """Content-keyed cache of :func:`prepare_data` products.

    Sweeps that vary only evaluation parameters (mitigation cost,
    restartability, CV layout) share a single prepared dataset; sweeps along
    a data axis (seed, manufacturer, job scale) additionally share the raw
    telemetry and workload logs through two sub-caches, so e.g. the Figure 5
    per-manufacturer points regenerate nothing but the filtered reduction.

    A cached product is re-bound (``dataclasses.replace``) to each
    requester's scenario, so downstream stages read the right evaluation
    parameters while the heavyweight ``tracks`` / ``sampler`` objects stay
    shared.  Sharing is safe because the pipeline never mutates them: every
    consumer draws randomness from its own keyed stream, never from the
    sampler's internal generator.

    ``hits`` / ``misses`` / ``prepare_calls`` count cache behaviour;
    the property tests assert on them.

    ``spill`` optionally attaches a disk backend — any object with
    ``load_prepared(scenario, config) -> Optional[PreparedData]`` and
    ``save_prepared(prepared, config)``, in practice a
    :class:`repro.store.ArtifactStore`.  On a memory miss the spill is
    consulted before :func:`prepare_data` runs, and every freshly built
    *synthetic* product is written through, so sweeps resume across
    sessions (externally supplied logs are never spilled: their content is
    not derivable from the scenario).  ``spill_hits`` / ``spill_saves``
    count the disk traffic.
    """

    def __init__(self, maxsize: int = 8, spill=None) -> None:
        self.maxsize = maxsize
        self.spill = spill
        self._prepared: "OrderedDict[Tuple, Tuple[PreparedData, Tuple]]" = OrderedDict()
        self._telemetry: "OrderedDict[Tuple, ErrorLog]" = OrderedDict()
        self._job_logs: "OrderedDict[Tuple, JobLog]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.prepare_calls = 0
        self.spill_hits = 0
        self.spill_saves = 0

    def __len__(self) -> int:
        return len(self._prepared)

    def clear(self) -> None:
        self._prepared.clear()
        self._telemetry.clear()
        self._job_logs.clear()

    @staticmethod
    def _evict(cache: "OrderedDict", maxsize: int) -> None:
        while len(cache) > maxsize:
            cache.popitem(last=False)

    def _raw_error_log(self, scenario: ScenarioConfig) -> ErrorLog:
        key = (
            scenario.seed,
            scenario.topology,
            scenario.fault_model,
            scenario.duration_seconds,
        )
        if key not in self._telemetry:
            self._telemetry[key] = TelemetryGenerator(
                scenario.topology,
                scenario.fault_model,
                scenario.duration_seconds,
                seed=RngFactory(scenario.seed).child("telemetry"),
            ).generate()
            self._evict(self._telemetry, self.maxsize)
        else:
            self._telemetry.move_to_end(key)
        return self._telemetry[key]

    def _raw_job_log(self, scenario: ScenarioConfig) -> JobLog:
        key = (
            scenario.seed,
            scenario.workload,
            scenario.topology.n_nodes,
            scenario.duration_seconds,
        )
        if key not in self._job_logs:
            self._job_logs[key] = WorkloadGenerator(
                scenario.workload,
                n_cluster_nodes=scenario.topology.n_nodes,
                duration_seconds=scenario.duration_seconds,
                seed=RngFactory(scenario.seed).stream("workload"),
            ).generate()
            self._evict(self._job_logs, self.maxsize)
        else:
            self._job_logs.move_to_end(key)
        return self._job_logs[key]

    def get(
        self,
        scenario: ScenarioConfig,
        config: ExperimentConfig,
        error_log: Optional[ErrorLog] = None,
        job_log: Optional[JobLog] = None,
    ) -> PreparedData:
        """Return (building at most once) the prepared data for a scenario.

        Externally supplied logs are folded into the key by identity; the
        cache entry keeps a reference to them so the identity stays valid
        for the entry's lifetime.
        """
        external = (
            None if error_log is None else id(error_log),
            None if job_log is None else id(job_log),
        )
        key = prepared_data_key(scenario, config) + (external,)
        entry = self._prepared.get(key)
        if entry is not None:
            self.hits += 1
            self._prepared.move_to_end(key)
            prepared = entry[0]
            if prepared.scenario != scenario:
                prepared = replace(prepared, scenario=scenario)
            return prepared
        self.misses += 1
        if self.spill is not None and error_log is None and job_log is None:
            spilled = self.spill.load_prepared(scenario, config)
            if spilled is not None:
                self.spill_hits += 1
                self._prepared[key] = (spilled, (None, None))
                self._evict(self._prepared, self.maxsize)
                return spilled
        self.prepare_calls += 1
        if error_log is None:
            error_log = self._raw_error_log(scenario)
            pinned_error_log = None
        else:
            pinned_error_log = error_log
        if job_log is None:
            job_log = self._raw_job_log(scenario)
            pinned_job_log = None
        else:
            pinned_job_log = job_log
        prepared = prepare_data(scenario, config, error_log=error_log, job_log=job_log)
        if pinned_error_log is None and pinned_job_log is None:
            # Both logs came from the sub-caches, which regenerate exactly
            # what prepare_data itself would have: the product is fully
            # derivable from (scenario, config), so restore the pure content
            # key that prepare_data replaced with an external-input nonce —
            # synthetic runs inside and outside the cache then share traces.
            prepared = replace(prepared, data_key=prepared_data_key(scenario, config))
            if self.spill is not None:
                self.spill.save_prepared(prepared, config)
                self.spill_saves += 1
        self._prepared[key] = (prepared, (pinned_error_log, pinned_job_log))
        self._evict(self._prepared, self.maxsize)
        return prepared


#: Process-wide default cache used by :func:`repro.evaluation.sweep.run_sweep`
#: when the caller does not supply one, so consecutive sweeps in one session
#: (e.g. the benchmark harness) share prepared data across calls.
_DEFAULT_PREPARED_CACHE = PreparedDataCache()


def default_prepared_cache() -> PreparedDataCache:
    """The process-wide :class:`PreparedDataCache`."""
    return _DEFAULT_PREPARED_CACHE


def make_splits(scenario: ScenarioConfig) -> List[TimeSeriesSplit]:
    """The nested cross-validation splits of Figure 2 for one scenario."""
    evaluation_cfg = scenario.evaluation
    cv = TimeSeriesNestedCV(
        n_parts=evaluation_cfg.cv_parts,
        train_fraction=evaluation_cfg.cv_train_fraction,
        bootstrap_seconds=evaluation_cfg.cv_bootstrap_seconds,
    )
    return cv.splits(0.0, scenario.duration_seconds)


# --------------------------------------------------------------------- #
# Shared per-split resources
# --------------------------------------------------------------------- #
#: Process-wide cache of built test traces, keyed by
#: ``(PreparedData.data_key, split index, test range, trace seed)``.  Every
#: approach group of a split — and every sweep point sharing the same
#: prepared data — replays the *same* trace objects, so rebuilding them once
#: per (split × group) task is pure waste.  Traces are immutable
#: (frozen dataclasses over read-only arrays), which makes sharing safe.
_TRACE_CACHE: "OrderedDict[Tuple, List[EvaluationTrace]]" = OrderedDict()
_TRACE_CACHE_MAXSIZE = 64
_TRACE_CACHE_STATS = {"hits": 0, "misses": 0}
#: Guards cache + counters against the thread executor backend (lookup,
#: LRU reordering and eviction race otherwise: a concurrent evict between
#: get() and move_to_end() raises KeyError and kills the task).
_TRACE_CACHE_LOCK = threading.Lock()


def trace_cache_stats() -> Dict[str, int]:
    """Copy of the process-wide trace-cache hit/miss counters."""
    with _TRACE_CACHE_LOCK:
        return dict(_TRACE_CACHE_STATS)


def clear_trace_cache() -> None:
    """Drop all cached traces and reset the counters (test isolation)."""
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE.clear()
        _TRACE_CACHE_STATS["hits"] = 0
        _TRACE_CACHE_STATS["misses"] = 0


def _cached_range_traces(
    prepared: PreparedData,
    split: TimeSeriesSplit,
    time_range: Tuple[float, float],
    seed: int,
) -> List[EvaluationTrace]:
    """Build (or reuse) the traces of one time range of one prepared dataset.

    Serves the test traces of every approach group and the RL search's
    validation/fallback scoring traces: with per-trial RL tasks, every trial
    of a split scores on the same traces, so rebuilding them once per trial
    (instead of once per split) would be pure waste on the thread/serial
    backends — and on the process backend each worker builds them at most
    once per (split, range).
    """
    if not prepared.data_key:
        # Hand-built PreparedData carries no content key; skip caching rather
        # than risk colliding two unrelated datasets.
        return build_traces(prepared.tracks, prepared.sampler, *time_range, seed=seed)
    key = (prepared.data_key, split.index, tuple(time_range), seed)
    with _TRACE_CACHE_LOCK:
        traces = _TRACE_CACHE.get(key)
        if traces is not None:
            _TRACE_CACHE_STATS["hits"] += 1
            _TRACE_CACHE.move_to_end(key)
            return traces
        _TRACE_CACHE_STATS["misses"] += 1
    # Build outside the lock (expensive); concurrent builders of the same
    # key produce identical traces, so the last insert winning is harmless.
    traces = build_traces(prepared.tracks, prepared.sampler, *time_range, seed=seed)
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE[key] = traces
        while len(_TRACE_CACHE) > _TRACE_CACHE_MAXSIZE:
            _TRACE_CACHE.popitem(last=False)
    return traces


def _cached_test_traces(
    prepared: PreparedData, split: TimeSeriesSplit, seed: int
) -> List[EvaluationTrace]:
    """Build (or reuse) the test traces of one split of one prepared dataset."""
    return _cached_range_traces(prepared, split, split.test_range, seed)


@dataclass(frozen=True)
class SC20SplitArtifacts:
    """Trained forest of one split, shared by the whole SC20-RF family."""

    base_policy: SC20RandomForestPolicy
    optimal_threshold: float

    @property
    def optimal_policy(self) -> SC20RandomForestPolicy:
        return self.base_policy.with_threshold(self.optimal_threshold, name="SC20-RF")


class SplitContext:
    """Everything an approach builder may need for one split.

    Lazily computes — and caches — the expensive shared resources: the test
    traces, the trained SC20 forest with its optimal threshold, and the
    hyperparameter-searched RL agent.  Builders of the same group therefore
    train each model exactly once per split.
    """

    _UNSET = object()

    def __init__(
        self,
        prepared: PreparedData,
        split: TimeSeriesSplit,
        config: ExperimentConfig,
        rl_carry_in: Optional[dict] = None,
    ) -> None:
        self.prepared = prepared
        self.split = split
        self.config = config
        self.rl_carry_in = rl_carry_in
        self.factory = RngFactory(prepared.scenario.seed)
        self._test_traces: Optional[List[EvaluationTrace]] = None
        self._sc20 = self._UNSET
        self._rl = self._UNSET
        self._rl_carry_out: Optional[dict] = rl_carry_in

    # -- scenario shortcuts -------------------------------------------- #
    @property
    def scenario(self) -> ScenarioConfig:
        return self.prepared.scenario

    @property
    def evaluation_config(self):
        return self.scenario.evaluation

    @property
    def mitigation_cost(self) -> float:
        return self.evaluation_config.mitigation_cost_node_hours

    @property
    def restartable(self) -> bool:
        return self.evaluation_config.restartable

    @property
    def prediction_window(self) -> float:
        return self.evaluation_config.prediction_window_seconds

    @property
    def tracks(self) -> Dict[int, NodeFeatureTrack]:
        return self.prepared.tracks

    # -- shared resources ---------------------------------------------- #
    def test_traces(self) -> List[EvaluationTrace]:
        """The split's test-range traces (identical for every approach).

        Served from the process-wide trace cache keyed by
        ``(data key, split, seed)``, so all approach groups of a split — and
        all sweep points sharing the prepared data — reuse one trace set.
        """
        if self._test_traces is None:
            seed = int(
                self.factory.stream(f"test-{self.split.index}").integers(1 << 30)
            )
            self._test_traces = _cached_test_traces(self.prepared, self.split, seed)
        return self._test_traces

    def evaluate(self, policy: MitigationPolicy, **kwargs) -> PolicyEvaluation:
        """Replay ``policy`` over the split's test traces."""
        kwargs.setdefault("include_training_cost", self.config.charge_training_time)
        return evaluate_policy(
            self.test_traces(),
            policy,
            self.mitigation_cost,
            restartable=self.restartable,
            prediction_window_seconds=self.prediction_window,
            **kwargs,
        )

    def sc20(self) -> Optional[SC20SplitArtifacts]:
        """Trained SC20 forest and optimal threshold (None without history)."""
        if self._sc20 is self._UNSET:
            self._sc20 = _train_sc20_for_split(self, self.config, self.factory)
        return self._sc20

    def sc20_if_trained(self) -> Optional[SC20SplitArtifacts]:
        """The cached SC20 artifacts — never triggers training."""
        return None if self._sc20 is self._UNSET else self._sc20

    def rl(self) -> Optional[RLPolicy]:
        """Hyperparameter-searched RL policy (None when nothing trained)."""
        if self._rl is self._UNSET:
            agent, training_cost, best_state = _train_rl_for_split(
                self.prepared, self.split, self.config, self.rl_carry_in
            )
            if agent is not None:
                self._rl_carry_out = best_state
                self._rl = RLPolicy(
                    agent,
                    StateNormalizer(),
                    training_cost_node_hours=training_cost,
                )
            else:
                self._rl = None
        return self._rl

    def rl_if_trained(self) -> Optional[RLPolicy]:
        """The cached RL policy — never triggers training."""
        return None if self._rl is self._UNSET else self._rl

    def _inject_rl(
        self, policy: Optional[RLPolicy], carry_out: Optional[dict]
    ) -> None:
        """Pre-seed the RL slot with an externally assembled policy.

        Used by the per-trial reduce task (:func:`run_rl_reduce`), which
        selects the best trial itself and must hand the resulting policy to
        every builder of the "rl" group without retriggering the in-task
        search.
        """
        self._rl = policy
        if carry_out is not None:
            self._rl_carry_out = carry_out

    @property
    def rl_carry_out(self) -> Optional[dict]:
        """RL state to hand to the next split (after :meth:`rl` ran)."""
        return self._rl_carry_out


# --------------------------------------------------------------------- #
# Model training helpers
# --------------------------------------------------------------------- #
def _select_optimal_threshold(
    base_policy: SC20RandomForestPolicy,
    traces: Sequence[EvaluationTrace],
    mitigation_cost: float,
    restartable: bool,
    prediction_window: float,
    grid_size: int,
) -> float:
    """Threshold minimising the total cost on ``traces`` (maximum advantage)."""
    best_threshold = 0.5
    best_cost = np.inf
    for threshold in SC20RandomForestPolicy.threshold_grid(grid_size):
        candidate = base_policy.with_threshold(float(threshold))
        evaluation = evaluate_policy(
            traces,
            candidate,
            mitigation_cost,
            restartable=restartable,
            prediction_window_seconds=prediction_window,
            include_training_cost=False,
        )
        if evaluation.costs.total < best_cost:
            best_cost = evaluation.costs.total
            best_threshold = float(threshold)
    return best_threshold


def _train_sc20_for_split(
    ctx: SplitContext, config: ExperimentConfig, factory: RngFactory
) -> Optional[SC20SplitArtifacts]:
    """Train the split's random forest and pick its optimal threshold."""
    split = ctx.split
    dataset = build_prediction_dataset(
        ctx.tracks,
        prediction_window_seconds=ctx.prediction_window,
        t_start=split.train_range[0],
        t_end=split.history_range[1],
    )
    if len(dataset) == 0:
        return None
    forest, rf_seconds = train_sc20_forest(
        dataset,
        n_estimators=config.rf_n_estimators,
        max_depth=config.rf_max_depth,
        seed=int(factory.stream(f"rf-{split.index}").integers(1 << 30)),
    )
    base_policy = SC20RandomForestPolicy(
        forest, training_cost_node_hours=rf_seconds / 3600.0
    )
    optimal = _select_optimal_threshold(
        base_policy,
        ctx.test_traces(),
        ctx.mitigation_cost,
        ctx.restartable,
        ctx.prediction_window,
        config.threshold_grid_size,
    )
    return SC20SplitArtifacts(base_policy=base_policy, optimal_threshold=optimal)


def _score_policy(
    policy: MitigationPolicy,
    traces: Sequence[EvaluationTrace],
    mitigation_cost: float,
    restartable: bool,
    prediction_window: float,
) -> float:
    """Negative total cost of a policy over traces (higher is better)."""
    if not traces:
        return 0.0
    evaluation = evaluate_policy(
        traces,
        policy,
        mitigation_cost,
        restartable=restartable,
        prediction_window_seconds=prediction_window,
        include_training_cost=False,
    )
    return -evaluation.costs.total


@dataclass(frozen=True)
class RLTrialResult:
    """Outcome of one hyperparameter trial of one split's RL search.

    The unit shipped between the per-trial executor tasks and the
    select-best reduce task: the trial's validation score, the trained
    policy parameters (a :meth:`~repro.core.dqn.DDDQNAgent.state_dict` —
    plain numpy arrays, cheap to pickle across the process backend) and the
    trial's own wall-clock training span.  ``trained`` is ``False`` when the
    split had no training data; trial 0 then passes the previous split's
    state through ``state`` unchanged (the warm-start carry of splits
    without history).
    """

    split_index: int
    trial: int
    score: float
    state: Optional[dict]
    train_seconds: float
    trained: bool


def _rl_n_trials(config: ExperimentConfig) -> int:
    """Number of hyperparameter trials per split (both search rounds)."""
    return max(1, config.rl_hyperparam_trials) + max(0, config.rl_hyperparam_refine)


def _rl_trial_settings(
    scenario: ScenarioConfig, config: ExperimentConfig, split_index: int
) -> List[Tuple[DQNConfig, int]]:
    """Pre-draw every trial's ``(DQNConfig, env seed)`` for one split.

    All trials' hyperparameters and seeds are drawn *sequentially* from the
    single keyed ``search-{split}`` stream — exactly the consumption order
    of the historical in-task trial loop — so the decomposed per-trial
    tasks reproduce the old loop bit for bit regardless of which worker
    runs which trial, and both ``rl_trial_tasks`` shapes share one draw
    sequence.  Trial 0 always uses the base configuration unchanged, so a
    tiny search budget still contains a known-reasonable setting.
    """
    space = HyperparameterSpace()
    search_rng = RngFactory(scenario.seed).stream(f"search-{split_index}")
    settings: List[Tuple[DQNConfig, int]] = []
    for trial in range(_rl_n_trials(config)):
        params = {} if trial == 0 else space.sample(search_rng)
        dqn_config = config.rl_base_config.with_overrides(
            hidden_sizes=tuple(config.rl_hidden_sizes),
            seed=int(search_rng.integers(1 << 30)),
            **params,
        )
        env_seed = int(search_rng.integers(1 << 30))
        settings.append((dqn_config, env_seed))
    return settings


def _rl_train_tracks(
    tracks: Dict[int, NodeFeatureTrack], split: TimeSeriesSplit
) -> Dict[int, NodeFeatureTrack]:
    """The nodes with trainable decision points inside the split's train range."""
    sliced = {
        node: track.slice_time(*split.train_range) for node, track in tracks.items()
    }
    return {
        node: track
        for node, track in sliced.items()
        if len(track) and track.n_decision_points > 0
    }


def _rl_scoring_traces(
    prepared: PreparedData, split: TimeSeriesSplit
) -> List[EvaluationTrace]:
    """The traces a split's RL candidates are scored on (keyed seeds).

    Validation-range traces when that range contains UEs; otherwise the
    training range (the Section 4.1 fallback).  Both seeds come from keyed
    streams of the scenario root, so every trial task of a split — on any
    worker — scores on identical traces, served from the process-wide
    trace cache.
    """
    factory = RngFactory(prepared.scenario.seed)
    validation_traces: List[EvaluationTrace] = []
    if split.validation_range[1] > split.validation_range[0]:
        seed = int(factory.stream(f"val-{split.index}").integers(1 << 30))
        validation_traces = _cached_range_traces(
            prepared, split, split.validation_range, seed
        )
    if any(trace.n_ues for trace in validation_traces):
        return validation_traces
    # Fall back to scoring on the training range (Section 4.1) when the
    # validation range contains no UEs.
    seed = int(factory.stream(f"trainscore-{split.index}").integers(1 << 30))
    return _cached_range_traces(prepared, split, split.train_range, seed)


def _agent_from_state(config: ExperimentConfig, state: dict) -> DDDQNAgent:
    """Reconstruct an evaluation-ready agent from checkpointed parameters."""
    return DDDQNAgent.from_state_dict(
        StateNormalizer().state_dim,
        state,
        config.rl_base_config.with_overrides(
            hidden_sizes=tuple(config.rl_hidden_sizes)
        ),
    )


def _train_one_rl_trial(
    prepared: PreparedData,
    split: TimeSeriesSplit,
    trial: int,
    config: ExperimentConfig,
    previous_state: Optional[dict],
    scoring_traces: Optional[List[EvaluationTrace]] = None,
) -> RLTrialResult:
    """Train and score one hyperparameter candidate of one split.

    Self-seeding (all randomness comes from keyed streams of the scenario
    root plus the pre-drawn trial settings), so the executor may run trials
    in any order on any worker without changing a single number.  The
    recorded ``train_seconds`` span covers exactly this trial's training and
    scoring — summing the spans gives schedule-independent
    ``training_cost_node_hours`` accounting however the trials were laid
    out across workers.

    ``scoring_traces`` lets a caller running several trials in one process
    (the in-task loop of :func:`_train_rl_for_split`) prefetch
    :func:`_rl_scoring_traces` once; per-trial executor tasks leave it
    ``None`` and share the build through the process-wide trace cache
    instead.
    """
    scenario = prepared.scenario
    evaluation_cfg = scenario.evaluation
    train_tracks = _rl_train_tracks(prepared.tracks, split)
    if not train_tracks:
        return RLTrialResult(
            split_index=split.index,
            trial=trial,
            score=-np.inf,
            # Trial 0 carries the warm-start state through splits without
            # training data; the reduce passes it on unchanged.
            state=previous_state if trial == 0 else None,
            train_seconds=0.0,
            trained=False,
        )
    if scoring_traces is None:
        scoring_traces = _rl_scoring_traces(prepared, split)
    dqn_config, env_seed = _rl_trial_settings(scenario, config, split.index)[trial]
    normalizer = StateNormalizer()

    started = time.perf_counter()
    agent = DDDQNAgent(normalizer.state_dim, dqn_config)
    if config.rl_warm_start and previous_state is not None and trial == 0:
        # The paper starts each split from a mix of previously trained
        # and untrained models; the first candidate continues training
        # the best agent of the previous split.
        agent.load_state_dict(previous_state)
    env = MitigationEnv(
        train_tracks,
        prepared.sampler,
        mitigation_cost=evaluation_cfg.mitigation_cost_node_hours,
        restartable=evaluation_cfg.restartable,
        t_start=split.train_range[0],
        t_end=split.train_range[1],
        normalizer=normalizer,
        seed=env_seed,
    )
    train_agent(env, agent, n_episodes=config.rl_episodes)
    score = _score_policy(
        RLPolicy(agent, normalizer),
        scoring_traces,
        evaluation_cfg.mitigation_cost_node_hours,
        evaluation_cfg.restartable,
        evaluation_cfg.prediction_window_seconds,
    )
    train_seconds = time.perf_counter() - started
    return RLTrialResult(
        split_index=split.index,
        trial=trial,
        score=score,
        state=agent.state_dict(),
        train_seconds=train_seconds,
        trained=True,
    )


def _select_best_rl_trial(
    config: ExperimentConfig, trial_results: Sequence[RLTrialResult]
) -> Tuple[Optional[DDDQNAgent], float, Optional[dict]]:
    """Fold a split's trial results into (best agent, cost node-hours, state).

    The selection rule matches the historical loop exactly: trials are
    considered in index order and a later trial must *strictly* beat the
    running best, so ties resolve to the lowest trial index whichever order
    the tasks finished in.  The charged training cost is the **sum of the
    per-trial spans** — schedule-independent accounting that neither counts
    executor queueing time (parallel trials) nor double-counts the agent's
    internal gradient-update clock (the reconstructed best agent starts
    with a zeroed counter).
    """
    ordered = sorted(trial_results, key=lambda result: result.trial)
    total_seconds = sum(result.train_seconds for result in ordered)
    best: Optional[RLTrialResult] = None
    best_score = -np.inf
    for result in ordered:
        if result.trained and result.score > best_score:
            best_score = result.score
            best = result
    if best is None:
        # No trial trained (no history in the train range): pass the
        # previous split's agent through, or nothing if there is none yet.
        carry = ordered[0].state if ordered else None
        if carry is None:
            return None, 0.0, None
        return _agent_from_state(config, carry), 0.0, carry
    return _agent_from_state(config, best.state), total_seconds / 3600.0, best.state


def _train_rl_for_split(
    prepared: PreparedData,
    split: TimeSeriesSplit,
    config: ExperimentConfig,
    previous_state: Optional[dict],
) -> Tuple[Optional[DDDQNAgent], float, Optional[dict]]:
    """Hyperparameter search + training of the RL agent for one split.

    The in-task serial schedule of the same per-trial computation the
    executor fans out when ``config.rl_trial_tasks`` is set — kept as the
    one-release fallback shape.  Returns (best agent, summed per-trial
    training+validation cost in node-hours, best state).
    """
    scoring_traces: Optional[List[EvaluationTrace]] = None
    if _rl_train_tracks(prepared.tracks, split):
        # Prefetch once for all trials (matters for hand-built PreparedData
        # without a content key, which opts out of the trace cache).
        scoring_traces = _rl_scoring_traces(prepared, split)
    results = [
        _train_one_rl_trial(
            prepared, split, trial, config, previous_state, scoring_traces
        )
        for trial in range(_rl_n_trials(config))
    ]
    return _select_best_rl_trial(config, results)


# --------------------------------------------------------------------- #
# Stages 3 and 4: per-split training and evaluation
# --------------------------------------------------------------------- #
def train_split(
    prepared: PreparedData,
    split: TimeSeriesSplit,
    config: ExperimentConfig,
    rl_state_in: Optional[dict] = None,
) -> TrainedSplit:
    """Build every enabled approach's policy for one split via the registry."""
    ensure_sc20_variants(config)
    ctx = SplitContext(prepared, split, config, rl_carry_in=rl_state_in)
    policies = {
        spec.name: spec.build(ctx, config, ctx.factory)
        for spec in enabled_specs(config)
    }
    return TrainedSplit(
        split_index=split.index, policies=policies, rl_state=ctx.rl_carry_out
    )


def evaluate_split(
    prepared: PreparedData,
    split: TimeSeriesSplit,
    trained: TrainedSplit,
    config: ExperimentConfig,
) -> SplitEvaluation:
    """Replay a split's trained policies over its test traces."""
    ctx = SplitContext(prepared, split, config)
    evaluations = {
        name: ctx.evaluate(policy) for name, policy in trained.policies.items()
    }
    return SplitEvaluation(
        split_index=split.index,
        evaluations=evaluations,
        n_test_events=sum(len(trace) for trace in ctx.test_traces()),
    )


def _evaluate_group(
    ctx: SplitContext, group: str, config: ExperimentConfig
) -> GroupOutcome:
    """Build and evaluate every enabled approach of ``group`` on ``ctx``.

    The shared tail of :func:`run_split_group` and :func:`run_rl_reduce`,
    so the single-task and per-trial task shapes cannot drift apart.
    """
    specs = [spec for spec in enabled_specs(config) if spec.group == group]
    evaluations = {
        spec.name: ctx.evaluate(spec.build(ctx, config, ctx.factory))
        for spec in specs
    }
    # Figure 6 artifacts are read from the context cache, never computed
    # here: a custom approach in the "rf" / "rl" group whose builder did not
    # ask for the shared model must not pay for training it.
    sc20_artifacts = ctx.sc20_if_trained()
    return GroupOutcome(
        split_index=ctx.split.index,
        group=group,
        evaluations=evaluations,
        n_test_events=sum(len(trace) for trace in ctx.test_traces()),
        rl_state=ctx.rl_carry_out if group == "rl" else None,
        sc20_policy=sc20_artifacts.optimal_policy if sc20_artifacts else None,
        rl_policy=ctx.rl_if_trained(),
    )


def run_split_group(
    deps: Dict[str, "GroupOutcome"],
    prepared: PreparedData,
    split: TimeSeriesSplit,
    group: str,
    config: ExperimentConfig,
) -> GroupOutcome:
    """Train and evaluate one approach group on one split (executor task).

    ``deps`` carries at most the previous split's "rl" outcome, whose
    ``rl_state`` seeds this split's warm start.  ``prepared`` arrives
    through the executor's ``shared`` channel (shipped once per worker,
    not once per task).
    """
    ensure_sc20_variants(config)
    kernels.apply_config(config.compiled)
    rl_state_in: Optional[dict] = None
    for outcome in deps.values():
        rl_state_in = outcome.rl_state
    ctx = SplitContext(prepared, split, config, rl_carry_in=rl_state_in)
    return _evaluate_group(ctx, group, config)


def run_rl_trial(
    deps: Dict[str, Any],
    prepared: PreparedData,
    split: TimeSeriesSplit,
    trial: int,
    config: ExperimentConfig,
) -> RLTrialResult:
    """Train one RL hyperparameter candidate (per-trial executor task).

    ``deps`` is empty for the independent search trials 1..N; trial 0 — the
    warm-started base candidate — receives the previous split's "rl" reduce
    outcome, whose ``rl_state`` seeds this split's warm start.  ``prepared``
    arrives through the executor's ``shared`` channel.
    """
    kernels.apply_config(config.compiled)
    previous_state: Optional[dict] = None
    for outcome in deps.values():
        previous_state = outcome.rl_state
    return _train_one_rl_trial(prepared, split, trial, config, previous_state)


def run_rl_reduce(
    deps: Dict[str, Any],
    prepared: PreparedData,
    split: TimeSeriesSplit,
    config: ExperimentConfig,
) -> GroupOutcome:
    """Select a split's best RL trial and evaluate the "rl" approach group.

    The reduce task of the per-trial fan-out: ``deps`` carries this split's
    :class:`RLTrialResult`\\ s, from which the best candidate is chosen by
    the same strictly-better-in-trial-order rule as the historical loop,
    reconstructed via :meth:`~repro.core.dqn.DDDQNAgent.from_state_dict`
    and handed to every builder of the group.  Keyed under
    ``rl-{split}``, so the warm-start chain (the next split's trial 0
    depends on this task) and :func:`aggregate` see exactly the shape the
    single-task graph produced.
    """
    ensure_sc20_variants(config)
    kernels.apply_config(config.compiled)
    trial_results = [
        value for value in deps.values() if isinstance(value, RLTrialResult)
    ]
    agent, training_cost, best_state = _select_best_rl_trial(config, trial_results)
    ctx = SplitContext(prepared, split, config)
    if agent is not None:
        ctx._inject_rl(
            RLPolicy(
                agent, StateNormalizer(), training_cost_node_hours=training_cost
            ),
            best_state,
        )
    else:
        ctx._inject_rl(None, None)
    return _evaluate_group(ctx, "rl", config)


# --------------------------------------------------------------------- #
# Task-graph construction
# --------------------------------------------------------------------- #
def _has_rl_train_data(prepared: PreparedData, split: TimeSeriesSplit) -> bool:
    """Whether any node has decision points inside the split's train range."""
    for track in prepared.tracks.values():
        sliced = track.slice_time(*split.train_range)
        if len(sliced) and sliced.n_decision_points > 0:
            return True
    return False


#: Priority of the tasks on the RL warm-start chain (trial-0, reduce, and
#: the chained single-task shape): the chain is the task graph's critical
#: path, so among simultaneously ready tasks it always gets a worker first.
_CHAIN_PRIORITY = 10


def build_split_tasks(
    prepared: PreparedData,
    splits: Sequence[TimeSeriesSplit],
    config: ExperimentConfig,
    key_prefix: str = "",
    task_fn: Optional[Callable[..., Any]] = None,
    task_args: Tuple = (),
    trial_task_fn: Optional[Callable[..., Any]] = None,
    reduce_task_fn: Optional[Callable[..., Any]] = None,
) -> List[Task]:
    """The executor task graph of one experiment's splits.

    One task per (split × enabled approach group) — except the "rl" group,
    which with ``config.rl_trial_tasks`` (the default, when the built-in RL
    approach is enabled) decomposes into one task per hyperparameter trial
    plus a select-best reduce task per split:

    * ``rl-trial{t}-{k}`` — trial ``t`` of split ``k``.  Trials 1..N are
      independent hyperparameter samples with **no** dependencies; they fan
      out across workers immediately.  Trial 0, the warm-started base
      candidate, depends on the previous split's reduce task — the only
      cross-split edge, so the serial critical path holds ``splits`` (not
      ``splits × trials``) training runs.
    * ``rl-{k}`` — the reduce: selects the split's best trial, evaluates the
      group, and carries the warm-start state.  It keeps the exact key of
      the old single "rl" task, so :func:`aggregate` and the chain edges
      are oblivious to the decomposition.

    Chain tasks get a high :attr:`~repro.evaluation.executor.Task.priority`
    (critical-path-first scheduling).  RL tasks of consecutive splits are
    chained when the warm start (or the pass-the-previous-agent-through
    fallback of splits without training data) makes split ``k`` depend on
    split ``k - 1``; every other task is independent.

    The returned tasks carry only (split[, trial][, group], config); the
    driver passes the heavyweight :class:`PreparedData` once through the
    executor's ``shared`` channel instead of once per task.

    ``key_prefix`` namespaces the task keys (and the RL chain's dependency
    edges) so several experiments can coexist in one task graph — the sweep
    engine prefixes each point's tasks with its label.  ``task_fn`` /
    ``trial_task_fn`` / ``reduce_task_fn`` (+ ``task_args``) substitute
    custom module-level task callables invoked as
    ``task_fn(deps, shared, *task_args, split, group, config)``,
    ``trial_task_fn(deps, shared, *task_args, split, trial, config)`` and
    ``reduce_task_fn(deps, shared, *task_args, split, config)`` in place of
    :func:`run_split_group` / :func:`run_rl_trial` / :func:`run_rl_reduce`.
    """
    ensure_sc20_variants(config)
    fn = run_split_group if task_fn is None else task_fn
    trial_fn = run_rl_trial if trial_task_fn is None else trial_task_fn
    reduce_fn = run_rl_reduce if reduce_task_fn is None else reduce_task_fn
    groups = approach_groups(config)
    chain_rl = "rl" in groups and (
        config.rl_warm_start
        or any(not _has_rl_train_data(prepared, split) for split in splits)
    )
    # Fan out per-trial tasks only when the built-in RL approach runs: a
    # custom approach in the "rl" group may never ask for the shared agent,
    # and the lazy single-task shape must not pay for training it.
    rl_runs = any(spec.name == "RL" for spec in groups.get("rl", []))
    if not config.rl_trial_tasks and rl_runs:
        warnings.warn(
            "rl_trial_tasks=False (the in-task RL trial loop) is deprecated "
            "and will be removed: the per-trial task fan-out is bit-identical "
            "and strictly faster under parallel executors. Drop the override "
            "(or the --no-rl-trial-tasks flag) to silence this warning.",
            DeprecationWarning,
            stacklevel=2,
        )
    rl_fan_out = config.rl_trial_tasks and rl_runs
    tasks: List[Task] = []
    for split in splits:
        for group in groups:
            chain_dep: Tuple[str, ...] = ()
            if group == "rl" and chain_rl and split.index > 0:
                chain_dep = (f"{key_prefix}rl-{split.index - 1}",)
            if group == "rl" and rl_fan_out:
                trial_keys: List[str] = []
                for trial in range(_rl_n_trials(config)):
                    key = f"{key_prefix}rl-trial{trial}-{split.index}"
                    trial_keys.append(key)
                    tasks.append(
                        Task(
                            key=key,
                            fn=trial_fn,
                            args=tuple(task_args) + (split, trial, config),
                            deps=chain_dep if trial == 0 else (),
                            priority=_CHAIN_PRIORITY if trial == 0 else 0,
                        )
                    )
                tasks.append(
                    Task(
                        key=f"{key_prefix}rl-{split.index}",
                        fn=reduce_fn,
                        args=tuple(task_args) + (split, config),
                        deps=tuple(trial_keys),
                        priority=_CHAIN_PRIORITY,
                    )
                )
                continue
            tasks.append(
                Task(
                    key=f"{key_prefix}{group}-{split.index}",
                    fn=fn,
                    args=tuple(task_args) + (split, group, config),
                    deps=chain_dep,
                    priority=_CHAIN_PRIORITY if group == "rl" and chain_rl else 0,
                )
            )
    return tasks


# --------------------------------------------------------------------- #
# Stage 5: aggregation
# --------------------------------------------------------------------- #
def _final_test_features(
    prepared: PreparedData, splits: Sequence[TimeSeriesSplit], config: ExperimentConfig
) -> Optional[np.ndarray]:
    """Non-UE feature matrix of the last split with test events (Figure 6)."""
    for split in reversed(list(splits)):
        ctx = SplitContext(prepared, split, config)
        traces = ctx.test_traces()
        if traces:
            return np.concatenate([trace.features[~trace.is_ue] for trace in traces])
    return None


def aggregate(
    prepared: PreparedData,
    splits: Sequence[TimeSeriesSplit],
    outcomes: Dict[str, GroupOutcome],
    config: ExperimentConfig,
    wallclock_seconds: float,
) -> ExperimentResult:
    """Fold per-(split × group) outcomes into the final result."""
    groups = approach_groups(config)
    approaches: Dict[str, ApproachResult] = {}
    n_test_events = 0
    final_sc20_policy: Optional[SC20RandomForestPolicy] = None
    final_rl_policy: Optional[RLPolicy] = None

    for split in splits:
        split_outcomes = [
            outcomes[f"{group}-{split.index}"]
            for group in groups
            if f"{group}-{split.index}" in outcomes
        ]
        if split_outcomes:
            n_test_events += split_outcomes[0].n_test_events
        for outcome in split_outcomes:
            for name, evaluation in outcome.evaluations.items():
                approaches.setdefault(name, ApproachResult(name=name)).per_split.append(
                    evaluation
                )
            if outcome.sc20_policy is not None:
                final_sc20_policy = outcome.sc20_policy
            if outcome.rl_policy is not None:
                final_rl_policy = outcome.rl_policy

    return ExperimentResult(
        scenario_name=prepared.scenario.name,
        mitigation_cost_node_hours=prepared.scenario.evaluation.mitigation_cost_node_hours,
        approaches=approaches,
        splits=list(splits),
        reduction_report=prepared.reduction_report,
        n_test_events=n_test_events,
        wallclock_seconds=wallclock_seconds,
        final_rl_policy=final_rl_policy,
        final_sc20_policy=final_sc20_policy,
        final_test_features=_final_test_features(prepared, splits, config),
    )
