"""Plain-text report formatting for the regenerated figures and tables.

The benchmark harness prints the same rows/series the paper reports; these
helpers render cost breakdowns (Figures 3, 4, 5, 7) and the classical ML
metrics table (Table 2) as aligned text so that the benchmark output can be
compared side by side with the paper.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.evaluation.costs import CostBreakdown
from repro.evaluation.metrics import ConfusionCounts


def _format_number(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def format_cost_table(
    costs: Mapping[str, CostBreakdown],
    title: str = "Total cost (node-hours)",
    reference: Optional[str] = "Never-mitigate",
) -> str:
    """Render one group of per-approach cost breakdowns (a Figure 3/5 bar group)."""
    lines = [title]
    header = f"{'approach':<18} {'UE cost':>12} {'mitigation':>12} {'training':>10} {'total':>12} {'saving':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    ref = costs.get(reference) if reference else None
    for name, breakdown in costs.items():
        saving = ""
        if ref is not None and ref.total > 0:
            saving = f"{100 * breakdown.saving_vs(ref):+.0f}%"
        lines.append(
            f"{name:<18} {_format_number(breakdown.ue_cost):>12} "
            f"{_format_number(breakdown.mitigation_cost):>12} "
            f"{_format_number(breakdown.training_cost):>10} "
            f"{_format_number(breakdown.total):>12} {saving:>8}"
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    labels: Sequence[str],
    title: str = "",
    value_format: str = "{:>12,.0f}",
) -> str:
    """Render named series over common labels (Figure 4 / Figure 7 style)."""
    lines = []
    if title:
        lines.append(title)
    label_width = max(18, max((len(str(l)) for l in labels), default=18))
    header = f"{'approach':<18} " + " ".join(f"{str(l):>12}" for l in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(labels)} labels"
            )
        row = f"{name:<18} " + " ".join(value_format.format(v) for v in values)
        lines.append(row)
    return "\n".join(lines)


def format_sweep_table(
    totals: Mapping[str, Mapping[str, CostBreakdown]],
    which: str = "total",
    title: str = "Sweep — total cost (node-hours)",
) -> str:
    """Render a sweep's points × approaches cost matrix.

    ``totals`` maps point label -> approach -> cost breakdown (the shape of
    :meth:`repro.evaluation.sweep.SweepResult.totals`); ``which`` selects the
    :class:`CostBreakdown` attribute shown (``total``, ``ue_cost``,
    ``mitigation_cost``, ``training_cost``, ...).  Approaches are rows and
    sweep points are columns, matching the grouped bars of Figures 3/5/7.
    """
    labels = list(totals)
    approaches: list = []
    for label in labels:
        for name in totals[label]:
            if name not in approaches:
                approaches.append(name)
    lines = []
    if title:
        lines.append(title)
    column_width = max(12, max((len(label) for label in labels), default=12))
    header = f"{'approach':<18} " + " ".join(
        f"{label:>{column_width}}" for label in labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in approaches:
        cells = []
        for label in labels:
            breakdown = totals[label].get(name)
            if breakdown is None:
                cells.append(f"{'—':>{column_width}}")
            else:
                value = getattr(breakdown, which)
                cells.append(f"{_format_number(value):>{column_width}}")
        lines.append(f"{name:<18} " + " ".join(cells))
    return "\n".join(lines)


def format_metrics_table(
    metrics: Mapping[str, ConfusionCounts],
    title: str = "Classical machine learning metrics (Table 2)",
) -> str:
    """Render the Table 2 columns: TP / FN / FP / TN, mitigations, recall, precision."""
    lines = [title]
    header = (
        f"{'approach':<28} {'TPs':>6} {'FNs':>6} {'FPs':>10} {'TNs':>10} "
        f"{'mitigations':>12} {'recall':>8} {'precision':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, counts in metrics.items():
        precision = counts.precision
        precision_text = "n/a" if precision is None else f"{100 * precision:.2f}%"
        lines.append(
            f"{name:<28} {counts.true_positives:>6} {counts.false_negatives:>6} "
            f"{counts.false_positives:>10} {counts.true_negatives:>10} "
            f"{counts.n_mitigations:>12} {100 * counts.recall:>7.0f}% {precision_text:>10}"
        )
    return "\n".join(lines)


def format_behavior_grid(grid, title: str = "RL mitigation fraction (Figure 6)") -> str:
    """Render a :class:`~repro.evaluation.behavior.BehaviorGrid` as text."""
    lines = [title]
    cost_edges = grid.ue_cost_edges
    header = "P(UE) \\ cost " + " ".join(
        f"{edge:>8.0f}" for edge in cost_edges[:-1]
    )
    lines.append(header)
    for y in range(grid.mitigation_fraction.shape[0] - 1, -1, -1):
        lo = grid.probability_edges[y]
        hi = grid.probability_edges[y + 1]
        cells = []
        for x in range(grid.mitigation_fraction.shape[1]):
            value = grid.mitigation_fraction[y, x]
            cells.append("     ..." if value != value else f"{value:>8.2f}")
        lines.append(f"{lo:.1f}-{hi:.1f}      " + " ".join(cells))
    return "\n".join(lines)
