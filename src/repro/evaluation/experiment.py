"""End-to-end experiment driver reproducing the paper's evaluation.

The driver is a thin orchestrator over three explicit layers:

:mod:`repro.evaluation.registry`
    A pluggable registry of the approaches under evaluation (Section 4.2).
    Each approach — Never/Always-mitigate, the SC20-RF family, Myopic-RF,
    the RL agent, the Oracle — is an ``ApproachSpec`` with a
    ``build(ctx, config, rng) -> MitigationPolicy`` factory.  New approaches
    register themselves; this module never has to change.
:mod:`repro.evaluation.pipeline`
    Pure stages, each returning a serializable dataclass:
    ``prepare_data`` (telemetry + workload generation, reduction, Table 1
    feature tracks), ``make_splits`` (the Figure 2 nested cross-validation
    layout), ``train_split`` / ``evaluate_split`` (per-split model training
    and test-range replay), and ``aggregate`` (the
    :class:`ExperimentResult` behind Figures 3, 4, 5, 7 and Table 2).
:mod:`repro.evaluation.executor`
    A dependency-aware task runner.  :func:`run_experiment` schedules one
    task per (split × approach group) and runs them on a process pool when
    ``ExperimentConfig.n_workers > 1``.  Every task seeds its own random
    streams from keyed :class:`~repro.utils.rng.RngFactory` streams, so
    parallel and serial schedules produce identical results (set
    ``charge_training_time=False`` to also zero out the wall-clock
    training-cost accounting, the only non-deterministic quantity).

:func:`run_experiment` keeps the historical public signature; the
re-exported :class:`ExperimentConfig`, :class:`ExperimentResult` and
:class:`ApproachResult` live in :mod:`repro.evaluation.pipeline`.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.config import ScenarioConfig
from repro.core import kernels
from repro.evaluation.executor import ExecutorStats, execute_tasks
from repro.evaluation.pipeline import (
    ApproachResult,
    ExperimentConfig,
    ExperimentResult,
    PreparedDataCache,
    aggregate,
    build_split_tasks,
    make_splits,
    prepare_data,
)
from repro.evaluation.registry import approach_order
from repro.telemetry.error_log import ErrorLog
from repro.utils.profiling import StageProfiler
from repro.workload.job import JobLog

__all__ = [
    "APPROACH_ORDER",
    "ApproachResult",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
]

#: Canonical ordering of the approaches (the bars of Figure 3), derived from
#: the registry at import time.  Code that must see approaches registered
#: later should call :func:`repro.evaluation.registry.approach_order`.
APPROACH_ORDER: Tuple[str, ...] = approach_order()


def run_experiment(
    scenario: ScenarioConfig,
    config: Optional[ExperimentConfig] = None,
    error_log: Optional[ErrorLog] = None,
    job_log: Optional[JobLog] = None,
    cache: Optional[PreparedDataCache] = None,
) -> ExperimentResult:
    """Run the full nested-cross-validation evaluation for one scenario.

    Set ``config.n_workers > 1`` to train and evaluate independent
    (split × approach group) tasks concurrently; with
    ``config.charge_training_time=False`` results are bitwise-identical to
    a serial run (the default charges measured wall-clock training time to
    the mitigation costs, which varies run to run).

    ``cache`` optionally serves the prepared data from a
    :class:`~repro.evaluation.pipeline.PreparedDataCache` (with whatever
    sharing and disk-spill behaviour that cache is configured for) instead
    of always rebuilding it; results are identical either way.
    """
    config = config or ExperimentConfig()
    kernels.apply_config(config.compiled)
    started = time.perf_counter()
    profiler = StageProfiler(enabled=config.profile)

    with profiler.stage("prepare_data"):
        if cache is not None:
            prepared = cache.get(
                scenario, config, error_log=error_log, job_log=job_log
            )
        else:
            prepared = prepare_data(
                scenario, config, error_log=error_log, job_log=job_log
            )
        splits = make_splits(scenario)
    with profiler.stage("execute_tasks"):
        tasks = build_split_tasks(prepared, splits, config)
        stats = ExecutorStats()
        outcomes = execute_tasks(
            tasks,
            n_workers=config.n_workers,
            kind=config.executor_kind,
            shared=prepared,
            stats=stats,
        )
    with profiler.stage("aggregate"):
        result = aggregate(
            prepared,
            splits,
            outcomes,
            config,
            wallclock_seconds=time.perf_counter() - started,
        )
    result.executor_stats = stats
    if config.profile:
        result.extras["profile"] = profiler.report()
    return result
