"""End-to-end experiment driver reproducing the paper's evaluation.

:func:`run_experiment` wires the whole pipeline together for one scenario:

1. generate (or accept) the error log and job log;
2. preprocess the error log (retirement-bias removal, UE burst reduction);
3. extract per-node Table 1 feature tracks;
4. build the time-series nested cross-validation splits (Figure 2);
5. for every split, train the learned policies on the data preceding the
   test range (random forest for SC20-RF / Myopic-RF, DDDQN for RL, with a
   random hyperparameter search scored on the validation range) and evaluate
   every approach of Section 4.2 on the test range;
6. accumulate cost–benefit breakdowns and classical ML metrics per approach.

The returned :class:`ExperimentResult` is the data behind Figures 3, 4, 5
and 7 and Table 2; the benchmark harness formats it with
:mod:`repro.evaluation.report`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dataset import build_prediction_dataset
from repro.baselines.myopic import MyopicRFPolicy
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.baselines.static import (
    AlwaysMitigatePolicy,
    NeverMitigatePolicy,
    OraclePolicy,
)
from repro.config import ScenarioConfig
from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.environment import MitigationEnv
from repro.core.features import StateNormalizer, build_feature_tracks
from repro.core.hyperparams import HyperparameterSpace
from repro.core.policies import MitigationPolicy, RLPolicy
from repro.core.trainer import train_agent
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.cross_validation import TimeSeriesNestedCV, TimeSeriesSplit
from repro.evaluation.metrics import ConfusionCounts
from repro.evaluation.runner import (
    EvaluationTrace,
    PolicyEvaluation,
    build_traces,
    evaluate_policy,
)
from repro.telemetry.error_log import ErrorLog
from repro.telemetry.generator import TelemetryGenerator
from repro.telemetry.reduction import ReductionReport, prepare_log
from repro.utils.rng import RngFactory
from repro.workload.generator import WorkloadGenerator
from repro.workload.job import JobLog
from repro.workload.sampling import JobSequenceSampler
from repro.workload.scaling import scale_job_log

#: Canonical ordering of the approaches (the bars of Figure 3).
APPROACH_ORDER: Tuple[str, ...] = (
    "Never-mitigate",
    "Always-mitigate",
    "SC20-RF",
    "SC20-RF-2%",
    "SC20-RF-5%",
    "Myopic-RF",
    "RL",
    "Oracle",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling how heavy the experiment is to run.

    The defaults are a scaled-down schedule suitable for the benchmark
    harness; :meth:`paper` returns the full schedule described in
    Sections 3.3 and 4.1 (20,000 episodes per agent, 60 + narrowed random
    search), which takes hours.
    """

    #: Episodes per hyperparameter trial of the RL agent.
    rl_episodes: int = 400
    #: Number of random-search trials in the first round (the first trial
    #: always uses the base configuration unchanged).
    rl_hyperparam_trials: int = 2
    #: Number of trials in the narrowed second round.
    rl_hyperparam_refine: int = 0
    #: Hidden layout of the Q-network (paper: 256, 256, 128, 64).
    rl_hidden_sizes: Sequence[int] = (64, 48)
    #: Base DQN configuration; hyperparameter search overrides some fields.
    rl_base_config: DQNConfig = field(
        default_factory=lambda: DQNConfig(
            epsilon_decay_steps=4000, warmup_transitions=128, buffer_capacity=20000
        )
    )
    #: Reuse the best agent of the previous split as a warm-started candidate.
    rl_warm_start: bool = True
    #: Random forest size of the SC20 baseline.
    rf_n_estimators: int = 25
    rf_max_depth: int = 10
    #: Number of candidate thresholds evaluated to find the optimal one.
    threshold_grid_size: int = 21
    #: Threshold perturbations of the realistic SC20 variants.
    sc20_threshold_offsets: Tuple[float, ...] = (0.02, 0.05)
    #: Approach toggles.
    include_static: bool = True
    include_oracle: bool = True
    include_rf: bool = True
    include_myopic: bool = True
    include_rl: bool = True
    #: Job-size scaling factor (Section 5.6); 1.0 reproduces the base system.
    job_scaling_factor: float = 1.0
    #: Restrict the error log to one DRAM manufacturer (Section 5.3).
    manufacturer: Optional[int] = None

    @staticmethod
    def fast() -> "ExperimentConfig":
        """Cheapest configuration that still trains every approach."""
        return ExperimentConfig(
            rl_episodes=120,
            rl_hyperparam_trials=1,
            rl_hidden_sizes=(48, 32),
            rf_n_estimators=15,
            threshold_grid_size=11,
        )

    @staticmethod
    def paper() -> "ExperimentConfig":
        """The full schedule of the paper (hours of compute)."""
        return ExperimentConfig(
            rl_episodes=20_000,
            rl_hyperparam_trials=60,
            rl_hyperparam_refine=20,
            rl_hidden_sizes=(256, 256, 128, 64),
            rf_n_estimators=100,
            threshold_grid_size=101,
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy of the config with some fields replaced."""
        return replace(self, **kwargs)


@dataclass
class ApproachResult:
    """Accumulated results of one approach across all splits."""

    name: str
    per_split: List[PolicyEvaluation] = field(default_factory=list)

    @property
    def total_costs(self) -> CostBreakdown:
        if not self.per_split:
            return CostBreakdown()
        return sum(evaluation.costs for evaluation in self.per_split)

    @property
    def total_confusion(self) -> ConfusionCounts:
        if not self.per_split:
            return ConfusionCounts()
        return sum(evaluation.confusion for evaluation in self.per_split)

    @property
    def per_split_total_cost(self) -> List[float]:
        return [evaluation.costs.total for evaluation in self.per_split]

    @property
    def per_split_ue_cost(self) -> List[float]:
        return [evaluation.costs.ue_cost for evaluation in self.per_split]

    @property
    def per_split_mitigation_cost(self) -> List[float]:
        return [evaluation.costs.overhead_cost for evaluation in self.per_split]


@dataclass
class ExperimentResult:
    """Everything produced by :func:`run_experiment`."""

    scenario_name: str
    mitigation_cost_node_hours: float
    approaches: Dict[str, ApproachResult]
    splits: List[TimeSeriesSplit]
    reduction_report: ReductionReport
    n_test_events: int
    wallclock_seconds: float
    #: Trained artifacts of the final split (inputs to Figure 6).
    final_rl_policy: Optional[RLPolicy] = None
    final_sc20_policy: Optional[SC20RandomForestPolicy] = None
    final_test_features: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def approach_names(self) -> List[str]:
        ordered = [name for name in APPROACH_ORDER if name in self.approaches]
        extras = [name for name in self.approaches if name not in ordered]
        return ordered + extras

    def total_costs(self) -> Dict[str, CostBreakdown]:
        """Total cost breakdown per approach (Figure 3 bar group)."""
        return {name: self.approaches[name].total_costs for name in self.approach_names}

    def confusions(self) -> Dict[str, ConfusionCounts]:
        """Accumulated confusion counts per approach (Table 2)."""
        return {
            name: self.approaches[name].total_confusion for name in self.approach_names
        }

    def per_split_series(self, which: str = "total") -> Dict[str, List[float]]:
        """Per-split cost series per approach (Figure 4)."""
        series = {}
        for name in self.approach_names:
            approach = self.approaches[name]
            if which == "total":
                series[name] = approach.per_split_total_cost
            elif which == "ue":
                series[name] = approach.per_split_ue_cost
            elif which == "mitigation":
                series[name] = approach.per_split_mitigation_cost
            else:
                raise ValueError(f"unknown series {which!r}")
        return series

    def split_labels(self) -> List[str]:
        return [
            f"split-{split.index + 1}"
            for split in self.splits
        ]

    def saving_vs_never(self, name: str) -> float:
        """Fractional total-cost saving of ``name`` relative to Never-mitigate."""
        never = self.approaches.get("Never-mitigate")
        target = self.approaches.get(name)
        if never is None or target is None:
            raise KeyError("both the approach and Never-mitigate must be present")
        return target.total_costs.saving_vs(never.total_costs)


# --------------------------------------------------------------------- #
# Internal helpers
# --------------------------------------------------------------------- #
def _select_optimal_threshold(
    base_policy: SC20RandomForestPolicy,
    traces: Sequence[EvaluationTrace],
    mitigation_cost: float,
    restartable: bool,
    prediction_window: float,
    grid_size: int,
) -> float:
    """Threshold minimising the total cost on ``traces`` (maximum advantage)."""
    best_threshold = 0.5
    best_cost = np.inf
    for threshold in SC20RandomForestPolicy.threshold_grid(grid_size):
        candidate = base_policy.with_threshold(float(threshold))
        evaluation = evaluate_policy(
            traces,
            candidate,
            mitigation_cost,
            restartable=restartable,
            prediction_window_seconds=prediction_window,
            include_training_cost=False,
        )
        if evaluation.costs.total < best_cost:
            best_cost = evaluation.costs.total
            best_threshold = float(threshold)
    return best_threshold


def _score_policy(
    policy: MitigationPolicy,
    traces: Sequence[EvaluationTrace],
    mitigation_cost: float,
    restartable: bool,
    prediction_window: float,
) -> float:
    """Negative total cost of a policy over traces (higher is better)."""
    if not traces:
        return 0.0
    evaluation = evaluate_policy(
        traces,
        policy,
        mitigation_cost,
        restartable=restartable,
        prediction_window_seconds=prediction_window,
        include_training_cost=False,
    )
    return -evaluation.costs.total


def _train_rl_for_split(
    split: TimeSeriesSplit,
    tracks,
    sampler: JobSequenceSampler,
    scenario: ScenarioConfig,
    config: ExperimentConfig,
    factory: RngFactory,
    previous_state: Optional[dict],
) -> Tuple[Optional[DDDQNAgent], float, Optional[dict]]:
    """Hyperparameter search + training of the RL agent for one split.

    Returns (best agent, training+validation cost in node-hours, best state).
    """
    evaluation_cfg = scenario.evaluation
    mitigation_cost = evaluation_cfg.mitigation_cost_node_hours
    normalizer = StateNormalizer()

    train_tracks = {
        node: track.slice_time(*split.train_range) for node, track in tracks.items()
    }
    train_tracks = {
        node: track
        for node, track in train_tracks.items()
        if len(track) and track.n_decision_points > 0
    }
    if not train_tracks:
        if previous_state is None:
            return None, 0.0, None
        agent = DDDQNAgent(
            normalizer.state_dim,
            config.rl_base_config.with_overrides(
                hidden_sizes=tuple(config.rl_hidden_sizes)
            ),
        )
        agent.load_state_dict(previous_state)
        return agent, 0.0, previous_state

    validation_traces = build_traces(
        tracks,
        sampler,
        *split.validation_range,
        seed=int(factory.stream(f"val-{split.index}").integers(1 << 30)),
    ) if split.validation_range[1] > split.validation_range[0] else []
    validation_has_ues = any(trace.n_ues for trace in validation_traces)
    training_traces_for_scoring: List[EvaluationTrace] = []
    if not validation_has_ues:
        # Fall back to scoring on the training range (Section 4.1) when the
        # validation range contains no UEs.
        training_traces_for_scoring = build_traces(
            tracks,
            sampler,
            *split.train_range,
            seed=int(factory.stream(f"trainscore-{split.index}").integers(1 << 30)),
        )
    scoring_traces = validation_traces if validation_has_ues else training_traces_for_scoring

    space = HyperparameterSpace()
    search_rng = factory.stream(f"search-{split.index}")
    started = time.perf_counter()

    best_agent: Optional[DDDQNAgent] = None
    best_score = -np.inf
    n_trials = max(1, config.rl_hyperparam_trials) + max(0, config.rl_hyperparam_refine)

    for trial in range(n_trials):
        if trial == 0:
            # The base configuration is always one of the candidates, so a
            # tiny search budget still contains a known-reasonable setting.
            params = {}
        else:
            params = space.sample(search_rng)
        dqn_config = config.rl_base_config.with_overrides(
            hidden_sizes=tuple(config.rl_hidden_sizes),
            seed=int(search_rng.integers(1 << 30)),
            **params,
        )
        agent = DDDQNAgent(normalizer.state_dim, dqn_config)
        if config.rl_warm_start and previous_state is not None and trial == 0:
            # The paper starts each split from a mix of previously trained
            # and untrained models; the first candidate continues training
            # the best agent of the previous split.
            agent.load_state_dict(previous_state)
        env = MitigationEnv(
            train_tracks,
            sampler,
            mitigation_cost=mitigation_cost,
            restartable=evaluation_cfg.restartable,
            t_start=split.train_range[0],
            t_end=split.train_range[1],
            normalizer=normalizer,
            seed=int(search_rng.integers(1 << 30)),
        )
        train_agent(env, agent, n_episodes=config.rl_episodes)
        policy = RLPolicy(agent, normalizer)
        score = _score_policy(
            policy,
            scoring_traces,
            mitigation_cost,
            evaluation_cfg.restartable,
            evaluation_cfg.prediction_window_seconds,
        )
        if score > best_score:
            best_score = score
            best_agent = agent

    training_cost_node_hours = (time.perf_counter() - started) / 3600.0
    best_state = best_agent.state_dict() if best_agent is not None else None
    return best_agent, training_cost_node_hours, best_state


# --------------------------------------------------------------------- #
# Public driver
# --------------------------------------------------------------------- #
def run_experiment(
    scenario: ScenarioConfig,
    config: Optional[ExperimentConfig] = None,
    error_log: Optional[ErrorLog] = None,
    job_log: Optional[JobLog] = None,
) -> ExperimentResult:
    """Run the full nested-cross-validation evaluation for one scenario."""
    config = config or ExperimentConfig()
    evaluation_cfg = scenario.evaluation
    mitigation_cost = evaluation_cfg.mitigation_cost_node_hours
    restartable = evaluation_cfg.restartable
    prediction_window = evaluation_cfg.prediction_window_seconds
    factory = RngFactory(scenario.seed)
    started = time.perf_counter()

    # 1. Telemetry.
    if error_log is None:
        error_log = TelemetryGenerator(
            scenario.topology,
            scenario.fault_model,
            scenario.duration_seconds,
            seed=factory.child("telemetry"),
        ).generate()
    if config.manufacturer is not None:
        error_log = error_log.filter_manufacturer(config.manufacturer)
    reduced_log, reduction_report = prepare_log(
        error_log, evaluation_cfg.ue_burst_window_seconds
    )

    # 2. Workload.
    if job_log is None:
        job_log = WorkloadGenerator(
            scenario.workload,
            n_cluster_nodes=scenario.topology.n_nodes,
            duration_seconds=scenario.duration_seconds,
            seed=factory.stream("workload"),
        ).generate()
    if config.job_scaling_factor != 1.0:
        job_log = scale_job_log(job_log, config.job_scaling_factor)
    sampler = JobSequenceSampler(job_log, seed=factory.stream("sampler"))

    # 3. Features and CV splits.
    tracks = build_feature_tracks(
        reduced_log, evaluation_cfg.merge_window_seconds
    )
    cv = TimeSeriesNestedCV(
        n_parts=evaluation_cfg.cv_parts,
        train_fraction=evaluation_cfg.cv_train_fraction,
        bootstrap_seconds=evaluation_cfg.cv_bootstrap_seconds,
    )
    splits = cv.splits(0.0, scenario.duration_seconds)

    approaches: Dict[str, ApproachResult] = {}

    def _record(name: str, evaluation: PolicyEvaluation) -> None:
        approaches.setdefault(name, ApproachResult(name=name)).per_split.append(
            evaluation
        )

    previous_rl_state: Optional[dict] = None
    final_rl_policy: Optional[RLPolicy] = None
    final_sc20_policy: Optional[SC20RandomForestPolicy] = None
    final_test_features: Optional[np.ndarray] = None
    n_test_events = 0

    for split in splits:
        test_traces = build_traces(
            tracks,
            sampler,
            *split.test_range,
            seed=int(factory.stream(f"test-{split.index}").integers(1 << 30)),
        )
        n_test_events += sum(len(trace) for trace in test_traces)

        def _evaluate(policy: MitigationPolicy, **kwargs) -> PolicyEvaluation:
            return evaluate_policy(
                test_traces,
                policy,
                mitigation_cost,
                restartable=restartable,
                prediction_window_seconds=prediction_window,
                **kwargs,
            )

        # Static baselines and Oracle.
        if config.include_static:
            _record("Never-mitigate", _evaluate(NeverMitigatePolicy()))
            _record("Always-mitigate", _evaluate(AlwaysMitigatePolicy()))
        if config.include_oracle:
            _record("Oracle", _evaluate(OraclePolicy()))

        # Random-forest baselines (SC20-RF family and Myopic-RF).
        if config.include_rf:
            dataset = build_prediction_dataset(
                tracks,
                prediction_window_seconds=prediction_window,
                t_start=split.train_range[0],
                t_end=split.history_range[1],
            )
            if len(dataset) > 0:
                forest, rf_seconds = train_sc20_forest(
                    dataset,
                    n_estimators=config.rf_n_estimators,
                    max_depth=config.rf_max_depth,
                    seed=int(factory.stream(f"rf-{split.index}").integers(1 << 30)),
                )
                base_policy = SC20RandomForestPolicy(
                    forest, training_cost_node_hours=rf_seconds / 3600.0
                )
                optimal = _select_optimal_threshold(
                    base_policy,
                    test_traces,
                    mitigation_cost,
                    restartable,
                    prediction_window,
                    config.threshold_grid_size,
                )
                sc20_optimal = base_policy.with_threshold(optimal, name="SC20-RF")
                _record("SC20-RF", _evaluate(sc20_optimal))
                for offset in config.sc20_threshold_offsets:
                    name = f"SC20-RF-{int(round(offset * 100))}%"
                    _record(
                        name,
                        _evaluate(
                            base_policy.with_threshold(optimal, offset=offset, name=name)
                        ),
                    )
                if config.include_myopic:
                    myopic = MyopicRFPolicy(sc20_optimal, mitigation_cost)
                    _record("Myopic-RF", _evaluate(myopic))
                final_sc20_policy = sc20_optimal
            else:
                # No history at all: the forest cannot be trained, so the
                # prediction-based baselines degenerate to Never-mitigate.
                fallback = NeverMitigatePolicy()
                for name in ("SC20-RF", "SC20-RF-2%", "SC20-RF-5%"):
                    evaluation = _evaluate(fallback)
                    _record(
                        name,
                        PolicyEvaluation(
                            policy_name=name,
                            costs=evaluation.costs,
                            confusion=evaluation.confusion,
                            n_traces=evaluation.n_traces,
                            n_decision_points=evaluation.n_decision_points,
                        ),
                    )
                if config.include_myopic:
                    evaluation = _evaluate(fallback)
                    _record(
                        "Myopic-RF",
                        PolicyEvaluation(
                            policy_name="Myopic-RF",
                            costs=evaluation.costs,
                            confusion=evaluation.confusion,
                            n_traces=evaluation.n_traces,
                            n_decision_points=evaluation.n_decision_points,
                        ),
                    )

        # The RL agent.
        if config.include_rl:
            agent, rl_training_cost, best_state = _train_rl_for_split(
                split,
                tracks,
                sampler,
                scenario,
                config,
                factory,
                previous_rl_state,
            )
            if agent is not None:
                previous_rl_state = best_state
                rl_policy = RLPolicy(
                    agent,
                    StateNormalizer(),
                    training_cost_node_hours=rl_training_cost,
                )
                _record("RL", _evaluate(rl_policy))
                final_rl_policy = rl_policy
            else:
                # Nothing to train on yet: the agent cannot act better than
                # doing nothing, which is also what an untrained policy
                # should converge to without data.
                evaluation = _evaluate(NeverMitigatePolicy())
                _record(
                    "RL",
                    PolicyEvaluation(
                        policy_name="RL",
                        costs=evaluation.costs,
                        confusion=evaluation.confusion,
                        n_traces=evaluation.n_traces,
                        n_decision_points=evaluation.n_decision_points,
                    ),
                )

        if test_traces:
            final_test_features = np.concatenate(
                [trace.features[~trace.is_ue] for trace in test_traces]
            )

    return ExperimentResult(
        scenario_name=scenario.name,
        mitigation_cost_node_hours=mitigation_cost,
        approaches=approaches,
        splits=splits,
        reduction_report=reduction_report,
        n_test_events=n_test_events,
        wallclock_seconds=time.perf_counter() - started,
        final_rl_policy=final_rl_policy,
        final_sc20_policy=final_sc20_policy,
        final_test_features=final_test_features,
    )
