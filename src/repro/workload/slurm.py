"""Slurm ``sacct``-style text serialisation of job logs.

The paper extracts the MareNostrum 4 job log with ``sacct``, which reports
pipe-separated fields.  This module writes and parses a compatible subset::

    JobID|Submit|Start|End|NNodes
    1001|0.000|120.000|7320.000|64

Times are seconds since the start of the observed period (real sacct output
uses ISO timestamps; keeping relative seconds makes the files self-contained
and avoids timezone handling).
"""

from __future__ import annotations

from typing import Iterable, List, TextIO, Union

from repro.workload.job import JobLog, JobRecord

_HEADER = "JobID|Submit|Start|End|NNodes"


def format_sacct(job_log: JobLog, include_header: bool = True) -> str:
    """Serialise a job log in sacct-like pipe-separated format."""
    lines: List[str] = [_HEADER] if include_header else []
    for record in job_log:
        # repr() keeps full float precision so a formatted log parses back to
        # exactly the same JobLog (real sacct output is second-granular, but
        # lossless round-tripping makes the format usable as a storage layer).
        lines.append(
            f"{record.job_id}|{record.submit!r}|{record.start!r}|"
            f"{record.end!r}|{record.n_nodes!r}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def _iter_lines(source: Union[str, TextIO, Iterable[str]]) -> Iterable[str]:
    if isinstance(source, str):
        return source.splitlines()
    return source


def parse_sacct(source: Union[str, TextIO, Iterable[str]]) -> JobLog:
    """Parse sacct-like output produced by :func:`format_sacct`."""
    records: List[JobRecord] = []
    for raw in _iter_lines(source):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.replace(" ", "") == _HEADER:
            continue
        fields = line.split("|")
        if len(fields) != 5:
            raise ValueError(f"malformed sacct line: {line!r}")
        job_id, submit, start, end, n_nodes = fields
        records.append(
            JobRecord(
                job_id=int(job_id),
                submit=float(submit),
                start=float(start),
                end=float(end),
                n_nodes=float(n_nodes),
            )
        )
    return JobLog.from_records(records)
