"""Job records and the columnar job log container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.utils.timeutils import HOUR


@dataclass(frozen=True, order=True)
class JobRecord:
    """One job, as reported by ``sacct`` (Section 2.2).

    Attributes
    ----------
    submit:
        Submission time, seconds since the start of the observed period.
    start, end:
        Start and end of execution.
    n_nodes:
        Number of allocated nodes.  Stored as a float so that job-size
        scaling by non-integer factors (Section 5.6) keeps its exact cost
        weight; real logs carry integers.
    job_id:
        Scheduler-assigned identifier.
    """

    submit: float
    start: float
    end: float
    n_nodes: float
    job_id: int = 0

    def __post_init__(self) -> None:
        if self.start < self.submit:
            raise ValueError("job cannot start before it is submitted")
        if self.end < self.start:
            raise ValueError("job cannot end before it starts")
        if self.n_nodes <= 0:
            raise ValueError("job must allocate at least a fraction of a node")

    @property
    def duration(self) -> float:
        """Wallclock duration in seconds."""
        return self.end - self.start

    @property
    def node_hours(self) -> float:
        """Total compute consumed by the job, in node–hours."""
        return self.n_nodes * self.duration / HOUR


class JobLog:
    """Columnar, NumPy-backed collection of jobs sorted by start time."""

    __slots__ = ("job_id", "submit", "start", "end", "n_nodes")

    def __init__(
        self,
        job_id: Sequence[int],
        submit: Sequence[float],
        start: Sequence[float],
        end: Sequence[float],
        n_nodes: Sequence[float],
    ) -> None:
        self.job_id = np.asarray(job_id, dtype=np.int64)
        self.submit = np.asarray(submit, dtype=np.float64)
        self.start = np.asarray(start, dtype=np.float64)
        self.end = np.asarray(end, dtype=np.float64)
        self.n_nodes = np.asarray(n_nodes, dtype=np.float64)
        lengths = {
            arr.shape[0]
            for arr in (self.job_id, self.submit, self.start, self.end, self.n_nodes)
        }
        if len(lengths) > 1:
            raise ValueError("all job log columns must have the same length")
        if len(self) and np.any(np.diff(self.start) < 0):
            order = np.argsort(self.start, kind="stable")
            for name in self.__slots__:
                setattr(self, name, getattr(self, name)[order])
        if len(self):
            if np.any(self.end < self.start) or np.any(self.start < self.submit):
                raise ValueError("job log contains inconsistent timestamps")
            if np.any(self.n_nodes <= 0):
                raise ValueError("job log contains non-positive node counts")

    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "JobLog":
        return cls([], [], [], [], [])

    @classmethod
    def from_records(cls, records: Iterable[JobRecord]) -> "JobLog":
        records = list(records)
        return cls(
            job_id=[r.job_id for r in records],
            submit=[r.submit for r in records],
            start=[r.start for r in records],
            end=[r.end for r in records],
            n_nodes=[r.n_nodes for r in records],
        )

    def __len__(self) -> int:
        return int(self.job_id.shape[0])

    def __iter__(self) -> Iterator[JobRecord]:
        return (self.record(i) for i in range(len(self)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JobLog):
            return NotImplemented
        return len(self) == len(other) and all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in self.__slots__
        )

    def record(self, index: int) -> JobRecord:
        """Materialise job ``index`` as a :class:`JobRecord`."""
        return JobRecord(
            job_id=int(self.job_id[index]),
            submit=float(self.submit[index]),
            start=float(self.start[index]),
            end=float(self.end[index]),
            n_nodes=float(self.n_nodes[index]),
        )

    def to_records(self) -> List[JobRecord]:
        return list(self)

    # ------------------------------------------------------------------ #
    @property
    def durations(self) -> np.ndarray:
        """Wallclock durations of all jobs, seconds."""
        return self.end - self.start

    @property
    def node_hours(self) -> np.ndarray:
        """Per-job consumed node–hours."""
        return self.n_nodes * self.durations / HOUR

    def total_node_hours(self) -> float:
        """Total compute delivered to jobs over the period."""
        return float(self.node_hours.sum())

    def utilization(self, n_cluster_nodes: int, duration_seconds: float) -> float:
        """Fraction of the cluster's capacity consumed by the logged jobs."""
        capacity = n_cluster_nodes * duration_seconds / HOUR
        if capacity <= 0:
            return 0.0
        return self.total_node_hours() / capacity

    def filter_time(self, t_start: float, t_end: float) -> "JobLog":
        """Jobs whose execution overlaps ``[t_start, t_end)``."""
        mask = (self.end > t_start) & (self.start < t_end)
        return self.select(mask)

    def select(self, mask: np.ndarray) -> "JobLog":
        """Sub-log selected by boolean mask or index array."""
        mask = np.asarray(mask)
        return JobLog(
            job_id=self.job_id[mask],
            submit=self.submit[mask],
            start=self.start[mask],
            end=self.end[mask],
            n_nodes=self.n_nodes[mask],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not len(self):
            return "JobLog(empty)"
        return (
            f"JobLog(jobs={len(self)}, nodes max={self.n_nodes.max():.0f}, "
            f"node-hours={self.total_node_hours():.0f})"
        )
