"""MareNostrum-4-like synthetic workload generator.

Section 2.2 of the paper uses one year of Slurm accounting data from the
general-purpose block of MareNostrum 4 (3456 nodes), whose jobs are "mainly
large-scale scientific HPC applications" with sizes and durations that differ
by orders of magnitude, and a system utilization generally above 95 %.

The generator reproduces those properties:

* node counts follow a truncated power-of-two-biased distribution spanning
  ``1 .. max_job_nodes`` (orders of magnitude of spread);
* durations are log-normal (heavy tailed);
* jobs are submitted with enough backlog that the FCFS scheduler keeps the
  cluster utilization above a configurable target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.timeutils import HOUR
from repro.utils.validation import check_fraction, check_positive
from repro.workload.job import JobLog
from repro.workload.scheduler import BackfillScheduler, ClusterScheduler


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic workload."""

    #: Largest job size, in nodes.
    max_job_nodes: int = 512
    #: Mean job wallclock duration, seconds.
    mean_job_duration_seconds: float = 10 * HOUR
    #: Log-normal sigma of the duration distribution.
    duration_sigma: float = 1.2
    #: Geometric decay of the power-of-two node-count distribution: the
    #: probability of 2^(k+1) nodes is ``node_count_decay`` times that of 2^k.
    node_count_decay: float = 0.62
    #: Target cluster utilization delivered by the generated log.
    target_utilization: float = 0.95
    #: Minimum job duration, seconds (very short jobs are not interesting).
    min_job_duration_seconds: float = 5 * 60.0
    #: Submission-time shape: ``"uniform"`` (stationary backlog, the
    #: default) or ``"diurnal"`` (sinusoidal day/night arrival rate).  Both
    #: consume exactly one uniform draw per job, so switching patterns
    #: never perturbs the other random streams of the generator.
    submit_pattern: str = "uniform"
    #: Relative amplitude of the diurnal arrival-rate modulation, in [0, 1].
    diurnal_amplitude: float = 0.6
    #: Period of the diurnal cycle, seconds.
    diurnal_period_seconds: float = 24 * HOUR
    #: Scheduling discipline: ``"fcfs"`` or ``"backfill"`` (EASY-style
    #: conservative backfilling, stressing queue-jump job mixes).
    scheduler: str = "fcfs"

    def __post_init__(self) -> None:
        check_positive("max_job_nodes", self.max_job_nodes)
        check_positive("mean_job_duration_seconds", self.mean_job_duration_seconds)
        check_positive("duration_sigma", self.duration_sigma)
        check_positive("min_job_duration_seconds", self.min_job_duration_seconds)
        check_fraction("target_utilization", self.target_utilization)
        if not (0.0 < self.node_count_decay < 1.0):
            raise ValueError("node_count_decay must be in (0, 1)")
        if self.submit_pattern not in ("uniform", "diurnal"):
            raise ValueError(
                f"submit_pattern must be 'uniform' or 'diurnal', "
                f"got {self.submit_pattern!r}"
            )
        check_fraction("diurnal_amplitude", self.diurnal_amplitude)
        check_positive("diurnal_period_seconds", self.diurnal_period_seconds)
        if self.scheduler not in ("fcfs", "backfill"):
            raise ValueError(
                f"scheduler must be 'fcfs' or 'backfill', got {self.scheduler!r}"
            )

    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        return simple_to_dict(self, "workload_config")

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadConfig":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import simple_from_dict

        return simple_from_dict(cls, data, "workload_config")

    def node_count_probabilities(self) -> np.ndarray:
        """Probability of each power-of-two node count up to the maximum."""
        n_classes = int(np.floor(np.log2(self.max_job_nodes))) + 1
        weights = self.node_count_decay ** np.arange(n_classes)
        return weights / weights.sum()

    def node_count_values(self) -> np.ndarray:
        """The power-of-two node counts the generator draws from."""
        n_classes = int(np.floor(np.log2(self.max_job_nodes))) + 1
        return np.minimum(2 ** np.arange(n_classes), self.max_job_nodes)


class WorkloadGenerator:
    """Generate a Slurm-like job log for a cluster of ``n_cluster_nodes``."""

    def __init__(
        self,
        config: Optional[WorkloadConfig] = None,
        n_cluster_nodes: int = 256,
        duration_seconds: float = 365 * 24 * HOUR,
        seed=0,
    ) -> None:
        check_positive("n_cluster_nodes", n_cluster_nodes)
        check_positive("duration_seconds", duration_seconds)
        self.config = config or WorkloadConfig()
        self.n_cluster_nodes = int(n_cluster_nodes)
        self.duration = float(duration_seconds)
        self._rng = as_generator(seed, "workload")

    # ------------------------------------------------------------------ #
    def sample_node_counts(self, size: int) -> np.ndarray:
        """Draw job node counts (power-of-two biased, truncated)."""
        cfg = self.config
        values = np.minimum(cfg.node_count_values(), self.n_cluster_nodes)
        probs = cfg.node_count_probabilities()
        return self._rng.choice(values, size=size, p=probs)

    def sample_durations(self, size: int) -> np.ndarray:
        """Draw job durations (log-normal, truncated below)."""
        cfg = self.config
        sigma = cfg.duration_sigma
        mu = np.log(cfg.mean_job_duration_seconds) - 0.5 * sigma**2
        durations = self._rng.lognormal(mu, sigma, size=size)
        return np.maximum(durations, cfg.min_job_duration_seconds)

    def _sample_submit_times(self, n_jobs: int) -> np.ndarray:
        """Draw sorted submission times following the configured pattern.

        The diurnal shape is produced by inverse-CDF transforming the very
        same uniform draw the stationary pattern uses, so both patterns
        consume an identical number of random values.
        """
        cfg = self.config
        span = 0.9 * self.duration
        submits = np.sort(self._rng.uniform(0.0, span, n_jobs))
        if cfg.submit_pattern == "uniform" or cfg.diurnal_amplitude == 0.0:
            return submits
        # Arrival rate lambda(t) = 1 + a*sin(2*pi*t/T); invert its CDF on a
        # fine grid (deterministic, no extra RNG consumption).
        grid = np.linspace(0.0, span, 4097)
        omega = 2.0 * np.pi / cfg.diurnal_period_seconds
        cdf = grid + (cfg.diurnal_amplitude / omega) * (1.0 - np.cos(omega * grid))
        cdf /= cdf[-1]
        return np.interp(submits / span, cdf, grid)

    def generate(self) -> JobLog:
        """Produce a job log whose execution covers the production period."""
        cfg = self.config
        capacity_node_seconds = self.n_cluster_nodes * self.duration
        target_node_seconds = cfg.target_utilization * capacity_node_seconds

        # Draw jobs in chunks until the requested work fills the target
        # utilization, then schedule them FCFS.
        mean_job_node_seconds = (
            float(np.dot(cfg.node_count_probabilities(), cfg.node_count_values()))
            * cfg.mean_job_duration_seconds
        )
        est_jobs = max(8, int(target_node_seconds / mean_job_node_seconds))

        node_counts = self.sample_node_counts(est_jobs)
        durations = self.sample_durations(est_jobs)
        work = np.cumsum(node_counts * durations)
        n_jobs = int(np.searchsorted(work, target_node_seconds)) + 1
        while n_jobs >= len(node_counts):
            extra_nodes = self.sample_node_counts(est_jobs)
            extra_durations = self.sample_durations(est_jobs)
            node_counts = np.concatenate([node_counts, extra_nodes])
            durations = np.concatenate([durations, extra_durations])
            work = np.cumsum(node_counts * durations)
            n_jobs = int(np.searchsorted(work, target_node_seconds)) + 1
        node_counts = node_counts[:n_jobs]
        durations = durations[:n_jobs]

        # Spread submissions over the period with a standing backlog so the
        # scheduler can keep the machine busy from the start.
        submits = self._sample_submit_times(n_jobs)
        submits[: max(1, n_jobs // 20)] = 0.0

        if cfg.scheduler == "backfill":
            scheduler = BackfillScheduler(self.n_cluster_nodes)
        else:
            scheduler = ClusterScheduler(self.n_cluster_nodes)
        scheduled = scheduler.schedule_all(submits, node_counts, durations)
        log = ClusterScheduler.to_job_log(scheduled)
        # Keep only jobs that start within the observed period.
        return log.select(log.start < self.duration)


def generate_job_log(
    config: Optional[WorkloadConfig] = None,
    n_cluster_nodes: int = 256,
    duration_seconds: float = 365 * 24 * HOUR,
    seed=0,
) -> JobLog:
    """Convenience wrapper around :class:`WorkloadGenerator`."""
    return WorkloadGenerator(
        config, n_cluster_nodes=n_cluster_nodes, duration_seconds=duration_seconds, seed=seed
    ).generate()
