"""Slurm-like HPC workload substrate.

This package plays the role of the MareNostrum 4 job accounting log described
in Section 2.2 of the paper: a Slurm ``sacct`` extract with submission, start
and end times, and the number of allocated nodes for every job.  Because the
production log is proprietary, the package provides a generator of
statistically similar workloads (heavy-tailed durations, power-of-two-ish
node counts spanning orders of magnitude, >95 % cluster utilization), a
simple FCFS scheduler used to place the generated jobs on a cluster, sacct
text I/O, node-count-weighted job sampling (Section 3.3.3) and job-size
scaling (Section 5.6).
"""

from repro.workload.generator import WorkloadConfig, WorkloadGenerator, generate_job_log
from repro.workload.job import JobLog, JobRecord
from repro.workload.sampling import JobSequenceSampler, NodeJobTimeline
from repro.workload.scaling import scale_job_log
from repro.workload.scheduler import ClusterScheduler, ScheduledJob
from repro.workload.slurm import format_sacct, parse_sacct

__all__ = [
    "ClusterScheduler",
    "JobLog",
    "JobRecord",
    "JobSequenceSampler",
    "NodeJobTimeline",
    "ScheduledJob",
    "WorkloadConfig",
    "WorkloadGenerator",
    "format_sacct",
    "generate_job_log",
    "parse_sacct",
    "scale_job_log",
]
