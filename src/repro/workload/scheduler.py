"""A minimal FCFS cluster scheduler used to place generated jobs on nodes.

The workload generator produces jobs (submission time, requested nodes,
duration); this scheduler assigns start times and concrete node allocations
in first-come-first-served order, always picking the nodes that free up
earliest.  It is intentionally simple — the paper's method only needs the
resulting joint distribution of (node count, elapsed time) — but it gives the
generated log realistic queueing behaviour (jobs wait when the machine is
full) and lets tests check the >95 % utilization property end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.validation import check_positive
from repro.workload.job import JobLog, JobRecord


@dataclass(frozen=True)
class ScheduledJob:
    """A job with its scheduler-assigned start time and node allocation."""

    record: JobRecord
    nodes: np.ndarray

    @property
    def n_nodes(self) -> int:
        return int(self.nodes.size)


class ClusterScheduler:
    """First-come-first-served scheduler over a fixed pool of nodes."""

    def __init__(self, n_nodes: int) -> None:
        check_positive("n_nodes", n_nodes)
        self.n_nodes = int(n_nodes)
        self._free_at = np.zeros(self.n_nodes, dtype=np.float64)

    def reset(self) -> None:
        """Forget all previous allocations."""
        self._free_at[:] = 0.0

    @property
    def node_free_times(self) -> np.ndarray:
        """Copy of the per-node earliest-availability times."""
        return self._free_at.copy()

    def schedule(
        self, submit: float, n_nodes: int, duration: float, job_id: int = 0
    ) -> ScheduledJob:
        """Place one job and return its allocation.

        The job starts as soon as ``n_nodes`` nodes are simultaneously free
        after ``submit``; the chosen nodes are those that free up earliest.
        """
        if n_nodes > self.n_nodes:
            raise ValueError(
                f"job requests {n_nodes} nodes but the cluster has {self.n_nodes}"
            )
        check_positive("duration", duration)
        order = np.argsort(self._free_at, kind="stable")
        chosen = order[:n_nodes]
        start = max(float(submit), float(self._free_at[chosen].max(initial=0.0)))
        end = start + float(duration)
        self._free_at[chosen] = end
        record = JobRecord(
            submit=float(submit),
            start=start,
            end=end,
            n_nodes=float(n_nodes),
            job_id=int(job_id),
        )
        return ScheduledJob(record=record, nodes=np.sort(chosen))

    def schedule_all(
        self,
        submits: Sequence[float],
        n_nodes: Sequence[int],
        durations: Sequence[float],
    ) -> List[ScheduledJob]:
        """Schedule a batch of jobs in submission order."""
        submits = np.asarray(submits, dtype=float)
        n_nodes_arr = np.asarray(n_nodes, dtype=int)
        durations = np.asarray(durations, dtype=float)
        if not (len(submits) == len(n_nodes_arr) == len(durations)):
            raise ValueError("submits, n_nodes and durations must be equally long")
        order = np.argsort(submits, kind="stable")
        scheduled = []
        for job_id, idx in enumerate(order):
            scheduled.append(
                self.schedule(
                    submit=float(submits[idx]),
                    n_nodes=int(n_nodes_arr[idx]),
                    duration=float(durations[idx]),
                    job_id=job_id,
                )
            )
        return scheduled

    @staticmethod
    def to_job_log(scheduled: Sequence[ScheduledJob]) -> JobLog:
        """Collect scheduled jobs into a :class:`JobLog`."""
        return JobLog.from_records([s.record for s in scheduled])


class BackfillScheduler(ClusterScheduler):
    """EASY-style conservative backfill over the same node-pool model.

    Jobs are still taken in submission order, but whenever the queue head
    cannot start immediately a reservation is computed for it, and shorter
    jobs further down the queue (up to ``backfill_depth`` positions) may
    jump ahead provided they finish no later than the reserved start — so
    the head job is never delayed.  Backfilled allocations only raise node
    availability up to the reservation time, which keeps the guarantee
    conservative in this earliest-free-node model.
    """

    def __init__(self, n_nodes: int, backfill_depth: int = 32) -> None:
        super().__init__(n_nodes)
        check_positive("backfill_depth", backfill_depth)
        self.backfill_depth = int(backfill_depth)

    def earliest_start(self, submit: float, n_nodes: int) -> float:
        """Start time the job would get if scheduled right now."""
        if n_nodes > self.n_nodes:
            raise ValueError(
                f"job requests {n_nodes} nodes but the cluster has {self.n_nodes}"
            )
        order = np.argsort(self._free_at, kind="stable")
        chosen = order[:n_nodes]
        return max(float(submit), float(self._free_at[chosen].max(initial=0.0)))

    def schedule_all(
        self,
        submits: Sequence[float],
        n_nodes: Sequence[int],
        durations: Sequence[float],
    ) -> List[ScheduledJob]:
        """Schedule a batch with EASY backfilling."""
        submits = np.asarray(submits, dtype=float)
        n_nodes_arr = np.asarray(n_nodes, dtype=int)
        durations = np.asarray(durations, dtype=float)
        if not (len(submits) == len(n_nodes_arr) == len(durations)):
            raise ValueError("submits, n_nodes and durations must be equally long")
        queue = list(np.argsort(submits, kind="stable"))
        scheduled: List[ScheduledJob] = []
        job_id = 0
        while queue:
            head = queue[0]
            reservation = self.earliest_start(
                float(submits[head]), int(n_nodes_arr[head])
            )
            if reservation > submits[head]:
                # Head must wait: try to slide one shorter job in front of
                # its reservation, then re-evaluate.
                backfilled = False
                for pos in range(1, min(len(queue), 1 + self.backfill_depth)):
                    cand = queue[pos]
                    cand_start = self.earliest_start(
                        float(submits[cand]), int(n_nodes_arr[cand])
                    )
                    if cand_start + float(durations[cand]) <= reservation:
                        scheduled.append(
                            self.schedule(
                                submit=float(submits[cand]),
                                n_nodes=int(n_nodes_arr[cand]),
                                duration=float(durations[cand]),
                                job_id=job_id,
                            )
                        )
                        job_id += 1
                        queue.pop(pos)
                        backfilled = True
                        break
                if backfilled:
                    continue
            scheduled.append(
                self.schedule(
                    submit=float(submits[head]),
                    n_nodes=int(n_nodes_arr[head]),
                    duration=float(durations[head]),
                    job_id=job_id,
                )
            )
            job_id += 1
            queue.pop(0)
        return scheduled
