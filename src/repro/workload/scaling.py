"""Job-size scaling for the sensitivity analysis of Section 5.6.

The paper repeats the whole experiment with job sizes up to ten times smaller
or ten times larger than those observed on MareNostrum 4, keeping the
mitigation cost fixed, to verify that the method generalises to systems with
very different job mixes (NERSC/NSF-scale jobs are two to three orders of
magnitude larger).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive
from repro.workload.job import JobLog

#: Scaling factors evaluated in Figure 7.
PAPER_SCALING_FACTORS = (0.1, 0.3, 1.0, 3.0, 10.0)


def scale_job_log(job_log: JobLog, factor: float, min_nodes: float = 0.1) -> JobLog:
    """Return a copy of ``job_log`` with node counts multiplied by ``factor``.

    Durations are unchanged: the paper scales the job *size* (and therefore
    the potential UE cost, Equation 3) rather than the wallclock time.  Node
    counts are kept as floats so a 0.1× scaling of a 1-node job still carries
    one tenth of its original cost weight rather than rounding to zero.
    """
    check_positive("factor", factor)
    scaled = np.maximum(job_log.n_nodes * factor, min_nodes)
    return JobLog(
        job_id=job_log.job_id,
        submit=job_log.submit,
        start=job_log.start,
        end=job_log.end,
        n_nodes=scaled,
    )
