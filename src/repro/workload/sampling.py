"""Node-level job timelines sampled from a job log.

Section 3.3.3: during training (and in the cost model generally), "a sequence
of jobs is randomly chosen to run on the node.  The jobs are weighted by the
number of nodes on which they execute, in order to maintain the correct job
distribution."  A node that is part of a 512-node job is 512 times more
likely to be running that job than a single-node job of the same frequency.

:class:`JobSequenceSampler` draws such node-count-weighted sequences and
:class:`NodeJobTimeline` answers the two questions the MDP needs at any time
``t``: how many nodes does the current job span, and when did it start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.timeutils import HOUR
from repro.utils.validation import check_positive
from repro.workload.job import JobLog


@dataclass(frozen=True)
class NodeJobTimeline:
    """Back-to-back sequence of jobs running on one node over a time range.

    Attributes
    ----------
    starts:
        Start time of each job in the sequence (sorted, first <= t_start).
    durations:
        Wallclock duration of each job, seconds.
    n_nodes:
        Number of nodes of each job (the node under study is one of them).
    """

    starts: np.ndarray
    durations: np.ndarray
    n_nodes: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.starts) == len(self.durations) == len(self.n_nodes)):
            raise ValueError("timeline arrays must be equally long")
        if len(self.starts) == 0:
            raise ValueError("a node timeline needs at least one job")
        if np.any(np.diff(self.starts) < 0):
            raise ValueError("job starts must be sorted")

    @property
    def ends(self) -> np.ndarray:
        """End time of each job."""
        return self.starts + self.durations

    def job_at(self, t: float) -> Tuple[float, float]:
        """Return ``(job_start, job_n_nodes)`` for the job running at ``t``.

        Falls back to the last job if ``t`` lies beyond the sampled horizon
        (the sampler always covers the evaluation range, so this is only hit
        by out-of-range queries in user code).
        """
        idx = int(np.searchsorted(self.starts, t, side="right")) - 1
        idx = max(0, min(idx, len(self.starts) - 1))
        return float(self.starts[idx]), float(self.n_nodes[idx])

    def potential_ue_cost(
        self, t: float, last_mitigation: Optional[float], restartable: bool
    ) -> float:
        """Potential UE cost at time ``t`` in node–hours (Equation 3).

        ``potential_lost_wallclock_time`` is the time since the start of the
        running job or, when the mitigation allows restart (checkpointing)
        and a mitigation happened after the job started, since that last
        mitigation.
        """
        job_start, nodes = self.job_at(t)
        reference = job_start
        if restartable and last_mitigation is not None:
            reference = max(job_start, last_mitigation)
        lost = max(0.0, t - reference)
        return nodes * lost / HOUR


class JobSequenceSampler:
    """Sample per-node job timelines from a job log (node-count weighted)."""

    def __init__(self, job_log: JobLog, seed=0) -> None:
        if len(job_log) == 0:
            raise ValueError("cannot sample from an empty job log")
        self.job_log = job_log
        self._rng = as_generator(seed, "job-sampler")
        weights = job_log.n_nodes.astype(float)
        self._probabilities = weights / weights.sum()
        self._durations = job_log.durations
        self._n_nodes = job_log.n_nodes

    def sample_jobs(self, size: int, rng=None) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``size`` (duration, n_nodes) pairs, node-count weighted."""
        rng = self._rng if rng is None else as_generator(rng)
        idx = rng.choice(len(self.job_log), size=size, p=self._probabilities)
        return self._durations[idx], self._n_nodes[idx]

    def sample_timeline(
        self, t_start: float, t_end: float, rng=None
    ) -> NodeJobTimeline:
        """Sample a back-to-back job sequence covering ``[t_start, t_end]``.

        The first job is drawn length-biased and starts at a uniformly random
        phase before ``t_start`` (the node is mid-job when observation
        begins); subsequent jobs run back-to-back, which matches the >95 %
        utilization of the production system.
        """
        check_positive("time range", t_end - t_start)
        rng = self._rng if rng is None else as_generator(rng)

        starts = []
        durations = []
        nodes = []

        # Length-biased first job: longer jobs are more likely to be the one
        # in progress at an arbitrary observation instant.
        length_weights = self._probabilities * self._durations
        length_weights = length_weights / length_weights.sum()
        first = int(rng.choice(len(self.job_log), p=length_weights))
        first_duration = float(self._durations[first])
        phase = float(rng.uniform(0.0, first_duration))
        t = t_start - phase
        starts.append(t)
        durations.append(first_duration)
        nodes.append(float(self._n_nodes[first]))
        t += first_duration

        while t < t_end:
            batch_durations, batch_nodes = self.sample_jobs(16, rng=rng)
            for duration, n in zip(batch_durations, batch_nodes):
                starts.append(t)
                durations.append(float(duration))
                nodes.append(float(n))
                t += float(duration)
                if t >= t_end:
                    break

        return NodeJobTimeline(
            starts=np.asarray(starts),
            durations=np.asarray(durations),
            n_nodes=np.asarray(nodes),
        )
