"""Scenario configuration presets.

A :class:`ScenarioConfig` bundles everything needed to regenerate a full
experiment: the synthetic cluster size, the telemetry fault-model parameters,
the workload parameters, and the evaluation parameters (mitigation cost,
cross-validation layout, prediction window).

Three presets are provided:

``ScenarioConfig.small()``
    A laptop-scale scenario used by the unit/integration tests.  Tens of
    nodes, a few months of simulated production, a handful of uncorrected
    errors.  Runs in seconds.

``ScenarioConfig.benchmark()``
    The scenario used by the benchmark harness under ``benchmarks/``.  Large
    enough that every policy ordering reported in the paper is observable,
    small enough that the full suite completes in minutes.

``ScenarioConfig.paper()``
    The full MareNostrum-3 scale described in Section 2 of the paper: 3056
    nodes, ~25k DIMMs, two years of production, targeting ~4.5 M corrected
    errors and a few hundred uncorrected errors.  Provided for completeness;
    running it takes hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.telemetry.fault_model import FaultModelConfig
from repro.telemetry.topology import ClusterTopology
from repro.utils.timeutils import DAY, HOUR, MINUTE
from repro.workload.generator import WorkloadConfig


@dataclass(frozen=True)
class EvaluationConfig:
    """Parameters of the evaluation methodology (Section 4)."""

    #: Cost of one mitigation action, in node–minutes (paper uses 2, 5, 10).
    mitigation_cost_node_minutes: float = 2.0
    #: Whether the job can restart from the mitigation point (checkpointing).
    restartable: bool = True
    #: Number of equal parts of the error log (Figure 2).
    cv_parts: int = 6
    #: Fraction of the pre-test data used for training (rest is validation).
    cv_train_fraction: float = 0.75
    #: Length of the bootstrap train+validation window of the first split.
    cv_bootstrap_seconds: float = 14 * DAY
    #: Prediction window used only by the classical ML metrics (Section 4.4).
    prediction_window_seconds: float = 1 * DAY
    #: Minimum wallclock time between state transitions (Section 3.2.3).
    merge_window_seconds: float = 1 * MINUTE
    #: Week-long quarantine applied after each UE (Section 2.1.3).
    ue_burst_window_seconds: float = 7 * DAY

    @property
    def mitigation_cost_node_hours(self) -> float:
        """Mitigation cost converted to node–hours."""
        return self.mitigation_cost_node_minutes / 60.0

    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        return simple_to_dict(self, "evaluation_config")

    @classmethod
    def from_dict(cls, data: dict) -> "EvaluationConfig":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import simple_from_dict

        return simple_from_dict(cls, data, "evaluation_config")


@dataclass(frozen=True)
class ScenarioConfig:
    """Full description of a reproducible experiment scenario."""

    name: str
    seed: int
    topology: ClusterTopology
    fault_model: FaultModelConfig
    workload: WorkloadConfig
    evaluation: EvaluationConfig = field(default_factory=EvaluationConfig)
    #: Duration of the simulated production period, seconds.
    duration_seconds: float = 180 * DAY
    #: Restrict the telemetry to one DRAM manufacturer (Section 5.3 / the
    #: Figure 5 per-manufacturer subsystems); ``None`` keeps the whole fleet.
    manufacturer: Optional[int] = None
    #: Job-size scaling factor applied to the generated workload (Section
    #: 5.6 / Figure 7); 1.0 reproduces the base system.
    job_scaling_factor: float = 1.0

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @staticmethod
    def small(seed: int = 7) -> "ScenarioConfig":
        """Laptop-scale preset used by the test-suite."""
        topology = ClusterTopology(
            n_nodes=48,
            dimms_per_node=4,
            manufacturer_shares=(0.26, 0.21, 0.53),
        )
        fault = FaultModelConfig.scaled_for(
            n_dimms=topology.n_dimms, duration_seconds=120 * DAY, target_ues=36
        )
        workload = WorkloadConfig(
            max_job_nodes=16,
            mean_job_duration_seconds=6 * HOUR,
            duration_sigma=0.9,
        )
        return ScenarioConfig(
            name="small",
            seed=seed,
            topology=topology,
            fault_model=fault,
            workload=workload,
            duration_seconds=120 * DAY,
        )

    @staticmethod
    def benchmark(seed: int = 2024) -> "ScenarioConfig":
        """Preset used by the benchmark harness (minutes, not hours)."""
        topology = ClusterTopology(
            n_nodes=96,
            dimms_per_node=6,
            manufacturer_shares=(0.26, 0.21, 0.53),
        )
        fault = FaultModelConfig.scaled_for(
            n_dimms=topology.n_dimms, duration_seconds=240 * DAY, target_ues=84
        )
        workload = WorkloadConfig(
            max_job_nodes=32,
            mean_job_duration_seconds=8 * HOUR,
            duration_sigma=1.0,
        )
        return ScenarioConfig(
            name="benchmark",
            seed=seed,
            topology=topology,
            fault_model=fault,
            workload=workload,
            duration_seconds=240 * DAY,
        )

    @staticmethod
    def paper(seed: int = 42) -> "ScenarioConfig":
        """Full MareNostrum-3 scale preset (Section 2.1)."""
        topology = ClusterTopology(
            n_nodes=3056,
            dimms_per_node=8,
            manufacturer_shares=(6694 / 25320, 5207 / 25320, 13419 / 25320),
        )
        fault = FaultModelConfig.scaled_for(
            n_dimms=topology.n_dimms,
            duration_seconds=2 * 365 * DAY,
            target_ues=67,
            target_ces=4_500_000,
        )
        workload = WorkloadConfig(
            max_job_nodes=2048,
            mean_job_duration_seconds=12 * HOUR,
            duration_sigma=1.3,
        )
        return ScenarioConfig(
            name="paper",
            seed=seed,
            topology=topology,
            fault_model=fault,
            workload=workload,
            duration_seconds=2 * 365 * DAY,
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import tag

        return tag(
            "scenario_config",
            {
                "name": self.name,
                "seed": self.seed,
                "topology": self.topology.to_dict(),
                "fault_model": self.fault_model.to_dict(),
                "workload": self.workload.to_dict(),
                "evaluation": self.evaluation.to_dict(),
                "duration_seconds": self.duration_seconds,
                "manufacturer": self.manufacturer,
                "job_scaling_factor": self.job_scaling_factor,
            },
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import untag

        payload = untag(data, "scenario_config")
        return cls(
            name=payload["name"],
            seed=payload["seed"],
            topology=ClusterTopology.from_dict(payload["topology"]),
            fault_model=FaultModelConfig.from_dict(payload["fault_model"]),
            workload=WorkloadConfig.from_dict(payload["workload"]),
            evaluation=EvaluationConfig.from_dict(payload["evaluation"]),
            duration_seconds=payload["duration_seconds"],
            manufacturer=payload["manufacturer"],
            job_scaling_factor=payload["job_scaling_factor"],
        )

    # ------------------------------------------------------------------ #
    # Derived modifications
    # ------------------------------------------------------------------ #
    def with_mitigation_cost(self, node_minutes: float) -> "ScenarioConfig":
        """Return a copy with a different mitigation cost (Figure 3 sweep)."""
        return replace(
            self,
            evaluation=replace(
                self.evaluation, mitigation_cost_node_minutes=node_minutes
            ),
        )

    def with_restartable(self, restartable: bool) -> "ScenarioConfig":
        """Return a copy with a different job-restart assumption."""
        return replace(
            self, evaluation=replace(self.evaluation, restartable=restartable)
        )

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """Return a copy with a different root seed."""
        return replace(self, seed=seed)

    def with_duration(self, duration_seconds: float) -> "ScenarioConfig":
        """Return a copy covering a different production period."""
        return replace(self, duration_seconds=duration_seconds)

    def with_manufacturer(self, manufacturer: Optional[int]) -> "ScenarioConfig":
        """Return a copy restricted to one DRAM manufacturer (Figure 5 sweep).

        ``None`` lifts the restriction and evaluates the whole fleet.
        """
        return replace(self, manufacturer=manufacturer)

    def with_job_scale(self, factor: float) -> "ScenarioConfig":
        """Return a copy with the workload scaled by ``factor`` (Figure 7 sweep)."""
        return replace(self, job_scaling_factor=factor)

    def with_fault_overrides(self, **fields) -> "ScenarioConfig":
        """Return a copy with selected fault-model fields replaced.

        Used by the declarative suite layer to express e.g. correlated
        burst-failure modes without rebuilding the whole configuration.
        """
        return replace(self, fault_model=replace(self.fault_model, **fields))

    def with_workload_overrides(self, **fields) -> "ScenarioConfig":
        """Return a copy with selected workload fields replaced (job-mix
        stress shapes: diurnal submissions, backfill scheduling, ...)."""
        return replace(self, workload=replace(self.workload, **fields))

    def with_topology(self, topology: ClusterTopology) -> "ScenarioConfig":
        """Return a copy on a different cluster topology (fleet segments)."""
        return replace(self, topology=topology)
