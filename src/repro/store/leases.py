"""The ``leases/`` store family: the claim protocol of distributed sweeps.

A *lease* is a small JSON object at ``leases/<result_key>.json`` asserting
"worker *owner* is computing the point whose result will land at
``results/<result_key>.json``".  The whole multi-worker coordination story
reduces to three backend primitives:

claim
    ``put_if_absent`` on the lease key — atomic, exactly one winner among
    any number of concurrent claimants.  A point whose *result* already
    exists is never claimed (the resume path catches it first).
heartbeat
    The owner periodically rewrites its lease with a fresh timestamp.  A
    lease whose heartbeat is older than its TTL is *expired*: its owner is
    presumed dead and any worker may reclaim the point (delete + claim —
    the delete may race another reclaimer, but the follow-up
    ``put_if_absent`` still admits exactly one winner).
release
    The owner deletes its lease after publishing the result.

Results themselves are content-keyed and deterministic, so the one benign
race left — a presumed-dead owner that was merely slow finishing its
point — ends with two byte-identical result writes to the same key: points
are never lost and never double-counted, even when work is duplicated.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from repro.serialization import canonical_json_bytes, tag, untag
from repro.store.backends import StoreBackend

__all__ = [
    "DEFAULT_LEASE_TTL",
    "Lease",
    "LeaseLost",
    "LeaseManager",
    "default_worker_id",
]

#: Default time-to-live of an unrefreshed lease, in seconds.  Workers
#: heartbeat every ``ttl / 4`` by default, so four missed beats kill a
#: lease — tolerant of scheduling hiccups, quick enough that a crashed
#: worker's points are reclaimed within a couple of minutes.
DEFAULT_LEASE_TTL = 120.0

LEASE_PREFIX = "leases/"


class LeaseLost(RuntimeError):
    """The lease was reclaimed by another worker (or vanished) mid-compute."""


def default_worker_id() -> str:
    """``host:pid:nonce`` — unique even across forks sharing a pid space."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one sweep point."""

    #: Content key of the result the owner is computing (``results/<key>``).
    result_key: str
    #: Claimant identity (:func:`default_worker_id` unless overridden).
    owner: str
    #: Human-readable sweep-point label, for ``--status`` output.
    label: str
    #: When the point was claimed (epoch seconds).
    claimed_at: float
    #: Last heartbeat (epoch seconds); staleness beyond ``ttl_seconds``
    #: expires the lease.
    heartbeat: float
    #: How stale the heartbeat may grow before any worker may reclaim.
    ttl_seconds: float
    #: Content key of the point's prepared-data product, so gc can keep the
    #: product of an in-flight point alive (empty when unknown).
    prepared_key: str = ""

    @property
    def key(self) -> str:
        """The backend key this lease lives at."""
        return f"{LEASE_PREFIX}{self.result_key}.json"

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat."""
        return (time.time() if now is None else now) - self.heartbeat

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the owner has missed enough heartbeats to be presumed dead."""
        return self.age(now) > self.ttl_seconds

    def to_dict(self) -> Dict[str, Any]:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        return tag(
            "lease",
            {
                "result_key": self.result_key,
                "owner": self.owner,
                "label": self.label,
                "claimed_at": self.claimed_at,
                "heartbeat": self.heartbeat,
                "ttl_seconds": self.ttl_seconds,
                "prepared_key": self.prepared_key,
            },
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Lease":
        """Inverse of :meth:`to_dict`."""
        return cls(**untag(data, "lease"))


class LeaseManager:
    """Claim, heartbeat, reclaim and release leases against one backend.

    One manager per worker: it carries the worker's identity (``owner``)
    and tallies the claim metrics the exactly-once tests assert on
    (:attr:`claims`, :attr:`conflicts`, :attr:`reclaims`).
    """

    def __init__(
        self,
        backend: StoreBackend,
        owner: Optional[str] = None,
        ttl_seconds: float = DEFAULT_LEASE_TTL,
    ) -> None:
        if ttl_seconds <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl_seconds!r}")
        self.backend = backend
        self.owner = owner or default_worker_id()
        self.ttl_seconds = float(ttl_seconds)
        #: Successful claims (fresh and reclaimed).
        self.claims = 0
        #: Claim attempts lost to a live lease held by another worker.
        self.conflicts = 0
        #: Successful claims that evicted an *expired* lease first.
        self.reclaims = 0

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def load(self, result_key: str) -> Optional[Lease]:
        """The current lease on ``result_key``, or ``None``."""
        data = self.backend.get(f"{LEASE_PREFIX}{result_key}.json")
        if data is None:
            return None
        import json

        return Lease.from_dict(json.loads(data.decode("utf-8")))

    def list_leases(self) -> List[Lease]:
        """Every lease in the store, in key order."""
        leases = []
        for key in self.backend.list(LEASE_PREFIX):
            data = self.backend.get(key)
            if data is None:  # raced a concurrent release
                continue
            import json

            leases.append(Lease.from_dict(json.loads(data.decode("utf-8"))))
        return leases

    # ------------------------------------------------------------------ #
    # The claim protocol
    # ------------------------------------------------------------------ #
    def _fresh(self, result_key: str, label: str, prepared_key: str) -> Lease:
        now = time.time()
        return Lease(
            result_key=result_key,
            owner=self.owner,
            label=label,
            claimed_at=now,
            heartbeat=now,
            ttl_seconds=self.ttl_seconds,
            prepared_key=prepared_key,
        )

    def claim(
        self, result_key: str, label: str = "", prepared_key: str = ""
    ) -> Optional[Lease]:
        """Try to claim the point computing ``result_key``.

        Returns the freshly minted :class:`Lease` on success, ``None`` when
        another worker holds a live lease.  An *expired* lease is evicted
        and re-claimed in one call; the eviction may race another
        reclaimer, in which case the follow-up ``put_if_absent`` decides —
        exactly one claimant ever wins the key.
        """
        lease = self._fresh(result_key, label, prepared_key)
        payload = canonical_json_bytes(lease.to_dict())
        if self.backend.put_if_absent(lease.key, payload):
            self.claims += 1
            return lease
        existing = self.load(result_key)
        if existing is not None and not existing.expired():
            self.conflicts += 1
            return None
        # Expired (or vanished between the put and the load): evict and
        # retry the atomic publish once.
        self.backend.delete(lease.key)
        lease = self._fresh(result_key, label, prepared_key)
        if self.backend.put_if_absent(
            lease.key, canonical_json_bytes(lease.to_dict())
        ):
            self.claims += 1
            if existing is not None:
                self.reclaims += 1
            return lease
        self.conflicts += 1
        return None

    def renew(self, lease: Lease) -> Lease:
        """Heartbeat: refresh ``lease``'s timestamp, proving the owner alive.

        Raises :class:`LeaseLost` when the lease on the key is no longer
        this worker's — it expired and another worker reclaimed the point.
        The caller may finish and publish anyway (the result bytes are
        identical), but must stop heartbeating this lease.
        """
        current = self.load(lease.result_key)
        if current is None or current.owner != self.owner:
            raise LeaseLost(
                f"lease on {lease.result_key} now held by "
                f"{current.owner if current else 'nobody'}; "
                f"{self.owner} lost it"
            )
        renewed = replace(current, heartbeat=time.time())
        self.backend.put(renewed.key, canonical_json_bytes(renewed.to_dict()))
        return renewed

    def release(self, lease: Lease) -> None:
        """Drop the claim (after the result is published).

        Only removes the lease while it is still this worker's — a
        reclaimed lease belongs to the new owner and is left alone.
        """
        current = self.load(lease.result_key)
        if current is not None and current.owner == self.owner:
            self.backend.delete(lease.key)
