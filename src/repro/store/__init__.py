"""Disk-backed, content-keyed artifact store — now a layered package.

:mod:`repro.store.backends`
    The pluggable byte-level :class:`StoreBackend` contract
    (get/put/list/delete plus the atomic ``put_if_absent`` one-winner
    primitive), with :class:`LocalFSBackend` (the classic on-disk layout,
    byte for byte) and :class:`DictBackend` (in-memory test double; the
    key scheme stays object-store/S3-compatible).
:mod:`repro.store.leases`
    The ``leases/`` family and the distributed-sweep claim protocol:
    atomic point claims, heartbeats, TTL expiry and reclaim.
:mod:`repro.store.artifacts`
    :class:`ArtifactStore` — the content-keyed artifact families
    (``prepared/``, ``results/``, ``sweeps/``) over any backend, plus the
    lease-aware garbage collector.

``from repro.store import ArtifactStore`` keeps working unchanged — the
package re-exports the full public surface of the old ``store`` module.
"""

from repro.store.artifacts import ArtifactStore, StoreGcReport
from repro.store.backends import DictBackend, LocalFSBackend, StoreBackend
from repro.store.leases import (
    DEFAULT_LEASE_TTL,
    Lease,
    LeaseLost,
    LeaseManager,
    default_worker_id,
)

__all__ = [
    "ArtifactStore",
    "DEFAULT_LEASE_TTL",
    "DictBackend",
    "Lease",
    "LeaseLost",
    "LeaseManager",
    "LocalFSBackend",
    "StoreBackend",
    "StoreGcReport",
    "default_worker_id",
]
