"""Content-keyed artifact store over a pluggable :class:`StoreBackend`.

The :class:`ArtifactStore` persists the artifact families of the
evaluation pipeline under one backend namespace, each addressed by a
SHA-256 content key derived from the *inputs* that produced it — never by
run order or timestamps — so identical work is found again across
processes, sessions and machines:

``prepared/<key>/``
    One :class:`~repro.evaluation.pipeline.PreparedData` product (the
    Table 1 feature tracks, the scaled job log and the reduction report) as
    ``meta.json`` + ``arrays.npz``.  Keyed by the same inputs as
    :func:`~repro.evaluation.pipeline.prepared_data_key`, so everything the
    in-memory :class:`~repro.evaluation.pipeline.PreparedDataCache` would
    share, the store shares too — attach a store as the cache's ``spill``
    backend and sweeps warm-start across sessions.
``results/<key>.json``
    One :class:`~repro.evaluation.pipeline.ExperimentResult`, keyed by the
    full (scenario, experiment-config) pair *minus* the scheduling knobs
    (``n_workers``, ``executor_kind``, ``rl_trial_tasks``) — the golden
    harness proves the schedule never changes the numbers, so serial and
    parallel runs (and both RL task shapes) of one experiment share a
    result slot.
``sweeps/<key>.json``
    One sweep manifest mapping each point label of a
    :class:`~repro.evaluation.sweep.SweepSpec` to its result key, so
    ``python -m repro report`` can rebuild the whole
    :class:`~repro.evaluation.sweep.SweepResult` from disk.
``leases/<result_key>.json``
    The distributed-sweep claim protocol (see :mod:`repro.store.leases`):
    which worker is computing which point, heartbeat-stamped.

All JSON artifacts use the versioned schema of :mod:`repro.serialization`;
writes go through the backend's atomic ``put`` so a crashed run never
leaves a half-written artifact behind.  The default
:class:`~repro.store.backends.LocalFSBackend` keeps the exact directory
layout this store has always written; any backend honouring the
:class:`~repro.store.backends.StoreBackend` contract (e.g. an object
store, or the in-memory :class:`~repro.store.backends.DictBackend`) drops
in without touching the store logic.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config import ScenarioConfig
from repro.core.features import NodeFeatureTrack
from repro.evaluation.pipeline import (
    ExperimentConfig,
    ExperimentResult,
    PreparedData,
    _effective_job_scaling,
    _effective_manufacturer,
    prepared_data_key,
)
from repro.serialization import (
    SchemaError,
    canonical_json,
    canonical_json_bytes,
    tag,
    untag,
)
from repro.store.backends import LocalFSBackend, StoreBackend
from repro.store.leases import Lease, LeaseManager
from repro.telemetry.reduction import ReductionReport
from repro.utils.rng import RngFactory
from repro.workload.job import JobLog
from repro.workload.sampling import JobSequenceSampler

__all__ = ["ArtifactStore", "StoreGcReport"]


@dataclass(frozen=True)
class StoreGcReport:
    """Outcome of one :meth:`ArtifactStore.gc` pass."""

    #: Keys of the pruned (or, with ``dry_run``, prunable) prepared products.
    removed: Tuple[str, ...]
    #: Keys kept: referenced by a sweep manifest, a stored result or an
    #: *active* lease, or written recently enough to fall inside the
    #: in-flight grace window.
    kept: Tuple[str, ...]
    #: Bytes freed (or freeable) by removing the orphaned products.
    freed_bytes: int
    #: Whether this was a report-only pass.
    dry_run: bool
    #: Result keys of leases pruned (or prunable) because their heartbeat
    #: exceeded the TTL — a worker died mid-point and nobody reclaimed it.
    expired_leases: Tuple[str, ...] = ()
    #: Result keys of leases left untouched: their owners are still
    #: heartbeating, and their prepared products are pinned.
    active_leases: Tuple[str, ...] = ()

#: Experiment-config fields that select a *schedule* or a diagnostic, not a
#: result: two runs differing only here produce identical numbers
#: (golden-tested; the per-trial RL task shape is result-identical to the
#: in-task loop by construction, ``profile`` only adds instrumentation,
#: and ``compiled`` swaps in kernels that perform the identical IEEE-754
#: operations), so they must share one result slot.
_SCHEDULE_FIELDS = (
    "n_workers",
    "executor_kind",
    "rl_trial_tasks",
    "profile",
    "compiled",
)


def _digest(payload: Any) -> str:
    """Content key: SHA-256 of the canonical JSON of ``payload``."""
    text = canonical_json(payload)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _redacted_config_dict(config: ExperimentConfig) -> Dict[str, Any]:
    """Config payload with the result-irrelevant scheduling knobs dropped."""
    payload = config.to_dict()
    for name in _SCHEDULE_FIELDS:
        payload.pop(name, None)
    return payload


class ArtifactStore:
    """Content-keyed store of prepared data, results, sweeps and leases.

    ``ArtifactStore(path)`` opens (or creates) the classic on-disk layout
    through a :class:`~repro.store.backends.LocalFSBackend`;
    ``ArtifactStore(backend=...)`` mounts the same artifact families on any
    :class:`~repro.store.backends.StoreBackend`.  Creating the store lays
    down (or validates) a ``store.json`` marker so an arbitrary namespace
    is never silently treated as a store.  All operations are safe to
    interleave across processes sharing the backend: artifacts are
    immutable once written and writes are atomic, so the worst concurrent
    outcome is two processes computing the same artifact once each.
    """

    MARKER = "store.json"

    def __init__(self, root=None, *, backend: Optional[StoreBackend] = None) -> None:
        if (root is None) == (backend is None):
            raise ValueError(
                "ArtifactStore takes a root directory (LocalFSBackend) or "
                "an explicit backend=, not both and not neither"
            )
        self.backend: StoreBackend = (
            LocalFSBackend(root) if backend is None else backend
        )
        #: Filesystem root when the backend has one (``None`` otherwise);
        #: kept for path-flavoured display (the CLI prints it).
        self.root: Optional[Path] = getattr(self.backend, "root", None)
        marker = self.backend.get(self.MARKER)
        if marker is not None:
            untag(json.loads(marker.decode("utf-8")), "artifact_store")
        else:
            # put_if_absent: two processes opening a fresh store race to
            # one marker instead of overwriting each other.
            self.backend.put_if_absent(
                self.MARKER, canonical_json_bytes(tag("artifact_store", {}))
            )
        for family in ("prepared", "results", "sweeps", "leases"):
            self.backend.ensure_prefix(family)

    def __repr__(self) -> str:
        if self.root is not None:
            return f"ArtifactStore({str(self.root)!r})"
        return f"ArtifactStore(backend={self.backend!r})"

    # ------------------------------------------------------------------ #
    # Backend text/JSON helpers
    # ------------------------------------------------------------------ #
    def _get_json(self, key: str, kind: str) -> Optional[Dict[str, Any]]:
        data = self.backend.get(key)
        if data is None:
            return None
        return untag(json.loads(data.decode("utf-8")), kind)

    def _put_json(self, key: str, payload: Dict[str, Any]) -> None:
        self.backend.put(key, canonical_json_bytes(payload))

    # ------------------------------------------------------------------ #
    # Content keys
    # ------------------------------------------------------------------ #
    def prepared_key(
        self, scenario: ScenarioConfig, config: ExperimentConfig
    ) -> str:
        """Disk twin of :func:`~repro.evaluation.pipeline.prepared_data_key`."""
        return _digest(
            {
                "kind": "prepared_data",
                "seed": scenario.seed,
                "topology": scenario.topology.to_dict(),
                "fault_model": scenario.fault_model.to_dict(),
                "workload": scenario.workload.to_dict(),
                "duration_seconds": scenario.duration_seconds,
                "ue_burst_window_seconds": scenario.evaluation.ue_burst_window_seconds,
                "merge_window_seconds": scenario.evaluation.merge_window_seconds,
                "manufacturer": _effective_manufacturer(scenario, config),
                "job_scaling": _effective_job_scaling(scenario, config),
            }
        )

    def result_key(self, scenario: ScenarioConfig, config: ExperimentConfig) -> str:
        """Content key of one experiment's result."""
        return _digest(
            {
                "kind": "experiment_result",
                "scenario": scenario.to_dict(),
                "config": _redacted_config_dict(config),
            }
        )

    def sweep_key(self, spec, config: ExperimentConfig) -> str:
        """Content key of one sweep manifest (``spec`` is a ``SweepSpec``)."""
        return _digest(
            {
                "kind": "sweep",
                "spec": spec.to_dict(),
                "config": _redacted_config_dict(config),
            }
        )

    # ------------------------------------------------------------------ #
    # Prepared data
    # ------------------------------------------------------------------ #
    def has_prepared(
        self, scenario: ScenarioConfig, config: ExperimentConfig
    ) -> bool:
        key = self.prepared_key(scenario, config)
        return self.backend.get(f"prepared/{key}/meta.json") is not None

    def save_prepared(
        self, prepared: PreparedData, config: ExperimentConfig
    ) -> str:
        """Persist one synthetic :class:`PreparedData` product; returns its key.

        Only products fully derivable from their scenario belong here — the
        caller (normally the :class:`PreparedDataCache` spill path) must not
        pass products built from externally supplied logs.
        """
        scenario = prepared.scenario
        key = self.prepared_key(scenario, config)
        if self.backend.get(f"prepared/{key}/meta.json") is not None:
            return key

        arrays: Dict[str, np.ndarray] = {}
        nodes = sorted(prepared.tracks)
        arrays["nodes"] = np.asarray(nodes, dtype=np.int64)
        for node in nodes:
            track = prepared.tracks[node]
            arrays[f"track_{node}_times"] = track.times
            arrays[f"track_{node}_features"] = track.features
            arrays[f"track_{node}_is_ue"] = track.is_ue
        job_log = prepared.sampler.job_log
        arrays["job_id"] = job_log.job_id
        arrays["job_submit"] = job_log.submit
        arrays["job_start"] = job_log.start
        arrays["job_end"] = job_log.end
        arrays["job_n_nodes"] = job_log.n_nodes
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        self.backend.put(f"prepared/{key}/arrays.npz", buffer.getvalue())

        meta = tag(
            "prepared_data",
            {
                "scenario": scenario.to_dict(),
                "reduction_report": prepared.reduction_report.to_dict(),
            },
        )
        # meta.json is written last: its presence marks the entry complete.
        self._put_json(f"prepared/{key}/meta.json", meta)
        return key

    def load_prepared(
        self, scenario: ScenarioConfig, config: ExperimentConfig
    ) -> Optional[PreparedData]:
        """Reload a prepared product, re-bound to the requesting scenario.

        Returns ``None`` on a miss.  The product is bound to the *caller's*
        ``scenario`` (evaluation parameters such as the mitigation cost are
        excluded from the content key, exactly as in the in-memory cache)
        and its ``data_key`` is restored, so trace caching keeps working.
        """
        key = self.prepared_key(scenario, config)
        meta = self._get_json(f"prepared/{key}/meta.json", "prepared_data")
        if meta is None:
            return None
        reduction_report = ReductionReport.from_dict(meta["reduction_report"])

        raw = self.backend.get(f"prepared/{key}/arrays.npz")
        if raw is None:
            return None  # incomplete entry: a crashed writer beat the marker
        with np.load(io.BytesIO(raw)) as archive:
            nodes = [int(node) for node in archive["nodes"]]
            tracks = {
                node: NodeFeatureTrack(
                    node=node,
                    times=archive[f"track_{node}_times"],
                    features=archive[f"track_{node}_features"],
                    is_ue=archive[f"track_{node}_is_ue"],
                )
                for node in nodes
            }
            job_log = JobLog(
                job_id=archive["job_id"],
                submit=archive["job_submit"],
                start=archive["job_start"],
                end=archive["job_end"],
                n_nodes=archive["job_n_nodes"],
            )
        # Same seed derivation as prepare_data; the pipeline never draws from
        # the sampler's internal generator, but keep it identical anyway.
        sampler = JobSequenceSampler(
            job_log, seed=RngFactory(scenario.seed).stream("sampler")
        )
        return PreparedData(
            scenario=scenario,
            tracks=tracks,
            sampler=sampler,
            reduction_report=reduction_report,
            data_key=prepared_data_key(scenario, config),
        )

    # ------------------------------------------------------------------ #
    # Experiment results
    # ------------------------------------------------------------------ #
    def has_result(self, scenario: ScenarioConfig, config: ExperimentConfig) -> bool:
        key = self.result_key(scenario, config)
        return self.backend.get(f"results/{key}.json") is not None

    def has_result_key(self, key: str) -> bool:
        """Whether a result is stored under the given content key."""
        return self.backend.get(f"results/{key}.json") is not None

    def save_result(
        self,
        scenario: ScenarioConfig,
        config: ExperimentConfig,
        result: ExperimentResult,
    ) -> str:
        """Persist one experiment result with its full provenance; returns its key."""
        key = self.result_key(scenario, config)
        payload = tag(
            "stored_result",
            {
                "scenario": scenario.to_dict(),
                "config": config.to_dict(),
                "result": result.to_dict(),
            },
        )
        self._put_json(f"results/{key}.json", payload)
        return key

    def load_result(
        self, scenario: ScenarioConfig, config: ExperimentConfig
    ) -> Optional[ExperimentResult]:
        """Reload one experiment result, or ``None`` on a miss."""
        return self.load_result_by_key(self.result_key(scenario, config))

    def load_result_by_key(self, key: str) -> Optional[ExperimentResult]:
        payload = self._get_json(f"results/{key}.json", "stored_result")
        if payload is None:
            return None
        return ExperimentResult.from_dict(payload["result"])

    # ------------------------------------------------------------------ #
    # Sweep manifests
    # ------------------------------------------------------------------ #
    def save_sweep(self, spec, config: ExperimentConfig, result) -> str:
        """Persist a sweep manifest (``result`` is a ``SweepResult``).

        Point results must already be stored (``run_sweep`` writes each one
        before recording the manifest); the manifest only records the spec,
        the config and the label -> result-key mapping.
        """
        key = self.sweep_key(spec, config)
        payload = tag(
            "sweep_manifest",
            {
                "spec": spec.to_dict(),
                "config": config.to_dict(),
                "points": {
                    point.label: self.result_key(point.scenario, config)
                    for point in result.points
                },
            },
        )
        self._put_json(f"sweeps/{key}.json", payload)
        return key

    def load_sweep_manifest(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw manifest payload of one stored sweep, or ``None``."""
        return self._get_json(f"sweeps/{key}.json", "sweep_manifest")

    def load_sweep_by_key(self, key: str):
        """Rebuild a :class:`~repro.evaluation.sweep.SweepResult` from disk.

        Raises :class:`repro.serialization.SchemaError` when a point result
        referenced by the manifest is missing (a partially computed sweep —
        resume it through :class:`repro.study.Study` first).
        """
        from repro.evaluation.sweep import SweepResult, SweepSpec

        manifest = self.load_sweep_manifest(key)
        if manifest is None:
            return None
        spec = SweepSpec.from_dict(manifest["spec"])
        results: Dict[str, ExperimentResult] = {}
        for label, result_key in manifest["points"].items():
            result = self.load_result_by_key(result_key)
            if result is None:
                raise SchemaError(
                    f"sweep {key} references missing result {result_key} "
                    f"for point {label!r}; resume the sweep to recompute it"
                )
            results[label] = result
        return SweepResult(
            spec=spec,
            points=spec.points(),
            results=results,
            wallclock_seconds=0.0,
        )

    # ------------------------------------------------------------------ #
    # Leases
    # ------------------------------------------------------------------ #
    def lease_manager(
        self,
        owner: Optional[str] = None,
        ttl_seconds: Optional[float] = None,
    ) -> LeaseManager:
        """A :class:`~repro.store.leases.LeaseManager` over this backend."""
        kwargs: Dict[str, Any] = {}
        if ttl_seconds is not None:
            kwargs["ttl_seconds"] = ttl_seconds
        return LeaseManager(self.backend, owner=owner, **kwargs)

    def list_leases(self) -> List[Lease]:
        """Every lease currently recorded in the store."""
        return self.lease_manager().list_leases()

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #
    def list_sweeps(self) -> List[Dict[str, Any]]:
        """Summaries of every stored sweep (key, base scenario, point labels)."""
        entries: List[Dict[str, Any]] = []
        for key in self.backend.list("sweeps/"):
            manifest = self._get_json(key, "sweep_manifest")
            if manifest is None:
                continue
            spec = manifest["spec"]
            base = untag(spec, "sweep_spec")["base"]
            entries.append(
                {
                    "key": key[len("sweeps/"):-len(".json")],
                    "base_scenario": untag(base, "scenario_config")["name"],
                    "labels": list(manifest["points"]),
                }
            )
        return entries

    def list_results(self) -> List[Dict[str, Any]]:
        """Summaries of every stored experiment result."""
        entries: List[Dict[str, Any]] = []
        for key in self.backend.list("results/"):
            payload = self._get_json(key, "stored_result")
            if payload is None:
                continue
            scenario = untag(payload["scenario"], "scenario_config")
            result = untag(payload["result"], "experiment_result")
            entries.append(
                {
                    "key": key[len("results/"):-len(".json")],
                    "scenario": scenario["name"],
                    "seed": scenario["seed"],
                    "mitigation_cost_node_minutes": scenario["evaluation"].get(
                        "mitigation_cost_node_minutes"
                    ),
                    "approaches": list(result["approaches"]),
                }
            )
        return entries

    def list_prepared(self) -> List[str]:
        """Content keys of every stored prepared-data product."""
        return sorted(
            key[len("prepared/"):-len("/meta.json")]
            for key in self.backend.list("prepared/")
            if key.endswith("/meta.json")
        )

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def referenced_prepared_keys(self) -> set:
        """Prepared-product keys reachable from the stored sweeps/results.

        A sweep manifest references the prepared product of each of its
        points; a stored experiment result references the product of its
        (scenario, config) pair.  Everything else in ``prepared/`` is
        orphaned — typically spilled by sweeps whose manifests were never
        written (killed runs) or superseded by later specs — and may be
        pruned by :meth:`gc`.
        """
        from repro.evaluation.sweep import SweepSpec

        referenced = set()
        for key in self.backend.list("sweeps/"):
            manifest = self._get_json(key, "sweep_manifest")
            if manifest is None:
                continue
            spec = SweepSpec.from_dict(manifest["spec"])
            config = ExperimentConfig.from_dict(manifest["config"])
            for point in spec.points():
                referenced.add(self.prepared_key(point.scenario, config))
        for key in self.backend.list("results/"):
            payload = self._get_json(key, "stored_result")
            if payload is None:
                continue
            scenario = ScenarioConfig.from_dict(payload["scenario"])
            config = ExperimentConfig.from_dict(payload["config"])
            referenced.add(self.prepared_key(scenario, config))
        return referenced

    def _prepared_entries(self) -> Dict[str, List[str]]:
        """Prepared content key -> every backend key of that entry."""
        entries: Dict[str, List[str]] = {}
        for key in self.backend.list("prepared/"):
            parts = key.split("/")
            if len(parts) < 3:
                continue
            entries.setdefault(parts[1], []).append(key)
        return entries

    def gc(
        self, dry_run: bool = False, grace_seconds: float = 3600.0
    ) -> "StoreGcReport":
        """Prune unreferenced prepared products and expired leases.

        Prepared products survive when a stored sweep or result references
        them — or when an **active** lease does: a worker is computing that
        point right now, and collecting its inputs out from under it would
        waste the work.  Incomplete entries (a crashed writer left no
        ``meta.json``) are pruned; entries modified within
        ``grace_seconds`` are always kept (a sweep *currently* spilling
        products must not be raced by a concurrent gc pass).

        Leases whose heartbeat exceeds their TTL are the debris of killed
        workers nobody reclaimed; they are deleted and reported in
        :attr:`StoreGcReport.expired_leases`.  With ``dry_run`` nothing is
        deleted; the report still lists what would go and how many bytes it
        would free.
        """
        referenced = self.referenced_prepared_keys()
        active_leases: List[str] = []
        expired_leases: List[str] = []
        for lease in self.list_leases():
            if lease.expired():
                expired_leases.append(lease.result_key)
                if not dry_run:
                    self.backend.delete(lease.key)
            else:
                active_leases.append(lease.result_key)
                if lease.prepared_key:
                    referenced.add(lease.prepared_key)

        now = time.time()
        removed: List[str] = []
        kept: List[str] = []
        freed = 0
        for name, keys in sorted(self._prepared_entries().items()):
            complete = f"prepared/{name}/meta.json" in keys
            if complete and name in referenced:
                kept.append(name)
                continue
            newest = max(self.backend.mtime(key) for key in keys)
            if now - newest < grace_seconds:
                kept.append(name)
                continue
            freed += sum(self.backend.size(key) for key in keys)
            removed.append(name)
            if not dry_run:
                for key in keys:
                    self.backend.delete(key)
        return StoreGcReport(
            removed=tuple(removed),
            kept=tuple(kept),
            freed_bytes=freed,
            dry_run=dry_run,
            expired_leases=tuple(expired_leases),
            active_leases=tuple(active_leases),
        )
