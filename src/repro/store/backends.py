"""Pluggable key–value backends under the :class:`~repro.store.ArtifactStore`.

The store's artifact families (``prepared/``, ``results/``, ``sweeps/`` and
the coordination ``leases/``) are all addressed by ``/``-separated object
keys — ``results/<key>.json``, ``prepared/<key>/arrays.npz`` — and every
store operation reduces to the small byte-oriented contract of
:class:`StoreBackend`.  The key scheme is deliberately object-store shaped:
an S3/GCS backend maps each key to one object name verbatim, with
``put_if_absent`` provided by conditional puts (``If-None-Match: *``).

Two backends ship here:

:class:`LocalFSBackend`
    Keys are relative file paths under one root directory — exactly the
    on-disk layout :class:`~repro.store.ArtifactStore` has always written,
    byte for byte.  Writes are atomic (temp file + ``os.replace``), and
    ``put_if_absent`` is a hard-link publish: the content is fully written
    before the name appears, and the link either creates the name or fails,
    so concurrent writers admit exactly one winner with complete content.
:class:`DictBackend`
    An in-memory mapping guarded by a lock — the unit-test double, and the
    semantic reference for any remote backend (same keys, same atomicity
    contract, no filesystem).

All mutating operations must be safe to interleave across processes (for
backends that can be shared across processes at all): ``put`` replaces the
value atomically — a reader never observes a torn write — and
``put_if_absent`` is an atomic test-and-set over key *existence*.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Tuple

__all__ = [
    "DictBackend",
    "LocalFSBackend",
    "StoreBackend",
]


class StoreBackend(Protocol):
    """The byte-oriented contract every store backend implements.

    Keys are non-empty ``/``-separated relative paths (``results/ab.json``).
    Values are opaque byte strings.  Implementations must make ``put``
    atomic (no torn reads) and ``put_if_absent`` an atomic one-winner
    test-and-set; everything else may be best-effort eventually-listed, as
    object stores are.
    """

    def get(self, key: str) -> Optional[bytes]:
        """The value at ``key``, or ``None`` when absent."""

    def put(self, key: str, data: bytes) -> None:
        """Atomically create or replace the value at ``key``."""

    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Publish ``data`` at ``key`` only if no value exists yet.

        Returns ``True`` when this call created the value — under any
        number of concurrent callers, exactly one receives ``True``.
        """

    def delete(self, key: str) -> bool:
        """Remove ``key``; ``True`` when a value was actually removed."""

    def list(self, prefix: str = "") -> List[str]:
        """Sorted keys starting with ``prefix`` (files only, never dirs)."""

    def size(self, key: str) -> int:
        """Stored size of ``key`` in bytes (0 when absent)."""

    def mtime(self, key: str) -> float:
        """Last-modified time of ``key`` (seconds since the epoch)."""

    def ensure_prefix(self, prefix: str) -> None:
        """Pre-create a key family (a no-op for flat-namespace backends)."""


def _check_key(key: str) -> str:
    """Reject keys that would escape the namespace or collide with temp files."""
    if not key or key.startswith("/") or key.endswith("/"):
        raise ValueError(f"invalid store key {key!r}")
    parts = key.split("/")
    if any(part in ("", ".", "..") for part in parts):
        raise ValueError(f"invalid store key {key!r}")
    return key


class LocalFSBackend:
    """Keys as relative file paths under ``root`` — today's store layout.

    ``put`` writes to a same-directory temp file and ``os.replace``\\ s it
    over the destination; ``put_if_absent`` hard-links the fully written
    temp file to the destination name, which atomically fails with
    ``FileExistsError`` when the name is taken — POSIX's one-winner
    primitive with complete content either way.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:
        return f"LocalFSBackend({str(self.root)!r})"

    def _path(self, key: str) -> Path:
        return self.root / _check_key(key)

    def get(self, key: str) -> Optional[bytes]:
        try:
            return self._path(key).read_bytes()
        except (FileNotFoundError, IsADirectoryError):
            return None

    def _write_tmp(self, directory: Path, data: bytes) -> str:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
        except BaseException:
            os.unlink(tmp)
            raise
        return tmp

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        tmp = self._write_tmp(path.parent, data)
        try:
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def put_if_absent(self, key: str, data: bytes) -> bool:
        path = self._path(key)
        tmp = self._write_tmp(path.parent, data)
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)
        return True

    def delete(self, key: str) -> bool:
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        # Prune now-empty parents so removing an entry's last file leaves no
        # husk directory behind (matches the old rmtree-based gc exactly).
        parent = path.parent
        while parent != self.root:
            try:
                parent.rmdir()
            except OSError:
                break
            parent = parent.parent
        return True

    def list(self, prefix: str = "") -> List[str]:
        keys: List[str] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            base = Path(dirpath).relative_to(self.root)
            for name in filenames:
                if name.endswith(".tmp"):
                    continue  # in-flight atomic writes are not yet values
                key = name if base == Path(".") else f"{base.as_posix()}/{name}"
                if key.startswith(prefix):
                    keys.append(key)
        return sorted(keys)

    def size(self, key: str) -> int:
        try:
            return self._path(key).stat().st_size
        except FileNotFoundError:
            return 0

    def mtime(self, key: str) -> float:
        return self._path(key).stat().st_mtime

    def ensure_prefix(self, prefix: str) -> None:
        (self.root / _check_key(prefix.rstrip("/"))).mkdir(
            parents=True, exist_ok=True
        )


class DictBackend:
    """In-memory backend: the test double and remote-backend reference.

    Thread-safe (one lock around the mapping); naturally process-local, so
    multi-*process* coordination tests use :class:`LocalFSBackend`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Dict[str, Tuple[bytes, float]] = {}

    def __repr__(self) -> str:
        return f"DictBackend(<{len(self._data)} keys>)"

    def get(self, key: str) -> Optional[bytes]:
        _check_key(key)
        with self._lock:
            entry = self._data.get(key)
        return None if entry is None else entry[0]

    def put(self, key: str, data: bytes) -> None:
        _check_key(key)
        with self._lock:
            self._data[key] = (bytes(data), time.time())

    def put_if_absent(self, key: str, data: bytes) -> bool:
        _check_key(key)
        with self._lock:
            if key in self._data:
                return False
            self._data[key] = (bytes(data), time.time())
            return True

    def delete(self, key: str) -> bool:
        _check_key(key)
        with self._lock:
            return self._data.pop(key, None) is not None

    def list(self, prefix: str = "") -> List[str]:
        with self._lock:
            return sorted(key for key in self._data if key.startswith(prefix))

    def size(self, key: str) -> int:
        _check_key(key)
        with self._lock:
            entry = self._data.get(key)
        return 0 if entry is None else len(entry[0])

    def mtime(self, key: str) -> float:
        _check_key(key)
        with self._lock:
            entry = self._data.get(key)
        if entry is None:
            raise FileNotFoundError(key)
        return entry[1]

    def ensure_prefix(self, prefix: str) -> None:
        pass  # flat namespace: prefixes need no creation
