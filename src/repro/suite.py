"""Declarative scenario suites: whole multi-sweep experiments from YAML.

The paper's evaluation is a *grid of grids* — Figure 3 sweeps mitigation
costs and restartability, Figure 5 sweeps manufacturers, Figure 7 job
scales.  A suite file names each of those grids once, declaratively, and
``python -m repro suite suite.yaml`` compiles every block into the exact
:class:`~repro.evaluation.sweep.SweepSpec` a hand-written script would have
built and drives the unchanged :func:`~repro.evaluation.sweep.run_sweep`
engine — so suite results are bit-identical to direct API calls, stores
compose, and the distributed ``--shard``/``--claim`` modes keep working.

A minimal suite::

    scenarios:
      fig3:
        preset: small
        axes:
          mitigation_costs: [2, 5, 10]
          restartable: [on, off]

Beyond the classic axes, blocks reach the scenario kinds the ROADMAP names:

``source: mcelog:PATH``
    Ingest a real mcelog dump through :mod:`repro.telemetry.mcelog` instead
    of the synthetic generator (the block's points replay the trace).
``fault_model: {correlated_bursts: 4, ...}``
    Correlated multi-node burst failures (any
    :class:`~repro.telemetry.fault_model.FaultModelConfig` field).
``segments: [{name: old, n_nodes: 24, manufacturer: 0, ...}, ...]``
    Heterogeneous fleets with per-segment manufacturer, fault scaling and
    policy assignment (pair with ``experiment: {include_fleet_mix: true}``).
``workload: {submit_pattern: diurnal, scheduler: backfill}``
    Job-mix stress shapes (any
    :class:`~repro.workload.generator.WorkloadConfig` field).

Schema errors are reported as :class:`SuiteError` — a single line naming
the offending block and field, never a traceback.  PyYAML is the only
dependency and is imported lazily so the rest of the package works without
it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import EvaluationConfig, ScenarioConfig
from repro.evaluation.pipeline import ExperimentConfig
from repro.evaluation.sweep import SweepResult, SweepSpec, run_sweep
from repro.telemetry.fault_model import FaultModelConfig
from repro.telemetry.records import MANUFACTURER_NAMES
from repro.telemetry.topology import FleetSegment
from repro.utils.timeutils import DAY
from repro.workload.generator import WorkloadConfig

__all__ = [
    "Suite",
    "SuiteEntry",
    "SuiteError",
    "load_suite",
    "parse_suite",
    "run_suite",
]

PRESETS = ("small", "benchmark", "paper")

_TOP_KEYS = ("suite", "defaults", "scenarios")
_BLOCK_KEYS = (
    "preset",
    "seed",
    "duration_days",
    "source",
    "fault_model",
    "workload",
    "evaluation",
    "segments",
    "axes",
    "experiment",
)
_AXIS_KEYS = (
    "mitigation_costs",
    "restartable",
    "manufacturers",
    "job_scales",
    "seeds",
)
_SEGMENT_KEYS = ("name", "n_nodes", "manufacturer", "ce_scale", "ue_scale", "policy")


class SuiteError(ValueError):
    """A suite file problem, phrased as one line naming block and field."""


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - PyYAML ships in CI
        raise SuiteError(
            "scenario suites need PyYAML; install it with "
            "'pip install pyyaml' (packaged as the [suite] extra: "
            "pip install repro[suite])"
        ) from exc
    return yaml


# --------------------------------------------------------------------- #
# Data model
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SuiteEntry:
    """One named scenario block, fully compiled."""

    #: Block name (the key under ``scenarios:``).
    name: str
    #: The sweep the block compiles to — exactly what a hand-built
    #: :class:`SweepSpec` for the same grid would be.
    spec: SweepSpec
    #: Per-block :class:`ExperimentConfig` field overrides.
    experiment_overrides: Dict[str, Any] = field(default_factory=dict)
    #: Absolute path of the block's mcelog trace, or ``None`` (synthetic).
    source: Optional[str] = None


@dataclass(frozen=True)
class Suite:
    """A parsed suite file: named entries, in declaration order."""

    name: str
    entries: Tuple[SuiteEntry, ...]
    path: Optional[str] = None

    @property
    def n_points(self) -> int:
        return sum(entry.spec.n_points for entry in self.entries)

    def entry(self, name: str) -> SuiteEntry:
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        known = ", ".join(repr(entry.name) for entry in self.entries)
        raise SuiteError(f"no scenario block named {name!r}; blocks: {known}")


# --------------------------------------------------------------------- #
# Schema helpers (every failure is a one-line SuiteError)
# --------------------------------------------------------------------- #
def _require_mapping(value: Any, what: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise SuiteError(
            f"{what} must be a mapping, got {type(value).__name__}"
        )
    return value


def _check_keys(mapping: Dict[str, Any], valid: Sequence[str], what: str) -> None:
    unknown = sorted(str(key) for key in mapping if key not in valid)
    if unknown:
        raise SuiteError(
            f"{what}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(valid)}"
        )


def _config_overrides(
    block: str, key: str, mapping: Any, cls, forbidden: Sequence[str] = ()
) -> Dict[str, Any]:
    """Validate a ``{field: value}`` override mapping against a dataclass."""
    mapping = _require_mapping(mapping, f"scenario {block!r}: {key}")
    known = {f.name for f in dataclass_fields(cls)}
    for name in mapping:
        if name in forbidden:
            raise SuiteError(
                f"scenario {block!r}: {key}.{name} cannot be set from a suite file"
            )
        if name not in known:
            raise SuiteError(
                f"scenario {block!r}: unknown {key} field {name!r}; "
                f"valid fields: {', '.join(sorted(known - set(forbidden)))}"
            )
    return dict(mapping)


def _number(block: str, axis: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SuiteError(
            f"scenario {block!r}: axis {axis!r} values must be numbers, "
            f"got {value!r}"
        )
    return float(value)


def _axis_values(block: str, axis: str, values: Any) -> Tuple[Any, ...]:
    if not isinstance(values, (list, tuple)) or not values:
        raise SuiteError(
            f"scenario {block!r}: axis {axis!r} must be a non-empty list, "
            f"got {values!r}"
        )
    out: List[Any] = []
    for value in values:
        if axis in ("mitigation_costs", "job_scales"):
            out.append(_number(block, axis, value))
        elif axis == "seeds":
            if isinstance(value, bool) or not isinstance(value, int):
                raise SuiteError(
                    f"scenario {block!r}: axis 'seeds' values must be "
                    f"integers, got {value!r}"
                )
            out.append(int(value))
        elif axis == "restartable":
            if isinstance(value, bool):
                out.append(value)
            elif value in ("on", "off"):
                out.append(value == "on")
            else:
                raise SuiteError(
                    f"scenario {block!r}: axis 'restartable' values must be "
                    f"booleans (YAML on/off), got {value!r}"
                )
        elif axis == "manufacturers":
            if value is None or value == "all":
                out.append(None)
            elif isinstance(value, str) and value.upper() in MANUFACTURER_NAMES:
                out.append(MANUFACTURER_NAMES.index(value.upper()))
            elif isinstance(value, int) and not isinstance(value, bool):
                out.append(int(value))
            else:
                raise SuiteError(
                    f"scenario {block!r}: axis 'manufacturers' values must "
                    f"be 'all'/null, a letter "
                    f"({'/'.join(MANUFACTURER_NAMES)}) or an index, "
                    f"got {value!r}"
                )
        else:  # pragma: no cover - guarded by _check_keys
            raise SuiteError(f"scenario {block!r}: unknown axis {axis!r}")
    return tuple(out)


def _compile_segments(block: str, raw: Any) -> Tuple[FleetSegment, ...]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise SuiteError(
            f"scenario {block!r}: segments must be a non-empty list of mappings"
        )
    segments: List[FleetSegment] = []
    for i, item in enumerate(raw):
        item = _require_mapping(item, f"scenario {block!r}: segments[{i}]")
        _check_keys(item, _SEGMENT_KEYS, f"scenario {block!r}: segments[{i}]")
        for required in ("name", "n_nodes", "manufacturer"):
            if required not in item:
                raise SuiteError(
                    f"scenario {block!r}: segments[{i}] needs a "
                    f"{required!r} entry"
                )
        try:
            segments.append(FleetSegment(**item))
        except (TypeError, ValueError) as exc:
            raise SuiteError(
                f"scenario {block!r}: segments[{i}]: {exc}"
            ) from None
    return tuple(segments)


def _compile_source(block: str, raw: Any, base_dir: str) -> str:
    if not isinstance(raw, str) or not raw.startswith("mcelog:"):
        raise SuiteError(
            f"scenario {block!r}: source must be 'mcelog:PATH', got {raw!r}"
        )
    path = raw[len("mcelog:"):]
    if not path:
        raise SuiteError(f"scenario {block!r}: source names an empty path")
    if not os.path.isabs(path):
        path = os.path.join(base_dir, path)
    if not os.path.exists(path):
        raise SuiteError(
            f"scenario {block!r}: mcelog source {path!r} does not exist"
        )
    return path


# --------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------- #
def _compile_block(
    name: str,
    raw: Any,
    defaults: Dict[str, Any],
    base_dir: str,
) -> SuiteEntry:
    block = _require_mapping(raw, f"scenario {name!r}")
    _check_keys(block, _BLOCK_KEYS, f"scenario {name!r}")
    merged = dict(defaults)
    for key, value in block.items():
        # Nested override mappings merge key-by-key with the defaults, so a
        # block adding one experiment flag keeps the suite-wide ones.
        if (
            key in ("fault_model", "workload", "evaluation", "experiment")
            and isinstance(value, dict)
            and isinstance(merged.get(key), dict)
        ):
            merged[key] = {**merged[key], **value}
        else:
            merged[key] = value

    preset = merged.get("preset", "small")
    if preset not in PRESETS:
        raise SuiteError(
            f"scenario {name!r}: unknown preset {preset!r}; "
            f"choose from {', '.join(PRESETS)}"
        )
    scenario: ScenarioConfig = getattr(ScenarioConfig, preset)()

    if "seed" in merged:
        seed = merged["seed"]
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise SuiteError(
                f"scenario {name!r}: seed must be an integer, got {seed!r}"
            )
        scenario = scenario.with_seed(seed)
    if "duration_days" in merged:
        days = _number(name, "duration_days", merged["duration_days"])
        try:
            scenario = scenario.with_duration(days * DAY)
        except ValueError as exc:
            raise SuiteError(f"scenario {name!r}: duration_days: {exc}") from None

    for key, cls, apply in (
        ("fault_model", FaultModelConfig, "with_fault_overrides"),
        ("workload", WorkloadConfig, "with_workload_overrides"),
    ):
        if key in merged:
            overrides = _config_overrides(name, key, merged[key], cls)
            try:
                scenario = getattr(scenario, apply)(**overrides)
            except (TypeError, ValueError) as exc:
                raise SuiteError(f"scenario {name!r}: {key}: {exc}") from None

    if "evaluation" in merged:
        overrides = _config_overrides(
            name, "evaluation", merged["evaluation"], EvaluationConfig
        )
        try:
            scenario = replace(
                scenario, evaluation=replace(scenario.evaluation, **overrides)
            )
        except (TypeError, ValueError) as exc:
            raise SuiteError(f"scenario {name!r}: evaluation: {exc}") from None

    if "segments" in merged:
        segments = _compile_segments(name, merged["segments"])
        try:
            scenario = scenario.with_topology(
                replace(scenario.topology, segments=segments)
            )
        except ValueError as exc:
            raise SuiteError(f"scenario {name!r}: segments: {exc}") from None

    axes: Dict[str, Tuple[Any, ...]] = {}
    if "axes" in merged:
        raw_axes = _require_mapping(merged["axes"], f"scenario {name!r}: axes")
        _check_keys(raw_axes, _AXIS_KEYS, f"scenario {name!r}: axes")
        for axis, values in raw_axes.items():
            axes[axis] = _axis_values(name, axis, values)

    experiment: Dict[str, Any] = {}
    if "experiment" in merged:
        experiment = _config_overrides(
            name,
            "experiment",
            merged["experiment"],
            ExperimentConfig,
            forbidden=("rl_base_config",),
        )
        for tuple_key in ("rl_hidden_sizes", "sc20_threshold_offsets"):
            if tuple_key in experiment:
                experiment[tuple_key] = tuple(experiment[tuple_key])

    source = None
    if "source" in merged:
        source = _compile_source(name, merged["source"], base_dir)

    spec = SweepSpec(
        base=replace(scenario, name=name),
        mitigation_costs=axes.get("mitigation_costs"),
        restartable=axes.get("restartable"),
        manufacturers=axes.get("manufacturers"),
        job_scales=axes.get("job_scales"),
        seeds=axes.get("seeds"),
    )
    try:
        points = spec.points()
    except ValueError as exc:
        raise SuiteError(f"scenario {name!r}: {exc}") from None
    if experiment:
        # Surface bad values (not just bad names) at compile time.
        try:
            ExperimentConfig().with_overrides(**experiment)
        except (TypeError, ValueError) as exc:
            raise SuiteError(f"scenario {name!r}: experiment: {exc}") from None
    del points
    return SuiteEntry(
        name=name, spec=spec, experiment_overrides=experiment, source=source
    )


def parse_suite(
    text: str, name: str = "suite", base_dir: str = "."
) -> Suite:
    """Compile suite YAML text; every schema problem is a :class:`SuiteError`."""
    yaml = _yaml()
    try:
        document = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        reason = str(exc).replace("\n", " ").strip()
        raise SuiteError(f"invalid YAML: {reason}") from None
    if document is None:
        raise SuiteError("the suite file is empty")
    document = _require_mapping(document, "the suite document")
    _check_keys(document, _TOP_KEYS, "suite")

    meta = document.get("suite")
    if meta is not None:
        meta = _require_mapping(meta, "suite")
        _check_keys(meta, ("name", "description"), "suite")
        name = str(meta.get("name", name))

    defaults: Dict[str, Any] = {}
    if "defaults" in document:
        defaults = dict(_require_mapping(document["defaults"], "defaults"))
        _check_keys(defaults, _BLOCK_KEYS, "defaults")
        if "axes" in defaults or "source" in defaults:
            raise SuiteError(
                "defaults cannot set 'axes' or 'source'; declare them per block"
            )

    if "scenarios" not in document:
        raise SuiteError("the suite file needs a top-level 'scenarios' mapping")
    scenarios = _require_mapping(document["scenarios"], "scenarios")
    if not scenarios:
        raise SuiteError("'scenarios' must contain at least one block")

    entries = tuple(
        _compile_block(str(block_name), raw, defaults, base_dir)
        for block_name, raw in scenarios.items()
    )
    return Suite(name=name, entries=entries)


def load_suite(path: str) -> Suite:
    """Read and compile a suite file from disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise SuiteError(f"cannot read suite file {path!r}: {exc}") from None
    base = os.path.basename(path)
    for extension in (".yaml", ".yml"):
        if base.endswith(extension):
            base = base[: -len(extension)]
    try:
        suite = parse_suite(
            text, name=base, base_dir=os.path.dirname(os.path.abspath(path))
        )
    except SuiteError as exc:
        raise SuiteError(f"{path}: {exc}") from None
    return replace(suite, path=path)


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #
def _entry_error_log(entry: SuiteEntry, cache: Dict[str, Any]):
    if entry.source is None:
        return None
    if entry.source not in cache:
        from repro.telemetry.mcelog import parse_mcelog

        with open(entry.source, "r", encoding="utf-8") as handle:
            cache[entry.source] = parse_mcelog(handle)
    return cache[entry.source]


def run_suite(
    suite: Suite,
    config: Optional[ExperimentConfig] = None,
    store=None,
    only: Optional[str] = None,
    shard: Optional[Tuple[int, int]] = None,
    claim: bool = False,
    worker_id: Optional[str] = None,
    lease_ttl: Optional[float] = None,
) -> Dict[str, Optional[SweepResult]]:
    """Execute every entry of ``suite`` and return ``{name: SweepResult}``.

    ``config`` is the base :class:`ExperimentConfig`; each entry's
    ``experiment:`` overrides are applied on top.  ``store``, ``shard`` and
    ``claim`` compose exactly as in ``python -m repro sweep`` — except for
    mcelog-sourced entries, whose trace content is not derivable from the
    spec: they always bypass the store, so distributed modes reject them.
    Under ``claim``, an entry whose points are still leased by other
    workers yields ``None`` (reduce later); all other values are complete
    :class:`SweepResult` objects.
    """
    base_config = config or ExperimentConfig()
    entries = suite.entries if only is None else (suite.entry(only),)
    if (shard is not None or claim) and store is None:
        raise SuiteError(
            "distributed suite execution needs a store; pass store="
        )
    if shard is not None or claim:
        sourced = [entry.name for entry in entries if entry.source is not None]
        if sourced:
            raise SuiteError(
                "mcelog-sourced blocks bypass the store and cannot be "
                f"distributed: {', '.join(map(repr, sourced))}; run them "
                "without --shard/--claim"
            )

    log_cache: Dict[str, Any] = {}
    results: Dict[str, Optional[SweepResult]] = {}
    for entry in entries:
        entry_config = (
            base_config.with_overrides(**entry.experiment_overrides)
            if entry.experiment_overrides
            else base_config
        )
        if shard is not None or claim:
            from repro.distributed import run_sweep_worker

            outcome = run_sweep_worker(
                entry.spec,
                entry_config,
                store,
                shard=shard,
                claim=claim,
                worker_id=worker_id,
                lease_ttl=lease_ttl,
            )
            results[entry.name] = outcome.result
        else:
            results[entry.name] = run_sweep(
                entry.spec,
                entry_config,
                error_log=_entry_error_log(entry, log_cache),
                store=store,
            )
    return results
