"""`Study` — the stable top-level facade over experiments and sweeps.

A :class:`Study` owns the full lifecycle of one investigation: what to run
(a single :class:`~repro.config.ScenarioConfig` or a
:class:`~repro.evaluation.sweep.SweepSpec` over the paper's axes), where its
artifacts live (an optional :class:`~repro.store.ArtifactStore`), and how to
get at the outcome (``.result`` / ``.report()``).  Internally it drives the
existing engines — :func:`~repro.evaluation.experiment.run_experiment` and
:func:`~repro.evaluation.sweep.run_sweep` — unchanged, so a Study produces
bit-for-bit the results of the low-level calls (the golden harness pins
this).

With a store attached, ``run()`` becomes incremental: completed points load
from disk, only missing work executes, and everything computed is written
through.  ``resume()`` is the explicit restart-from-disk entry point — the
same call a results service would make in a later session or on another
machine (points of a run killed mid-execution are recomputed; only finished
points and spilled prepared data persist)::

    study = Study.from_sweep(
        SweepSpec(base=ScenarioConfig.small(), mitigation_costs=(2, 5, 10)),
        store=ArtifactStore("runs/"),
    )
    study.run(ExperimentConfig.fast())      # computes + persists
    ...                                      # new session, same store
    study.resume(ExperimentConfig.fast())   # loads everything, computes nothing
    print(study.report())
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import ScenarioConfig
from repro.evaluation.experiment import run_experiment
from repro.evaluation.pipeline import (
    ExperimentConfig,
    ExperimentResult,
    PreparedDataCache,
    default_prepared_cache,
)
from repro.evaluation.report import format_cost_table, format_metrics_table
from repro.evaluation.sweep import SweepResult, SweepSpec, run_sweep

__all__ = ["Study"]


class Study:
    """One investigation: a scenario or sweep, its artifacts, its result.

    Build one with :meth:`from_scenario` or :meth:`from_sweep`; the
    constructor itself is not public API.
    """

    def __init__(
        self,
        *,
        scenario: Optional[ScenarioConfig] = None,
        spec: Optional[SweepSpec] = None,
        store=None,
        cache: Optional[PreparedDataCache] = None,
    ) -> None:
        if (scenario is None) == (spec is None):
            raise ValueError(
                "a Study wraps exactly one of a scenario or a sweep spec; "
                "use Study.from_scenario(...) or Study.from_sweep(...)"
            )
        self.scenario = scenario
        self.spec = spec
        self.store = store
        if cache is not None:
            self.cache = cache
        elif store is not None:
            # A private cache spilling to the study's store: prepared data
            # written by earlier sessions is reused instead of regenerated.
            self.cache = PreparedDataCache(spill=store)
        else:
            self.cache = default_prepared_cache()
        self.config: Optional[ExperimentConfig] = None
        self._result: Optional[Union[ExperimentResult, SweepResult]] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scenario(
        cls,
        scenario: ScenarioConfig,
        store=None,
        cache: Optional[PreparedDataCache] = None,
    ) -> "Study":
        """A study of one scenario; ``run()`` yields an ``ExperimentResult``."""
        return cls(scenario=scenario, store=store, cache=cache)

    @classmethod
    def from_sweep(
        cls,
        spec: Union[SweepSpec, ScenarioConfig],
        store=None,
        cache: Optional[PreparedDataCache] = None,
        **axes,
    ) -> "Study":
        """A study of a sweep; ``run()`` yields a ``SweepResult``.

        Accepts a ready :class:`SweepSpec`, or a base
        :class:`ScenarioConfig` plus axis keyword arguments::

            Study.from_sweep(ScenarioConfig.small(),
                             mitigation_costs=(2, 5, 10),
                             restartable=(True, False))
        """
        if isinstance(spec, ScenarioConfig):
            spec = SweepSpec(base=spec, **axes)
        elif axes:
            raise TypeError(
                "axis keyword arguments are only accepted together with a "
                "base ScenarioConfig, not with a ready SweepSpec"
            )
        return cls(spec=spec, store=store, cache=cache)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        shard=None,
    ) -> Union[ExperimentResult, SweepResult]:
        """Execute the study (incrementally, when a store is attached).

        Single-scenario studies return the stored result outright when the
        store already holds one; sweep studies load completed points and
        execute only the missing ones (``run_sweep`` handles the
        per-point bookkeeping).  Everything computed is written through to
        the store.

        ``shard=(i, n)`` runs this process as worker *i* of an *n*-way
        statically sharded sweep (store required; see
        :mod:`repro.distributed`): the returned ``SweepResult`` covers only
        the points already in the store plus this worker's shard, and the
        sweep manifest is recorded by whichever worker finishes last.
        """
        config = config or ExperimentConfig()
        self.config = config
        if self.spec is not None:
            self._result = run_sweep(
                self.spec, config, cache=self.cache, store=self.store, shard=shard
            )
        else:
            if shard is not None:
                raise ValueError(
                    "shard=(i, n) only applies to sweep studies; a single "
                    "scenario has nothing to partition"
                )
            result = None
            if self.store is not None:
                result = self.store.load_result(self.scenario, config)
            if result is None:
                result = run_experiment(self.scenario, config, cache=self.cache)
                if self.store is not None:
                    self.store.save_result(self.scenario, config, result)
            self._result = result
        return self._result

    def resume(
        self, config: Optional[ExperimentConfig] = None
    ) -> Union[ExperimentResult, SweepResult]:
        """Restart from the attached store: load what exists, compute the rest.

        Identical to :meth:`run` except that it *requires* a store — calling
        it without one is a programming error (there is nothing to resume
        from), reported as a :class:`RuntimeError` instead of silently
        recomputing everything.
        """
        if self.store is None:
            raise RuntimeError(
                "Study.resume() needs an ArtifactStore; attach one via "
                "Study.from_scenario(..., store=...) / Study.from_sweep(..., store=...)"
            )
        return self.run(config)

    def status(self, config: Optional[ExperimentConfig] = None) -> list:
        """Per-point progress of a distributed sweep (store required).

        Returns the :class:`~repro.distributed.PointStatus` list of
        :func:`repro.distributed.sweep_status` — done / leased-by-whom /
        pending — without computing anything.
        """
        if self.spec is None or self.store is None:
            raise RuntimeError(
                "Study.status() reports distributed-sweep progress; it needs "
                "a sweep spec and an attached ArtifactStore"
            )
        from repro.distributed import sweep_status

        return sweep_status(self.spec, config or self.config, self.store)

    # ------------------------------------------------------------------ #
    # Outcome access
    # ------------------------------------------------------------------ #
    @property
    def result(self) -> Union[ExperimentResult, SweepResult]:
        """The outcome of the last :meth:`run` / :meth:`resume`."""
        if self._result is None:
            raise RuntimeError("this Study has not been run yet; call .run(config)")
        return self._result

    @property
    def points_loaded(self) -> list:
        """Sweep point labels served from the store by the last run."""
        result = self.result
        if isinstance(result, SweepResult):
            return list(result.extras.get("points_loaded", []))
        return []

    @property
    def points_computed(self) -> list:
        """Sweep point labels actually executed by the last run."""
        result = self.result
        if isinstance(result, SweepResult):
            return list(result.extras.get("points_computed", []))
        return []

    def report(self, which: str = "total") -> str:
        """The study's headline table, rendered by :mod:`repro.evaluation.report`.

        For sweep studies: the points × approaches cost matrix
        (``which`` selects the :class:`CostBreakdown` field).  For
        single-scenario studies: the per-approach cost table, or the Table 2
        classical-ML metrics when ``which == "metrics"``.
        """
        result = self.result
        if isinstance(result, SweepResult):
            return result.table(which=which)
        if which == "metrics":
            return format_metrics_table(result.confusions())
        return format_cost_table(
            result.total_costs(),
            title=f"Total cost (node-hours) — {result.scenario_name}",
        )
