"""Versioned ``to_dict`` / ``from_dict`` plumbing for the public dataclasses.

Every config and result dataclass of the public API (``ScenarioConfig``,
``ExperimentConfig``, ``SweepSpec``, ``CostBreakdown``, ``ApproachResult``,
``ExperimentResult``, ``SweepResult`` and their nested pieces) serializes to
a plain-JSON dictionary carrying two envelope fields:

``"schema"``
    The serialization schema version (:data:`SCHEMA_VERSION`).  Readers
    refuse payloads from a *newer* schema — an old library cannot know what
    a future field means — and may migrate older ones explicitly.
``"kind"``
    The payload type tag (e.g. ``"scenario_config"``), so a payload pasted
    into the wrong ``from_dict`` fails with a clear error instead of a
    confusing ``TypeError`` deep inside a constructor.

The generic helpers here cover flat dataclasses whose fields are JSON
scalars or (possibly nested) tuples of them; classes with non-trivial fields
(nested dataclasses, numpy arrays) implement their own ``to_dict`` /
``from_dict`` on top of :func:`tag` / :func:`untag`.

Floats round-trip exactly: ``json`` emits ``repr``-style shortest
representations, which Python parses back to the identical IEEE-754 value —
the golden-vs-store regression tests rely on this.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Mapping, Sequence, Type, TypeVar

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "canonical_json",
    "canonical_json_bytes",
    "simple_from_dict",
    "simple_to_dict",
    "tag",
    "untag",
]

#: Current serialization schema version.  Bump when a persisted layout
#: changes incompatibly, and teach ``untag`` (or the affected ``from_dict``)
#: how to migrate the older payloads.
SCHEMA_VERSION = 1

T = TypeVar("T")


class SchemaError(ValueError):
    """A serialized payload has the wrong kind or an unsupported schema."""


def tag(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap ``payload`` in the versioned envelope."""
    return {"schema": SCHEMA_VERSION, "kind": kind, **payload}


def untag(data: Mapping[str, Any], kind: str) -> Dict[str, Any]:
    """Validate the envelope and return the payload fields.

    Raises :class:`SchemaError` when ``data`` is not a mapping, carries a
    different ``kind`` tag, or was written by a newer schema than this
    library understands.
    """
    if not isinstance(data, Mapping):
        raise SchemaError(f"expected a {kind!r} mapping, got {type(data).__name__}")
    got_kind = data.get("kind")
    if got_kind != kind:
        raise SchemaError(f"expected kind {kind!r}, got {got_kind!r}")
    version = data.get("schema")
    if not isinstance(version, int) or version < 1:
        raise SchemaError(f"{kind!r} payload carries invalid schema {version!r}")
    if version > SCHEMA_VERSION:
        raise SchemaError(
            f"{kind!r} payload uses schema {version}, but this library only "
            f"understands up to {SCHEMA_VERSION}; upgrade the library to read it"
        )
    return {k: v for k, v in data.items() if k not in ("schema", "kind")}


def _jsonify(value: Any) -> Any:
    """Tuples become lists (JSON has no tuple); scalars pass through."""
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    return value


def _tuplify(value: Any) -> Any:
    """Inverse of :func:`_jsonify` for fields declared as tuples."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def simple_to_dict(obj: Any, kind: str) -> Dict[str, Any]:
    """Serialize a flat dataclass (JSON scalars and tuples only)."""
    if not is_dataclass(obj):
        raise TypeError(f"{type(obj).__name__} is not a dataclass")
    payload = {f.name: _jsonify(getattr(obj, f.name)) for f in fields(obj)}
    return tag(kind, payload)


def simple_from_dict(
    cls: Type[T],
    data: Mapping[str, Any],
    kind: str,
    tuple_fields: Sequence[str] = (),
) -> T:
    """Rebuild a flat dataclass serialized by :func:`simple_to_dict`.

    ``tuple_fields`` names the fields whose JSON lists must come back as
    tuples (frozen dataclasses hash their tuple fields).  Unknown payload
    keys are rejected so typos and stale fields surface immediately.
    """
    payload = untag(data, kind)
    known = {f.name for f in fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise SchemaError(
            f"{kind!r} payload has unknown fields {sorted(unknown)!r}"
        )
    kwargs = {
        name: _tuplify(value) if name in tuple_fields else value
        for name, value in payload.items()
    }
    return cls(**kwargs)


def canonical_json(data: Any) -> str:
    """Deterministic JSON used for content keys and byte-compared artifacts."""
    return json.dumps(data, sort_keys=True, indent=2, ensure_ascii=False) + "\n"


def canonical_json_bytes(data: Any) -> bytes:
    """:func:`canonical_json` as UTF-8 bytes — what a
    :class:`~repro.store.backends.StoreBackend` ``put`` takes verbatim, so
    identical payloads written by racing workers are identical byte strings
    (the lease and result families of the distributed sweep rely on this).
    """
    return canonical_json(data).encode("utf-8")
