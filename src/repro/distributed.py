"""Store-coordinated multi-worker sweeps: shard, claim, heartbeat, reduce.

The paper's evaluation is a grid of scenario points (Figures 3/5/7) and the
points are embarrassingly parallel — nothing couples them but the final
table.  This module scales :func:`~repro.evaluation.sweep.run_sweep` past
one machine with **no cluster dependency**: N workers share nothing but an
:class:`~repro.store.ArtifactStore` (any
:class:`~repro.store.backends.StoreBackend` — a directory on a shared
filesystem today, an object-store bucket tomorrow), and all coordination
rides on the store's content keys plus one atomic primitive
(``put_if_absent``).

Two fan-out modes, one invariant:

static sharding (``shard=(i, n)``)
    Worker ``i`` computes every ``n``-th point of the canonical point
    order (:func:`~repro.evaluation.sweep.assign_shard`).  Disjoint by
    construction — no leases needed — but a dead worker's shard stalls the
    sweep until rerun.
work stealing (``claim=True``)
    Workers race over *all* missing points through the lease protocol of
    :mod:`repro.store.leases`: atomically claim a point
    (``put_if_absent`` on its result key's lease), heartbeat while
    computing, publish the result, release.  A worker killed mid-point
    leaves a lease whose heartbeat goes stale; after the TTL any worker
    reclaims it and the point is recomputed.  Load balances itself and
    survives kills.

The invariant: the reduced :class:`~repro.evaluation.sweep.SweepResult` is
**bit-identical** to a single-process ``run_sweep`` of the same spec (with
``charge_training_time=False``, the one intentionally non-deterministic
knob) — every point's numbers come from the same keyed RNG streams no
matter which worker computes it, and each point lands exactly once in the
final result because results live at content keys: even a duplicated
computation (a presumed-dead worker finishing late) writes the identical
bytes to the identical slot.  :func:`results_equivalent` checks the
guarantee, comparing everything but the per-point wall-clock diagnostic.

A typical two-machine session::

    spec = SweepSpec(base=ScenarioConfig.small(), seeds=range(50), ...)
    config = ExperimentConfig.fast().with_overrides(charge_training_time=False)

    # machine A and machine B, same shared store directory:
    run_sweep_worker(spec, config, store, claim=True)

    # either machine afterwards (the last worker auto-reduces anyway):
    result = reduce_sweep(spec, config, store)
    print(result.table())

or from the command line: ``python -m repro sweep ... --store DIR --claim``
on each machine, then ``--status`` / ``--reduce`` anywhere.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.evaluation.experiment import run_experiment
from repro.evaluation.pipeline import (
    ExperimentConfig,
    ExperimentResult,
    PreparedDataCache,
)
from repro.evaluation.sweep import SweepResult, SweepSpec, assign_shard, run_sweep
from repro.serialization import canonical_json
from repro.store import ArtifactStore, Lease, LeaseLost, LeaseManager

__all__ = [
    "DEFAULT_POLL_SECONDS",
    "PointStatus",
    "WorkerOutcome",
    "reduce_sweep",
    "results_equivalent",
    "run_sweep_worker",
    "sweep_scientific_json",
    "sweep_status",
]

#: How long a waiting claim worker sleeps between passes over the points
#: when everything left is leased to still-live peers.
DEFAULT_POLL_SECONDS = 0.5


# --------------------------------------------------------------------- #
# Outcome / status containers
# --------------------------------------------------------------------- #
@dataclass
class WorkerOutcome:
    """What one :func:`run_sweep_worker` invocation did."""

    #: This worker's identity (lease owner in claim mode).
    worker_id: str
    #: Point labels this worker computed and published.
    computed: List[str] = field(default_factory=list)
    #: Point labels whose results the store already held.
    loaded: List[str] = field(default_factory=list)
    #: Point labels still without a result when the worker returned
    #: (only possible with ``wait=False`` or in shard mode).
    pending: List[str] = field(default_factory=list)
    #: Claim attempts lost to a live lease held by another worker.
    conflicts: int = 0
    #: Claims that evicted an expired lease first (reclaimed dead work).
    reclaims: int = 0
    #: Heartbeats sent while computing.
    heartbeats: int = 0
    #: Whether this worker observed the sweep complete and recorded (or
    #: refreshed) the manifest.
    reduced: bool = False
    #: The reduced sweep, when ``reduced`` (and reducing was requested).
    result: Optional[SweepResult] = None
    wallclock_seconds: float = 0.0

    def summary(self) -> str:
        """One status line per worker, for logs and the CLI."""
        parts = [
            f"worker {self.worker_id}:",
            f"{len(self.computed)} computed,",
            f"{len(self.loaded)} loaded,",
            f"{len(self.pending)} pending,",
            f"{self.conflicts} conflicts,",
            f"{self.reclaims} reclaimed",
        ]
        if self.reduced:
            parts.append("(reduced)")
        return " ".join(parts)


@dataclass(frozen=True)
class PointStatus:
    """Per-point progress of a distributed sweep (``repro sweep --status``)."""

    label: str
    #: ``"done"`` (result stored), ``"leased"`` (a worker is computing it)
    #: or ``"pending"`` (unclaimed and uncomputed).
    state: str
    result_key: str
    #: Lease owner when ``state == "leased"``.
    owner: str = ""
    #: Seconds since the owner's last heartbeat (leased points only).
    heartbeat_age: Optional[float] = None
    #: Whether the lease has outlived its TTL (reclaimable dead work).
    expired: bool = False

    def describe(self) -> str:
        if self.state == "leased":
            flag = " EXPIRED" if self.expired else ""
            return (
                f"{self.label}: leased by {self.owner} "
                f"(heartbeat {self.heartbeat_age:.1f}s ago{flag})"
            )
        return f"{self.label}: {self.state}"


# --------------------------------------------------------------------- #
# Heartbeats
# --------------------------------------------------------------------- #
class _HeartbeatPump:
    """Background thread renewing the worker's active lease.

    ``beat()`` failures are tolerated: losing a lease (another worker
    presumed us dead and reclaimed the point) must not kill the
    computation — the result write is idempotent — it only stops further
    heartbeats on that lease.
    """

    def __init__(self, manager: LeaseManager, interval: float) -> None:
        self.manager = manager
        self.interval = interval
        self.beats = 0
        self.lost = 0
        self._lease: Optional[Lease] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_HeartbeatPump":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(1.0, 2 * self.interval))

    def watch(self, lease: Optional[Lease]) -> None:
        with self._lock:
            self._lease = lease

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            with self._lock:
                lease = self._lease
            if lease is None:
                continue
            try:
                renewed = self.manager.renew(lease)
            except LeaseLost:
                self.lost += 1
                self.watch(None)
            except Exception:
                # A transient backend hiccup: skip this beat, try again.
                continue
            else:
                self.beats += 1
                self.watch(renewed)


# --------------------------------------------------------------------- #
# The worker
# --------------------------------------------------------------------- #
def _point_jobs(
    spec: SweepSpec, config: ExperimentConfig, store: ArtifactStore
) -> List[Tuple[Any, str, str]]:
    """Every point with its result and prepared-data content keys."""
    return [
        (
            point,
            store.result_key(point.scenario, config),
            store.prepared_key(point.scenario, config),
        )
        for point in spec.points()
    ]


def run_sweep_worker(
    spec: SweepSpec,
    config: Optional[ExperimentConfig] = None,
    store: Optional[ArtifactStore] = None,
    *,
    shard: Optional[Tuple[int, int]] = None,
    claim: bool = False,
    worker_id: Optional[str] = None,
    lease_ttl: Optional[float] = None,
    heartbeat_interval: Optional[float] = None,
    wait: Optional[bool] = None,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    cache: Optional[PreparedDataCache] = None,
    reduce: bool = True,
    compute_fn: Optional[Callable[..., ExperimentResult]] = None,
) -> WorkerOutcome:
    """Run one worker of a distributed sweep against a shared store.

    Exactly one of ``shard=(i, n)`` (static partition, no leases) or
    ``claim=True`` (dynamic work stealing through the lease protocol) must
    be chosen.  Completed points are always skipped via the store's resume
    path; every computed point's result is written through; and whichever
    worker observes the last point land assembles the sweep manifest
    (``reduce=False`` suppresses that, for an explicit reducer step).

    In claim mode the worker heartbeats its active lease every
    ``heartbeat_interval`` seconds (default: ``lease_ttl / 4``) from a
    background thread, and — with ``wait`` (the claim-mode default) —
    keeps polling until *every* point has a result, reclaiming leases
    whose owners die along the way, so a fleet of claim workers finishes
    the sweep even when some of them are killed.  ``wait=False`` returns
    after one pass, leaving still-leased points to their owners.

    ``compute_fn(scenario, config, cache)`` substitutes the per-point
    computation (default: :func:`~repro.evaluation.experiment.run_experiment`)
    — a test hook for exercising the coordination protocol without
    training anything.

    Returns a :class:`WorkerOutcome`; the claim metrics in it are what the
    exactly-once tests assert (summed over workers: ``computed`` counts
    partition the points, every conflict names a point someone else won).
    """
    if store is None:
        raise ValueError("run_sweep_worker needs a shared ArtifactStore")
    if (shard is None) == (not claim):
        raise ValueError(
            "choose exactly one fan-out mode: shard=(i, n) or claim=True"
        )
    config = config or ExperimentConfig()
    cache = cache if cache is not None else PreparedDataCache(spill=store)
    compute = compute_fn or (
        lambda scenario, cfg, shared_cache: run_experiment(
            scenario, cfg, cache=shared_cache
        )
    )
    started = time.perf_counter()

    if shard is not None:
        outcome = _run_shard_worker(
            spec, config, store, shard, cache, worker_id, compute_fn
        )
    else:
        outcome = _run_claim_worker(
            spec,
            config,
            store,
            compute,
            cache,
            worker_id=worker_id,
            lease_ttl=lease_ttl,
            heartbeat_interval=heartbeat_interval,
            wait=True if wait is None else wait,
            poll_seconds=poll_seconds,
        )

    if reduce and not outcome.pending:
        outcome.result = reduce_sweep(spec, config, store)
        outcome.reduced = outcome.result is not None
    outcome.wallclock_seconds = time.perf_counter() - started
    return outcome


def _run_shard_worker(
    spec: SweepSpec,
    config: ExperimentConfig,
    store: ArtifactStore,
    shard: Tuple[int, int],
    cache: PreparedDataCache,
    worker_id: Optional[str],
    compute_fn: Optional[Callable[..., ExperimentResult]],
) -> WorkerOutcome:
    """Static mode: delegate to the sweep engine's shard-aware resume path."""
    outcome = WorkerOutcome(worker_id=worker_id or f"shard-{shard[0]}/{shard[1]}")
    if compute_fn is None:
        result = run_sweep(spec, config, cache=cache, store=store, shard=shard)
        outcome.computed = list(result.extras.get("points_computed", []))
        outcome.loaded = list(result.extras.get("points_loaded", []))
        outcome.pending = list(result.extras.get("points_pending", []))
        return outcome
    # Test hook: per-point loop instead of the joint task graph.
    mine = {p.label for p in assign_shard(spec.points(), shard[0], shard[1])}
    for point, result_key, _prepared in _point_jobs(spec, config, store):
        if store.has_result_key(result_key):
            outcome.loaded.append(point.label)
        elif point.label in mine:
            result = compute_fn(point.scenario, config, cache)
            store.save_result(point.scenario, config, result)
            outcome.computed.append(point.label)
        else:
            outcome.pending.append(point.label)
    return outcome


def _run_claim_worker(
    spec: SweepSpec,
    config: ExperimentConfig,
    store: ArtifactStore,
    compute: Callable[..., ExperimentResult],
    cache: PreparedDataCache,
    *,
    worker_id: Optional[str],
    lease_ttl: Optional[float],
    heartbeat_interval: Optional[float],
    wait: bool,
    poll_seconds: float,
) -> WorkerOutcome:
    """Dynamic mode: the claim → heartbeat → compute → publish loop."""
    manager = store.lease_manager(owner=worker_id, ttl_seconds=lease_ttl)
    interval = (
        heartbeat_interval
        if heartbeat_interval is not None
        else manager.ttl_seconds / 4.0
    )
    outcome = WorkerOutcome(worker_id=manager.owner)
    jobs = _point_jobs(spec, config, store)
    done: set = set()

    with _HeartbeatPump(manager, interval) as pump:
        while True:
            for point, result_key, prepared_key in jobs:
                if result_key in done:
                    continue
                if store.has_result_key(result_key):
                    done.add(result_key)
                    outcome.loaded.append(point.label)
                    continue
                lease = manager.claim(
                    result_key, label=point.label, prepared_key=prepared_key
                )
                if lease is None:
                    continue  # live lease elsewhere; revisit next pass
                pump.watch(lease)
                try:
                    result = compute(point.scenario, config, cache)
                    store.save_result(point.scenario, config, result)
                finally:
                    pump.watch(None)
                    manager.release(lease)
                done.add(result_key)
                outcome.computed.append(point.label)
            # Leased-elsewhere points whose results landed since our pass
            # count as loaded right here; only truly unfinished ones block.
            blocked: List[str] = []
            for point, result_key, _prepared in jobs:
                if result_key in done:
                    continue
                if store.has_result_key(result_key):
                    done.add(result_key)
                    outcome.loaded.append(point.label)
                else:
                    blocked.append(point.label)
            if not blocked:
                break
            if not wait:
                outcome.pending = blocked
                break
            time.sleep(poll_seconds)

    outcome.conflicts = manager.conflicts
    outcome.reclaims = manager.reclaims
    outcome.heartbeats = pump.beats
    return outcome


# --------------------------------------------------------------------- #
# Reduce and status
# --------------------------------------------------------------------- #
def reduce_sweep(
    spec: SweepSpec,
    config: Optional[ExperimentConfig] = None,
    store: Optional[ArtifactStore] = None,
) -> Optional[SweepResult]:
    """Assemble the :class:`SweepResult` from the workers' stored points.

    Returns ``None`` while any point's result is still missing.  On
    success the sweep manifest is recorded (idempotently — racing reducers
    write identical bytes), after which ``python -m repro report`` and
    :meth:`ArtifactStore.load_sweep_by_key` see the finished sweep.
    """
    if store is None:
        raise ValueError("reduce_sweep needs the shared ArtifactStore")
    config = config or ExperimentConfig()
    points = spec.points()
    results: Dict[str, ExperimentResult] = {}
    for point in points:
        result = store.load_result(point.scenario, config)
        if result is None:
            return None
        results[point.label] = result
    reduced = SweepResult(
        spec=spec,
        points=points,
        results=results,
        wallclock_seconds=0.0,
        extras={
            "points_loaded": [point.label for point in points],
            "points_computed": [],
            "points_pending": [],
        },
    )
    store.save_sweep(spec, config, reduced)
    return reduced


def sweep_status(
    spec: SweepSpec,
    config: Optional[ExperimentConfig] = None,
    store: Optional[ArtifactStore] = None,
) -> List[PointStatus]:
    """Per-point progress: done / leased-by-whom / pending.

    The store is the single source of truth, so this is safe to call from
    anywhere — a worker, the reducer, or an operator's shell — while the
    sweep runs.
    """
    if store is None:
        raise ValueError("sweep_status needs the shared ArtifactStore")
    config = config or ExperimentConfig()
    manager = store.lease_manager()
    statuses: List[PointStatus] = []
    for point, result_key, _prepared in _point_jobs(spec, config, store):
        if store.has_result_key(result_key):
            statuses.append(
                PointStatus(label=point.label, state="done", result_key=result_key)
            )
            continue
        lease = manager.load(result_key)
        if lease is not None:
            statuses.append(
                PointStatus(
                    label=point.label,
                    state="leased",
                    result_key=result_key,
                    owner=lease.owner,
                    heartbeat_age=lease.age(),
                    expired=lease.expired(),
                )
            )
        else:
            statuses.append(
                PointStatus(
                    label=point.label, state="pending", result_key=result_key
                )
            )
    return statuses


# --------------------------------------------------------------------- #
# Equivalence
# --------------------------------------------------------------------- #
def sweep_scientific_json(result: SweepResult) -> str:
    """Canonical JSON of a sweep's *scientific* payload.

    Identical to :meth:`SweepResult.to_json` except that each point's
    ``wallclock_seconds`` — a diagnostic of whichever process happened to
    compute the point, never an input to any number — is zeroed, so two
    runs of the same deterministic sweep (single-process and N-worker,
    ``charge_training_time=False``) compare byte-for-byte equal.
    """
    payload = result.to_dict()
    for point_payload in payload["results"].values():
        point_payload["wallclock_seconds"] = 0.0
    return canonical_json(payload)


def results_equivalent(a: SweepResult, b: SweepResult) -> bool:
    """Whether two sweeps carry bit-identical scientific results."""
    return sweep_scientific_json(a) == sweep_scientific_json(b)
