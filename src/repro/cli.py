"""``python -m repro`` — run, sweep, report, list and gc from the command line.

Five subcommands over the :class:`~repro.study.Study` facade and the
:class:`~repro.store.ArtifactStore`:

``run``
    One experiment on a preset scenario, axis flags applied::

        python -m repro run --preset small --mitigation-cost 5 \\
            --restartable off --fast --store runs/

``sweep``
    A grid over the paper's axes; comma-separated flag values become sweep
    axes (``--restartable both`` is shorthand for ``on,off``)::

        python -m repro sweep --mitigation-cost 2,5,10 --restartable both \\
            --store runs/

    With ``--store``, completed points load from disk and the run reports
    how many points it actually computed — re-running a finished sweep
    prints ``points computed: 0``.

``report``
    Render a stored sweep's points × approaches table without recomputing
    anything: ``python -m repro report --store runs/``.

``list``
    Inventory of a store: sweeps, experiment results, prepared products.

``gc``
    Prune ``prepared/`` products no stored sweep or result references
    (``--dry-run`` reports the freeable bytes without deleting): long-lived
    stores otherwise keep every spilled product forever.

``run`` and ``sweep`` additionally accept ``--profile``: each pipeline
stage runs under cProfile, the raw stats are merged across stages
(``pstats.Stats.add``) and ONE top-cumulative-time table is printed after
the report (per-stage tables plus the merged ``"total"`` entry are
surfaced as ``result.extras["profile"]`` in the API).  The profile covers
whatever the driver process executes — including the compiled decision
kernels when ``--compiled`` is active, whose numba dispatchers are
attributed like any other callable.

Every table is rendered by :mod:`repro.evaluation.report` — the CLI prints
exactly what the library's ``format_*`` helpers produce.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.config import ScenarioConfig
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.pipeline import ExperimentConfig
from repro.evaluation.report import format_cost_table, format_metrics_table
from repro.evaluation.sweep import SweepSpec
from repro.store import ArtifactStore
from repro.study import Study
from repro.telemetry.records import MANUFACTURER_NAMES
from repro.utils.profiling import format_profile
from repro.utils.timeutils import DAY

__all__ = ["main", "build_parser"]

PRESETS = ("small", "benchmark", "paper")


# --------------------------------------------------------------------- #
# Flag value parsing
# --------------------------------------------------------------------- #
def _parse_floats(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}")


def _parse_ints(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")


def _parse_restartable(text: str) -> List[bool]:
    """``on`` / ``off`` / ``both`` / any comma combination thereof."""
    if text == "both":
        return [True, False]
    values: List[bool] = []
    for part in text.split(","):
        if part == "on":
            values.append(True)
        elif part == "off":
            values.append(False)
        else:
            raise argparse.ArgumentTypeError(
                f"restartable values are 'on', 'off' or 'both', got {part!r}"
            )
    return values


def _parse_manufacturers(text: str) -> List[Optional[int]]:
    """``all`` (whole fleet), a manufacturer letter, or an index."""
    values: List[Optional[int]] = []
    for part in text.split(","):
        if part == "all":
            values.append(None)
        elif part.upper() in MANUFACTURER_NAMES:
            values.append(MANUFACTURER_NAMES.index(part.upper()))
        elif part.isdigit():
            values.append(int(part))
        else:
            raise argparse.ArgumentTypeError(
                f"manufacturer values are 'all', one of "
                f"{'/'.join(MANUFACTURER_NAMES)}, or an index; got {part!r}"
            )
    return values


def _single(values, flag: str):
    if values is None:
        return None
    if len(values) != 1:
        raise SystemExit(
            f"error: `run` takes exactly one value for {flag} "
            f"(got {len(values)}); use the `sweep` subcommand for grids"
        )
    return values[0]


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #
def _add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=PRESETS,
        default="small",
        help="base ScenarioConfig preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=None, help="root scenario seed")
    parser.add_argument(
        "--duration-days",
        type=float,
        default=None,
        help="override the simulated production period, in days",
    )


def _add_experiment_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use ExperimentConfig.fast() instead of the default schedule",
    )
    parser.add_argument(
        "--episodes", type=int, default=None, help="RL episodes per split"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="parallel (split x group) tasks"
    )
    parser.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default=None,
        help="executor backend",
    )
    parser.add_argument(
        "--rl-trial-tasks",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="run each split's RL hyperparameter trials as independent "
        "executor tasks (default: on; --no-rl-trial-tasks restores the "
        "in-task trial loop — results are identical, only the schedule "
        "changes)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="ArtifactStore directory: load completed work, persist the rest",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each pipeline stage under cProfile and print one merged "
        "top-cumulative-time table after the report (covers the compiled "
        "kernels when --compiled is active)",
    )
    parser.add_argument(
        "--compiled",
        action="store_true",
        help="dispatch the decision core's hottest loops to numba-compiled "
        "kernels (results identical; falls back to numpy with a warning "
        "when numba is not installed)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DRAM error-mitigation study runner (HPDC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment")
    _add_scenario_flags(run)
    run.add_argument("--mitigation-cost", type=_parse_floats, default=None,
                     metavar="NODE_MINUTES")
    run.add_argument("--restartable", type=_parse_restartable, default=None,
                     metavar="on|off")
    run.add_argument("--manufacturer", type=_parse_manufacturers, default=None,
                     metavar="all|A|B|C")
    run.add_argument("--job-scale", type=_parse_floats, default=None, metavar="FACTOR")
    _add_experiment_flags(run)
    run.add_argument("--metrics", action="store_true",
                     help="also print the Table 2 classical-ML metrics")

    sweep = sub.add_parser("sweep", help="run a grid over the paper's axes")
    _add_scenario_flags(sweep)
    sweep.add_argument("--mitigation-cost", type=_parse_floats, default=None,
                       metavar="2,5,10")
    sweep.add_argument("--restartable", type=_parse_restartable, default=None,
                       metavar="on|off|both")
    sweep.add_argument("--manufacturer", type=_parse_manufacturers, default=None,
                       metavar="all,A,B,C")
    sweep.add_argument("--job-scale", type=_parse_floats, default=None,
                       metavar="0.1,1,10")
    sweep.add_argument("--seeds", type=_parse_ints, default=None, metavar="1,2,3")
    _add_experiment_flags(sweep)
    sweep.add_argument("--which", default="total",
                       choices=CostBreakdown.series_fields(),
                       help="cost series shown in the table (default: total)")

    report = sub.add_parser("report", help="render a stored sweep without recomputing")
    report.add_argument("--store", metavar="DIR", required=True)
    report.add_argument("--sweep", metavar="KEY", default=None,
                        help="sweep manifest key (defaults to the only stored sweep)")
    report.add_argument("--which", default="total",
                        choices=CostBreakdown.series_fields(),
                        help="cost series shown in the table (default: total)")

    listing = sub.add_parser("list", help="inventory of a store")
    listing.add_argument("--store", metavar="DIR", required=True)

    gc = sub.add_parser(
        "gc",
        help="prune prepared artifacts not referenced by any stored sweep "
        "or result",
    )
    gc.add_argument("--store", metavar="DIR", required=True)
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be pruned (and how many bytes it would "
        "free) without deleting anything",
    )
    gc.add_argument(
        "--grace-minutes",
        type=float,
        default=60.0,
        help="keep products modified within this window, so a sweep "
        "currently spilling to the store is never raced (default: 60)",
    )

    return parser


# --------------------------------------------------------------------- #
# Argument -> object assembly
# --------------------------------------------------------------------- #
def _scenario_from_args(args) -> ScenarioConfig:
    scenario = getattr(ScenarioConfig, args.preset)()
    if args.seed is not None:
        scenario = scenario.with_seed(args.seed)
    if args.duration_days is not None:
        scenario = scenario.with_duration(args.duration_days * DAY)
    return scenario


def _config_from_args(args) -> ExperimentConfig:
    config = ExperimentConfig.fast() if args.fast else ExperimentConfig()
    overrides = {}
    if args.episodes is not None:
        overrides["rl_episodes"] = args.episodes
    if args.workers is not None:
        overrides["n_workers"] = args.workers
    if args.executor is not None:
        overrides["executor_kind"] = args.executor
    if args.rl_trial_tasks is not None:
        overrides["rl_trial_tasks"] = args.rl_trial_tasks
    if args.profile:
        overrides["profile"] = True
    if args.compiled:
        overrides["compiled"] = True
    return config.with_overrides(**overrides) if overrides else config


def _print_profile(extras) -> None:
    """Print the stage profile collected by ``--profile`` (if any)."""
    report = (extras or {}).get("profile")
    if report:
        print()
        print(format_profile(report))


def _executor_summary(stats) -> Optional[str]:
    """One-line executor timing report (``None`` without recorded stats).

    The critical path is the heaviest dependency chain of the task graph —
    the wall-clock lower bound at any worker count — so comparing it with
    the serial-equivalent total shows how much the RL trial fan-out (or a
    bigger ``--workers``) can still buy.
    """
    if stats is None or not stats.task_seconds:
        return None
    return (
        f"executor: {len(stats.task_seconds)} tasks, "
        f"{stats.total_task_seconds:.1f}s total work, "
        f"critical path {stats.critical_path_seconds:.1f}s "
        f"({len(stats.critical_path)} chained tasks)"
    )


def _store_from_args(args) -> Optional[ArtifactStore]:
    return None if args.store is None else ArtifactStore(args.store)


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #
def _cmd_run(args) -> int:
    scenario = _scenario_from_args(args)
    cost = _single(args.mitigation_cost, "--mitigation-cost")
    if cost is not None:
        scenario = scenario.with_mitigation_cost(cost)
    restartable = _single(args.restartable, "--restartable")
    if restartable is not None:
        scenario = scenario.with_restartable(restartable)
    if args.manufacturer is not None:
        scenario = scenario.with_manufacturer(
            _single(args.manufacturer, "--manufacturer")
        )
    scale = _single(args.job_scale, "--job-scale")
    if scale is not None:
        scenario = scenario.with_job_scale(scale)

    study = Study.from_scenario(scenario, store=_store_from_args(args))
    result = study.run(_config_from_args(args))
    print(study.report())
    summary = _executor_summary(result.executor_stats)
    if summary is not None:
        print()
        print(summary)
    if args.metrics:
        print()
        print(study.report(which="metrics"))
    _print_profile(result.extras)
    return 0


def _cmd_sweep(args) -> int:
    def axis(values):
        return None if values is None else tuple(values)

    spec = SweepSpec(
        base=_scenario_from_args(args),
        mitigation_costs=axis(args.mitigation_cost),
        restartable=axis(args.restartable),
        manufacturers=axis(args.manufacturer),
        job_scales=axis(args.job_scale),
        seeds=axis(args.seeds),
    )
    store = _store_from_args(args)
    study = Study.from_sweep(spec, store=store)
    result = study.run(_config_from_args(args))
    print(result.table(which=args.which))
    print()
    print(f"wallclock: {result.wallclock_seconds:.1f}s, "
          f"prepare_data calls: {result.prepare_calls} for {len(result)} point(s)")
    summary = _executor_summary(result.extras.get("executor_stats"))
    if summary is not None:
        print(summary)
    if store is not None:
        loaded = study.points_loaded
        print(f"store: {store.root} (sweep {store.sweep_key(spec, study.config)})")
        print(f"points loaded from store: {len(loaded)}")
        print(f"points computed: {len(study.points_computed)}")
    _print_profile(result.extras)
    return 0


def _pick_sweep_key(store: ArtifactStore, requested: Optional[str]) -> Optional[str]:
    if requested is not None:
        return requested
    sweeps = store.list_sweeps()
    if len(sweeps) == 1:
        return sweeps[0]["key"]
    if not sweeps:
        print("error: the store holds no sweeps", file=sys.stderr)
        return None
    print(
        "error: the store holds several sweeps; pick one with --sweep KEY:",
        file=sys.stderr,
    )
    for entry in sweeps:
        print(
            f"  {entry['key']}  base={entry['base_scenario']}  "
            f"points={len(entry['labels'])}",
            file=sys.stderr,
        )
    return None


def _cmd_report(args) -> int:
    store = ArtifactStore(args.store)
    key = _pick_sweep_key(store, args.sweep)
    if key is None:
        return 2
    result = store.load_sweep_by_key(key)
    if result is None:
        print(f"error: no stored sweep with key {key!r}", file=sys.stderr)
        return 2
    print(result.table(which=args.which, title=f"Sweep {key} — {args.which} cost"))
    return 0


def _cmd_list(args) -> int:
    store = ArtifactStore(args.store)
    sweeps = store.list_sweeps()
    results = store.list_results()
    prepared = store.list_prepared()
    print(f"store: {store.root}")
    print(f"sweeps ({len(sweeps)}):")
    for entry in sweeps:
        labels = ", ".join(entry["labels"])
        print(f"  {entry['key']}  base={entry['base_scenario']}  points: {labels}")
    print(f"results ({len(results)}):")
    for entry in results:
        print(
            f"  {entry['key']}  scenario={entry['scenario']} seed={entry['seed']} "
            f"cost={entry['mitigation_cost_node_minutes']:g} "
            f"approaches={len(entry['approaches'])}"
        )
    print(f"prepared ({len(prepared)}):")
    for key in prepared:
        print(f"  {key}")
    return 0


def _cmd_gc(args) -> int:
    store = ArtifactStore(args.store)
    report = store.gc(
        dry_run=args.dry_run, grace_seconds=args.grace_minutes * 60.0
    )
    verb = "would remove" if report.dry_run else "removed"
    print(f"store: {store.root}")
    for key in report.removed:
        print(f"  {verb}: prepared/{key}")
    megabytes = report.freed_bytes / (1024 * 1024)
    print(
        f"{verb} {len(report.removed)} unreferenced prepared product(s), "
        f"freeing {report.freed_bytes} bytes ({megabytes:.1f} MiB); "
        f"{len(report.kept)} referenced product(s) kept"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    args = build_parser().parse_args(argv)
    commands = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "list": _cmd_list,
        "gc": _cmd_gc,
    }
    return commands[args.command](args)
