"""``python -m repro`` — run, sweep, report, list and gc from the command line.

Five subcommands over the :class:`~repro.study.Study` facade and the
:class:`~repro.store.ArtifactStore`:

``run``
    One experiment on a preset scenario, axis flags applied::

        python -m repro run --preset small --mitigation-cost 5 \\
            --restartable off --fast --store runs/

``sweep``
    A grid over the paper's axes; comma-separated flag values become sweep
    axes (``--restartable both`` is shorthand for ``on,off``)::

        python -m repro sweep --mitigation-cost 2,5,10 --restartable both \\
            --store runs/

    With ``--store``, completed points load from disk and the run reports
    how many points it actually computed — re-running a finished sweep
    prints ``points computed: 0``.

    A sweep also scales across processes and machines that share nothing
    but the store directory (see :mod:`repro.distributed`)::

        python -m repro sweep ... --store runs/ --shard 0/4   # worker 0 of 4
        python -m repro sweep ... --store runs/ --claim       # work stealing
        python -m repro sweep ... --store runs/ --status      # who's doing what
        python -m repro sweep ... --store runs/ --reduce      # assemble manifest

    ``--shard i/N`` statically partitions the points; ``--claim`` workers
    race over all missing points through atomic store leases, heartbeat
    while computing, and reclaim the points of workers that die.  Either
    way the reduced sweep is bit-identical to a single-process run (with
    ``charge_training_time=False``).

``report``
    Render a stored sweep's points × approaches table without recomputing
    anything: ``python -m repro report --store runs/``.

``list``
    Inventory of a store: sweeps, experiment results, prepared products.

``gc``
    Prune ``prepared/`` products no stored sweep or result references
    (``--dry-run`` reports the freeable bytes without deleting): long-lived
    stores otherwise keep every spilled product forever.

``serve``
    The online micro-batched decision service (see :mod:`repro.serve`):
    tail an mcelog file — or replay a synthetic preset stream, optionally
    paced at a multiple of real time — through a mitigation policy, one
    batched model call per tick::

        python -m repro serve --source preset:small --policy sc20
        python -m repro serve --source /var/log/mcelog.events --policy always \\
            --follow --decision-log decisions.jsonl
        python -m repro serve --source preset:small --policy rl \\
            --replay-at-speed 100000   # storm mode: 100000x real time

    Trained policies (``sc20``, ``myopic``, ``rl``) are fitted on the first
    ``--train-fraction`` of a preset stream (on the file's current contents
    for file sources) and serve the remainder; decisions are bit-identical
    to an offline ``evaluate_policy`` replay of the same events.

``run`` and ``sweep`` additionally accept ``--profile``: each pipeline
stage runs under cProfile, the raw stats are merged across stages
(``pstats.Stats.add``) and ONE top-cumulative-time table is printed after
the report (per-stage tables plus the merged ``"total"`` entry are
surfaced as ``result.extras["profile"]`` in the API).  The profile covers
whatever the driver process executes — including the compiled decision
kernels when ``--compiled`` is active, whose numba dispatchers are
attributed like any other callable.

Every table is rendered by :mod:`repro.evaluation.report` — the CLI prints
exactly what the library's ``format_*`` helpers produce.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.config import ScenarioConfig
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.pipeline import ExperimentConfig
from repro.evaluation.report import format_cost_table, format_metrics_table
from repro.evaluation.sweep import SweepSpec
from repro.store import ArtifactStore
from repro.study import Study
from repro.telemetry.records import MANUFACTURER_NAMES
from repro.utils.profiling import format_profile
from repro.utils.timeutils import DAY

__all__ = ["main", "build_parser"]

PRESETS = ("small", "benchmark", "paper")


# --------------------------------------------------------------------- #
# Flag value parsing
# --------------------------------------------------------------------- #
def _parse_floats(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}")


def _parse_ints(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")


def _parse_restartable(text: str) -> List[bool]:
    """``on`` / ``off`` / ``both`` / any comma combination thereof."""
    if text == "both":
        return [True, False]
    values: List[bool] = []
    for part in text.split(","):
        if part == "on":
            values.append(True)
        elif part == "off":
            values.append(False)
        else:
            raise argparse.ArgumentTypeError(
                f"restartable values are 'on', 'off' or 'both', got {part!r}"
            )
    return values


def _parse_manufacturers(text: str) -> List[Optional[int]]:
    """``all`` (whole fleet), a manufacturer letter, or an index."""
    values: List[Optional[int]] = []
    for part in text.split(","):
        if part == "all":
            values.append(None)
        elif part.upper() in MANUFACTURER_NAMES:
            values.append(MANUFACTURER_NAMES.index(part.upper()))
        elif part.isdigit():
            values.append(int(part))
        else:
            raise argparse.ArgumentTypeError(
                f"manufacturer values are 'all', one of "
                f"{'/'.join(MANUFACTURER_NAMES)}, or an index; got {part!r}"
            )
    return values


def _parse_shard(text: str):
    """``I/N`` — this process is worker I of an N-way static partition."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected I/N (e.g. 0/4), got {text!r}"
        )
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 0 <= I < N, got {text!r}"
        )
    return (index, count)


def _single(values, flag: str):
    if values is None:
        return None
    if len(values) != 1:
        raise SystemExit(
            f"error: `run` takes exactly one value for {flag} "
            f"(got {len(values)}); use the `sweep` subcommand for grids"
        )
    return values[0]


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #
def _add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=PRESETS,
        default="small",
        help="base ScenarioConfig preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=None, help="root scenario seed")
    parser.add_argument(
        "--duration-days",
        type=float,
        default=None,
        help="override the simulated production period, in days",
    )


def _add_experiment_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use ExperimentConfig.fast() instead of the default schedule",
    )
    parser.add_argument(
        "--episodes", type=int, default=None, help="RL episodes per split"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="parallel (split x group) tasks"
    )
    parser.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default=None,
        help="executor backend",
    )
    parser.add_argument(
        "--rl-trial-tasks",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="run each split's RL hyperparameter trials as independent "
        "executor tasks (default: on; --no-rl-trial-tasks restores the "
        "in-task trial loop — results are identical, only the schedule "
        "changes — but is deprecated and emits a DeprecationWarning)",
    )
    parser.add_argument(
        "--charge-training-time",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="charge measured wall-clock training time to the mitigation "
        "costs (default: on; --no-charge-training-time makes results fully "
        "deterministic — required for bit-identical distributed sweeps)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="ArtifactStore directory: load completed work, persist the rest",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each pipeline stage under cProfile and print one merged "
        "top-cumulative-time table after the report (covers the compiled "
        "kernels when --compiled is active)",
    )
    parser.add_argument(
        "--compiled",
        action="store_true",
        help="dispatch the decision core's hottest loops to numba-compiled "
        "kernels (results identical; falls back to numpy with a warning "
        "when numba is not installed)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DRAM error-mitigation study runner (HPDC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment")
    _add_scenario_flags(run)
    run.add_argument("--mitigation-cost", type=_parse_floats, default=None,
                     metavar="NODE_MINUTES")
    run.add_argument("--restartable", type=_parse_restartable, default=None,
                     metavar="on|off")
    run.add_argument("--manufacturer", type=_parse_manufacturers, default=None,
                     metavar="all|A|B|C")
    run.add_argument("--job-scale", type=_parse_floats, default=None, metavar="FACTOR")
    _add_experiment_flags(run)
    run.add_argument("--metrics", action="store_true",
                     help="also print the Table 2 classical-ML metrics")

    sweep = sub.add_parser("sweep", help="run a grid over the paper's axes")
    _add_scenario_flags(sweep)
    sweep.add_argument("--mitigation-cost", type=_parse_floats, default=None,
                       metavar="2,5,10")
    sweep.add_argument("--restartable", type=_parse_restartable, default=None,
                       metavar="on|off|both")
    sweep.add_argument("--manufacturer", type=_parse_manufacturers, default=None,
                       metavar="all,A,B,C")
    sweep.add_argument("--job-scale", type=_parse_floats, default=None,
                       metavar="0.1,1,10")
    sweep.add_argument("--seeds", type=_parse_ints, default=None, metavar="1,2,3")
    _add_experiment_flags(sweep)
    sweep.add_argument("--which", default="total",
                       choices=CostBreakdown.series_fields(),
                       help="cost series shown in the table (default: total)")
    distributed = sweep.add_argument_group(
        "distributed execution",
        "multi-worker sweeps coordinated through a shared --store "
        "(see repro.distributed); --shard/--claim/--status/--reduce are "
        "mutually exclusive and all require --store",
    )
    distributed.add_argument(
        "--shard",
        type=_parse_shard,
        default=None,
        metavar="I/N",
        help="compute only worker I's share of an N-way static partition "
        "of the points (e.g. --shard 0/4 ... --shard 3/4, one per process)",
    )
    distributed.add_argument(
        "--claim",
        action="store_true",
        help="dynamic work stealing: claim missing points through atomic "
        "store leases, heartbeat while computing, reclaim dead workers' "
        "points after their lease TTL; waits until the whole sweep is done",
    )
    distributed.add_argument(
        "--worker-id",
        default=None,
        metavar="NAME",
        help="this worker's identity in leases and status output "
        "(default: host:pid:nonce)",
    )
    distributed.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat staleness after which other workers may reclaim "
        "this worker's leased points (default: 120)",
    )
    distributed.add_argument(
        "--status",
        action="store_true",
        help="print each point's state (done / leased by whom, heartbeat "
        "age / pending) and exit without computing anything",
    )
    distributed.add_argument(
        "--reduce",
        action="store_true",
        help="assemble and store the sweep manifest from already-computed "
        "points and print the table; fails if any point is still missing",
    )

    suite = sub.add_parser(
        "suite",
        help="run a declarative scenario suite from a YAML file",
        description="Compile every scenario block of SUITE.yaml into a "
        "SweepSpec and run it through the ordinary sweep engine, so suite "
        "results are bit-identical to the equivalent direct sweeps.",
    )
    suite.add_argument("suite_file", metavar="SUITE.yaml")
    suite.add_argument(
        "--validate",
        action="store_true",
        help="parse and schema-check the suite, print its plan, execute "
        "nothing; exits non-zero on any schema error",
    )
    suite.add_argument(
        "--only",
        metavar="BLOCK",
        default=None,
        help="run a single named scenario block of the suite",
    )
    _add_experiment_flags(suite)
    suite.add_argument("--which", default="total",
                       choices=CostBreakdown.series_fields(),
                       help="cost series shown in the tables (default: total)")
    suite_distributed = suite.add_argument_group(
        "distributed execution",
        "multi-worker suites coordinated through a shared --store, exactly "
        "as in `sweep`; mcelog-sourced blocks bypass the store and are "
        "rejected under --shard/--claim",
    )
    suite_distributed.add_argument(
        "--shard", type=_parse_shard, default=None, metavar="I/N",
        help="compute only worker I's share of an N-way static partition "
        "of every block's points",
    )
    suite_distributed.add_argument(
        "--claim", action="store_true",
        help="dynamic work stealing through atomic store leases, one block "
        "at a time",
    )
    suite_distributed.add_argument(
        "--worker-id", default=None, metavar="NAME",
        help="this worker's identity in leases (default: host:pid:nonce)",
    )
    suite_distributed.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="heartbeat staleness after which other workers may reclaim "
        "this worker's leased points (default: 120)",
    )

    serve = sub.add_parser(
        "serve", help="run the online micro-batched decision service"
    )
    serve.add_argument(
        "--source",
        default="preset:small",
        metavar="FILE|preset:NAME",
        help="mcelog-format file to tail, or preset:NAME for a synthetic "
        "scenario stream (default: preset:small)",
    )
    serve.add_argument(
        "--policy",
        choices=("never", "always", "sc20", "myopic", "rl"),
        default="sc20",
        help="mitigation policy to serve (default: sc20)",
    )
    serve.add_argument("--seed", type=int, default=None, help="root scenario seed")
    serve.add_argument(
        "--mitigation-cost",
        type=float,
        default=None,
        metavar="NODE_MINUTES",
        help="cost of one mitigation (default: the scenario's, or 2)",
    )
    serve.add_argument("--restartable", choices=("on", "off"), default="on")
    serve.add_argument(
        "--threshold", type=float, default=0.4, help="SC20 forest threshold"
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="tick as soon as this many nodes have a pending step",
    )
    serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=50.0,
        help="tick at most this long after the first pending step arrived",
    )
    serve.add_argument(
        "--merge-window-seconds",
        type=float,
        default=60.0,
        help="event merge window of the online feature extractor",
    )
    serve.add_argument(
        "--replay-at-speed",
        type=float,
        default=None,
        metavar="X",
        help="pace a replayed stream at X times real time (storm mode); "
        "default: unthrottled",
    )
    serve.add_argument(
        "--train-fraction",
        type=float,
        default=0.5,
        help="leading fraction of a preset stream used to train sc20/myopic/"
        "rl; the remainder is served (default: 0.5)",
    )
    serve.add_argument(
        "--rl-episodes", type=int, default=120, help="RL training episodes"
    )
    serve.add_argument(
        "--job-nodes",
        type=float,
        default=1.0,
        help="nodes per job assumed for file sources (constant-job provider)",
    )
    serve.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing a file source for appended lines (tail -f)",
    )
    serve.add_argument(
        "--decision-log",
        metavar="PATH",
        default=None,
        help="write the per-node decision log as JSON lines",
    )

    report = sub.add_parser("report", help="render a stored sweep without recomputing")
    report.add_argument("--store", metavar="DIR", required=True)
    report.add_argument("--sweep", metavar="KEY", default=None,
                        help="sweep manifest key (defaults to the only stored sweep)")
    report.add_argument("--which", default="total",
                        choices=CostBreakdown.series_fields(),
                        help="cost series shown in the table (default: total)")

    listing = sub.add_parser("list", help="inventory of a store")
    listing.add_argument("--store", metavar="DIR", required=True)

    gc = sub.add_parser(
        "gc",
        help="prune prepared artifacts not referenced by any stored sweep "
        "or result",
    )
    gc.add_argument("--store", metavar="DIR", required=True)
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be pruned (and how many bytes it would "
        "free) without deleting anything",
    )
    gc.add_argument(
        "--grace-minutes",
        type=float,
        default=60.0,
        help="keep products modified within this window, so a sweep "
        "currently spilling to the store is never raced (default: 60)",
    )

    return parser


# --------------------------------------------------------------------- #
# Argument -> object assembly
# --------------------------------------------------------------------- #
def _scenario_from_args(args) -> ScenarioConfig:
    scenario = getattr(ScenarioConfig, args.preset)()
    if args.seed is not None:
        scenario = scenario.with_seed(args.seed)
    if args.duration_days is not None:
        scenario = scenario.with_duration(args.duration_days * DAY)
    return scenario


def _config_from_args(args) -> ExperimentConfig:
    config = ExperimentConfig.fast() if args.fast else ExperimentConfig()
    overrides = {}
    if args.episodes is not None:
        overrides["rl_episodes"] = args.episodes
    if args.workers is not None:
        overrides["n_workers"] = args.workers
    if args.executor is not None:
        overrides["executor_kind"] = args.executor
    if args.rl_trial_tasks is not None:
        overrides["rl_trial_tasks"] = args.rl_trial_tasks
    if args.charge_training_time is not None:
        overrides["charge_training_time"] = args.charge_training_time
    if args.profile:
        overrides["profile"] = True
    if args.compiled:
        overrides["compiled"] = True
    return config.with_overrides(**overrides) if overrides else config


def _print_profile(extras) -> None:
    """Print the stage profile collected by ``--profile`` (if any)."""
    report = (extras or {}).get("profile")
    if report:
        print()
        print(format_profile(report))


def _executor_summary(stats) -> Optional[str]:
    """One-line executor timing report (``None`` without recorded stats).

    The critical path is the heaviest dependency chain of the task graph —
    the wall-clock lower bound at any worker count — so comparing it with
    the serial-equivalent total shows how much the RL trial fan-out (or a
    bigger ``--workers``) can still buy.
    """
    if stats is None or not stats.task_seconds:
        return None
    return (
        f"executor: {len(stats.task_seconds)} tasks, "
        f"{stats.total_task_seconds:.1f}s total work, "
        f"critical path {stats.critical_path_seconds:.1f}s "
        f"({len(stats.critical_path)} chained tasks)"
    )


def _store_from_args(args) -> Optional[ArtifactStore]:
    return None if args.store is None else ArtifactStore(args.store)


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #
def _cmd_run(args) -> int:
    scenario = _scenario_from_args(args)
    cost = _single(args.mitigation_cost, "--mitigation-cost")
    if cost is not None:
        scenario = scenario.with_mitigation_cost(cost)
    restartable = _single(args.restartable, "--restartable")
    if restartable is not None:
        scenario = scenario.with_restartable(restartable)
    if args.manufacturer is not None:
        scenario = scenario.with_manufacturer(
            _single(args.manufacturer, "--manufacturer")
        )
    scale = _single(args.job_scale, "--job-scale")
    if scale is not None:
        scenario = scenario.with_job_scale(scale)

    study = Study.from_scenario(scenario, store=_store_from_args(args))
    result = study.run(_config_from_args(args))
    print(study.report())
    summary = _executor_summary(result.executor_stats)
    if summary is not None:
        print()
        print(summary)
    if args.metrics:
        print()
        print(study.report(which="metrics"))
    _print_profile(result.extras)
    return 0


def _print_sweep_status(spec, config, store) -> int:
    """The ``sweep --status`` body: each point's distributed-sweep state."""
    from repro.distributed import sweep_status

    statuses = sweep_status(spec, config, store)
    print(f"store: {store.root} (sweep {store.sweep_key(spec, config)})")
    for status in statuses:
        print(f"  {status.describe()}")
    counts = {"done": 0, "leased": 0, "pending": 0}
    for status in statuses:
        counts[status.state] += 1
    print(
        f"{counts['done']}/{len(statuses)} done, "
        f"{counts['leased']} leased, {counts['pending']} pending"
    )
    return 0


def _run_distributed_sweep(args, spec, config, store):
    """The ``sweep --shard/--claim/--reduce`` body; returns the result or None."""
    from repro.distributed import reduce_sweep, run_sweep_worker, sweep_status

    if args.reduce:
        result = reduce_sweep(spec, config, store)
        if result is None:
            missing = [
                s.label for s in sweep_status(spec, config, store) if s.state != "done"
            ]
            print(
                f"error: cannot reduce, {len(missing)} point(s) still "
                f"missing: {', '.join(missing)}",
                file=sys.stderr,
            )
        return result
    outcome = run_sweep_worker(
        spec,
        config,
        store,
        shard=args.shard,
        claim=args.claim,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
    )
    print(outcome.summary())
    return outcome.result


def _cmd_sweep(args) -> int:
    def axis(values):
        return None if values is None else tuple(values)

    spec = SweepSpec(
        base=_scenario_from_args(args),
        mitigation_costs=axis(args.mitigation_cost),
        restartable=axis(args.restartable),
        manufacturers=axis(args.manufacturer),
        job_scales=axis(args.job_scale),
        seeds=axis(args.seeds),
    )
    store = _store_from_args(args)
    config = _config_from_args(args)

    chosen = [
        flag
        for flag, on in (
            ("--shard", args.shard is not None),
            ("--claim", args.claim),
            ("--status", args.status),
            ("--reduce", args.reduce),
        )
        if on
    ]
    if len(chosen) > 1:
        raise SystemExit(
            f"error: {' and '.join(chosen)} are mutually exclusive"
        )
    if chosen and store is None:
        raise SystemExit(
            f"error: {chosen[0]} coordinates workers through a shared "
            f"store; pass --store DIR"
        )
    if args.worker_id is not None and not args.claim:
        raise SystemExit("error: --worker-id only applies to --claim workers")
    if args.lease_ttl is not None and not args.claim:
        raise SystemExit("error: --lease-ttl only applies to --claim workers")

    if args.status:
        return _print_sweep_status(spec, config, store)
    if chosen:
        result = _run_distributed_sweep(args, spec, config, store)
        if result is None:
            if args.reduce:
                return 2
            print(
                "this worker's share is done; other shards are still "
                "pending — run --reduce (or the remaining shards) to finish"
            )
            return 0
        print(result.table(which=args.which))
        print(f"store: {store.root} (sweep {store.sweep_key(spec, config)})")
        return 0

    study = Study.from_sweep(spec, store=store)
    result = study.run(config)
    print(result.table(which=args.which))
    print()
    print(f"wallclock: {result.wallclock_seconds:.1f}s, "
          f"prepare_data calls: {result.prepare_calls} for {len(result)} point(s)")
    summary = _executor_summary(result.extras.get("executor_stats"))
    if summary is not None:
        print(summary)
    if store is not None:
        loaded = study.points_loaded
        print(f"store: {store.root} (sweep {store.sweep_key(spec, study.config)})")
        print(f"points loaded from store: {len(loaded)}")
        print(f"points computed: {len(study.points_computed)}")
    _print_profile(result.extras)
    return 0


def _cmd_suite(args) -> int:
    from repro.suite import SuiteError, load_suite, run_suite

    try:
        suite = load_suite(args.suite_file)
    except SuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.validate:
        print(
            f"{args.suite_file}: OK — suite {suite.name!r}, "
            f"{len(suite.entries)} block(s), {suite.n_points} point(s)"
        )
        for entry in suite.entries:
            tags = []
            if entry.source is not None:
                tags.append(f"mcelog:{entry.source}")
            if entry.experiment_overrides:
                tags.append(
                    "experiment: "
                    + ", ".join(
                        f"{k}={v}" for k, v in entry.experiment_overrides.items()
                    )
                )
            suffix = f"  [{'; '.join(tags)}]" if tags else ""
            print(f"  {entry.name}: {entry.spec.n_points} point(s){suffix}")
        return 0

    store = _store_from_args(args)
    config = _config_from_args(args)
    if args.shard is not None and args.claim:
        raise SystemExit("error: --shard and --claim are mutually exclusive")
    if (args.shard is not None or args.claim) and store is None:
        flag = "--shard" if args.shard is not None else "--claim"
        raise SystemExit(
            f"error: {flag} coordinates workers through a shared store; "
            f"pass --store DIR"
        )
    if args.worker_id is not None and not args.claim:
        raise SystemExit("error: --worker-id only applies to --claim workers")
    if args.lease_ttl is not None and not args.claim:
        raise SystemExit("error: --lease-ttl only applies to --claim workers")

    try:
        results = run_suite(
            suite,
            config,
            store=store,
            only=args.only,
            shard=args.shard,
            claim=args.claim,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
        )
    except SuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    pending = 0
    for name, result in results.items():
        print(f"== {name} ==")
        if result is None:
            pending += 1
            print("this worker's share is done; other shards are still "
                  "pending — rerun (or run the remaining shards) to finish")
        else:
            print(result.table(which=args.which))
            if store is not None and result.spec is not None:
                entry = suite.entry(name)
                entry_config = config.with_overrides(
                    **entry.experiment_overrides
                )
                if entry.source is None:
                    print(
                        f"store: {store.root} "
                        f"(sweep {store.sweep_key(entry.spec, entry_config)})"
                    )
        print()
    return 0


def _serve_policy(
    kind: str,
    train_log,
    mitigation_cost_node_hours: float,
    restartable: bool,
    seed: int,
    threshold: float,
    rl_episodes: int,
    job_sampler=None,
):
    """Build (and, where needed, train) the policy a serve run deploys."""
    from repro.baselines.static import AlwaysMitigatePolicy, NeverMitigatePolicy

    if kind == "never":
        return NeverMitigatePolicy()
    if kind == "always":
        return AlwaysMitigatePolicy()

    from repro.baselines.dataset import build_prediction_dataset
    from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
    from repro.core.features import build_feature_tracks

    if train_log is None or len(train_log) == 0:
        raise SystemExit(
            f"error: --policy {kind} needs training data, but the training "
            f"slice of the stream is empty; lower --train-fraction or pick "
            f"a richer source"
        )
    tracks = build_feature_tracks(train_log)
    t_lo = float(train_log.time[0])
    t_hi = float(train_log.time[-1])

    if kind in ("sc20", "myopic"):
        dataset = build_prediction_dataset(
            tracks, prediction_window_seconds=DAY, t_start=t_lo, t_end=t_hi + 1.0
        )
        if len(dataset) == 0:
            raise SystemExit(
                "error: the training slice yields no prediction samples"
            )
        forest, _ = train_sc20_forest(dataset, n_estimators=16, max_depth=8, seed=seed)
        sc20 = SC20RandomForestPolicy(forest, threshold=threshold)
        if kind == "sc20":
            return sc20
        from repro.baselines.myopic import MyopicRFPolicy

        return MyopicRFPolicy(sc20, mitigation_cost_node_hours)

    if job_sampler is None:
        raise SystemExit(
            "error: --policy rl needs a job log to train against; use a "
            "preset source (--source preset:NAME)"
        )
    from repro.core.dqn import DDDQNAgent, DQNConfig
    from repro.core.environment import MitigationEnv
    from repro.core.features import StateNormalizer
    from repro.core.policies import RLPolicy
    from repro.core.trainer import train_agent

    normalizer = StateNormalizer()
    env = MitigationEnv(
        tracks,
        job_sampler,
        mitigation_cost_node_hours,
        restartable=restartable,
        normalizer=normalizer,
        seed=seed,
    )
    agent = DDDQNAgent(
        normalizer.state_dim, DQNConfig(hidden_sizes=(32, 16), seed=seed)
    )
    train_agent(env, agent, n_episodes=rl_episodes)
    return RLPolicy(agent, normalizer)


def _cmd_serve(args) -> int:
    import asyncio
    import json

    from repro.serve import (
        ConstantJobProvider,
        DecisionService,
        ReplaySource,
        SampledJobProvider,
        ServeConfig,
        TailSource,
    )

    restartable = args.restartable == "on"
    if not 0.0 <= args.train_fraction < 1.0:
        raise SystemExit("error: --train-fraction must be in [0, 1)")

    if args.source.startswith("preset:"):
        name = args.source.split(":", 1)[1]
        if name not in PRESETS:
            raise SystemExit(
                f"error: unknown preset {name!r}; choose from {', '.join(PRESETS)}"
            )
        from repro.telemetry.generator import TelemetryGenerator
        from repro.telemetry.reduction import prepare_log
        from repro.workload.generator import WorkloadGenerator
        from repro.workload.sampling import JobSequenceSampler

        scenario = getattr(ScenarioConfig, name)()
        if args.seed is not None:
            scenario = scenario.with_seed(args.seed)
        raw = TelemetryGenerator(
            scenario.topology,
            scenario.fault_model,
            scenario.duration_seconds,
            seed=scenario.seed,
        ).generate()
        log, _ = prepare_log(raw, scenario.evaluation.ue_burst_window_seconds)
        if len(log) == 0:
            raise SystemExit("error: the preset scenario generated no events")
        job_log = WorkloadGenerator(
            scenario.workload,
            n_cluster_nodes=scenario.topology.n_nodes,
            duration_seconds=scenario.duration_seconds,
            seed=scenario.seed,
        ).generate()
        sampler = JobSequenceSampler(job_log, seed=scenario.seed)
        cost_minutes = (
            args.mitigation_cost
            if args.mitigation_cost is not None
            else scenario.evaluation.mitigation_cost_node_minutes
        )
        cost_hours = cost_minutes / 60.0
        t_lo = float(log.time[0])
        t_hi = float(log.time[-1])
        cutoff = t_lo + args.train_fraction * (t_hi - t_lo)
        train_log = log.filter_time(t_lo, cutoff)
        served = log.filter_time(cutoff, t_hi + 1.0)
        policy = _serve_policy(
            args.policy,
            train_log,
            cost_hours,
            restartable,
            scenario.seed,
            args.threshold,
            args.rl_episodes,
            job_sampler=sampler,
        )
        jobs = SampledJobProvider(sampler, cutoff, t_hi + 1.0, seed=scenario.seed)
        source = ReplaySource(served, speed=args.replay_at_speed)
        described = (
            f"{len(served)} events of preset:{name} "
            f"({len(train_log)} used for training)"
        )
    else:
        if args.replay_at_speed is not None:
            raise SystemExit(
                "error: --replay-at-speed paces a replayed preset stream; "
                "file sources already arrive at their own pace"
            )
        if args.policy == "rl":
            raise SystemExit(
                "error: --policy rl needs a job log to train against; use a "
                "preset source (--source preset:NAME)"
            )
        train_log = None
        if args.policy in ("sc20", "myopic"):
            from repro.telemetry.error_log import ErrorLog
            from repro.telemetry.mcelog import iter_mcelog_records

            with open(args.source, "r", encoding="utf-8") as handle:
                train_log = ErrorLog.from_records(list(iter_mcelog_records(handle)))
        cost_minutes = (
            args.mitigation_cost if args.mitigation_cost is not None else 2.0
        )
        cost_hours = cost_minutes / 60.0
        policy = _serve_policy(
            args.policy,
            train_log,
            cost_hours,
            restartable,
            args.seed if args.seed is not None else 0,
            args.threshold,
            args.rl_episodes,
        )
        jobs = ConstantJobProvider(n_nodes=args.job_nodes)
        source = TailSource(args.source, follow=args.follow)
        described = args.source + (" (following)" if args.follow else "")

    config = ServeConfig(
        mitigation_cost_node_hours=cost_hours,
        restartable=restartable,
        max_batch=args.max_batch,
        max_delay_seconds=args.max_delay_ms / 1000.0,
        merge_window_seconds=args.merge_window_seconds,
    )
    print(f"serving {described} with policy {policy.name}")
    service = DecisionService(policy, jobs, config)
    report = asyncio.run(service.run(source))
    print(report.summary())
    histogram = report.batch_size_histogram()
    if histogram:
        print(
            "batch sizes: "
            + ", ".join(f"{size}x{count}" for size, count in histogram.items())
        )
    if args.decision_log is not None:
        with open(args.decision_log, "w", encoding="utf-8") as handle:
            for record in report.decisions:
                handle.write(json.dumps(record.to_dict()) + "\n")
        print(f"decision log: {args.decision_log} ({len(report.decisions)} entries)")
    return 0


def _pick_sweep_key(store: ArtifactStore, requested: Optional[str]) -> Optional[str]:
    if requested is not None:
        return requested
    sweeps = store.list_sweeps()
    if len(sweeps) == 1:
        return sweeps[0]["key"]
    if not sweeps:
        print("error: the store holds no sweeps", file=sys.stderr)
        return None
    print(
        "error: the store holds several sweeps; pick one with --sweep KEY:",
        file=sys.stderr,
    )
    for entry in sweeps:
        print(
            f"  {entry['key']}  base={entry['base_scenario']}  "
            f"points={len(entry['labels'])}",
            file=sys.stderr,
        )
    return None


def _cmd_report(args) -> int:
    store = ArtifactStore(args.store)
    key = _pick_sweep_key(store, args.sweep)
    if key is None:
        return 2
    result = store.load_sweep_by_key(key)
    if result is None:
        print(f"error: no stored sweep with key {key!r}", file=sys.stderr)
        return 2
    print(result.table(which=args.which, title=f"Sweep {key} — {args.which} cost"))
    return 0


def _cmd_list(args) -> int:
    store = ArtifactStore(args.store)
    sweeps = store.list_sweeps()
    results = store.list_results()
    prepared = store.list_prepared()
    print(f"store: {store.root}")
    print(f"sweeps ({len(sweeps)}):")
    for entry in sweeps:
        labels = ", ".join(entry["labels"])
        print(f"  {entry['key']}  base={entry['base_scenario']}  points: {labels}")
    print(f"results ({len(results)}):")
    for entry in results:
        print(
            f"  {entry['key']}  scenario={entry['scenario']} seed={entry['seed']} "
            f"cost={entry['mitigation_cost_node_minutes']:g} "
            f"approaches={len(entry['approaches'])}"
        )
    print(f"prepared ({len(prepared)}):")
    for key in prepared:
        print(f"  {key}")
    return 0


def _cmd_gc(args) -> int:
    store = ArtifactStore(args.store)
    report = store.gc(
        dry_run=args.dry_run, grace_seconds=args.grace_minutes * 60.0
    )
    verb = "would remove" if report.dry_run else "removed"
    print(f"store: {store.root}")
    for key in report.removed:
        print(f"  {verb}: prepared/{key}")
    for key in report.expired_leases:
        print(f"  {verb}: expired lease {key}")
    megabytes = report.freed_bytes / (1024 * 1024)
    print(
        f"{verb} {len(report.removed)} unreferenced prepared product(s), "
        f"freeing {report.freed_bytes} bytes ({megabytes:.1f} MiB); "
        f"{len(report.kept)} referenced product(s) kept"
    )
    if report.active_leases:
        print(
            f"{len(report.active_leases)} active lease(s) pinned their "
            f"prepared products"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    args = build_parser().parse_args(argv)
    commands = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "suite": _cmd_suite,
        "serve": _cmd_serve,
        "report": _cmd_report,
        "list": _cmd_list,
        "gc": _cmd_gc,
    }
    return commands[args.command](args)
