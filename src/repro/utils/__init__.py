"""Shared utilities: deterministic RNG fan-out, time helpers, validation."""

from repro.utils.rng import RngFactory, as_generator
from repro.utils.timeutils import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    format_duration,
    node_hours,
    node_minutes_to_hours,
)
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_sorted,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "node_hours",
    "node_minutes_to_hours",
    "format_duration",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_sorted",
]
