"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is in [0, 1]."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_sorted(name: str, values: Sequence[float]) -> np.ndarray:
    """Raise ``ValueError`` unless ``values`` is non-decreasing."""
    arr = np.asarray(values, dtype=float)
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise ValueError(f"{name} must be sorted in non-decreasing order")
    return arr
