"""Time and cost unit helpers.

Timestamps throughout the library are floating-point seconds since an
arbitrary epoch (the start of the simulated production period).  Costs are
expressed in node–hours, matching the paper's cost–benefit analysis.
"""

from __future__ import annotations

MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR
WEEK: float = 7 * DAY


def node_hours(nodes: float, wallclock_seconds: float) -> float:
    """Node–hours lost for ``nodes`` nodes over ``wallclock_seconds`` (Eq. 3)."""
    return nodes * wallclock_seconds / HOUR


def node_minutes_to_hours(node_minutes: float) -> float:
    """Convert a cost expressed in node–minutes to node–hours."""
    return node_minutes / 60.0


def format_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``'2d 03:04:05'``."""
    seconds = float(seconds)
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    days, rem = divmod(seconds, DAY)
    hours, rem = divmod(rem, HOUR)
    minutes, secs = divmod(rem, MINUTE)
    if days >= 1:
        return f"{sign}{int(days)}d {int(hours):02d}:{int(minutes):02d}:{int(secs):02d}"
    return f"{sign}{int(hours):02d}:{int(minutes):02d}:{int(secs):02d}"
