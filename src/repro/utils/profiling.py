"""Stage-level cProfile instrumentation for the experiment pipeline.

``ExperimentConfig.profile`` (CLI: ``--profile``) runs each pipeline stage
under :mod:`cProfile` and surfaces the top cumulative-time functions in
``ExperimentResult.extras["profile"]`` — a plain ``{stage: [row, ...]}``
mapping of dictionaries, cheap to print and to serialize ad hoc — so
performance work starts from data instead of guesses.

Profiling covers the driver process: with the ``serial`` executor (or
``n_workers=1``) that is the whole experiment; with the process backend the
worker-side task bodies run outside the profiler and only orchestration
shows up.  The report says which stages were measured either way.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import Dict, Iterator, List

__all__ = ["StageProfiler", "format_profile"]

#: A profile row: function identity plus call counts and timings.
ProfileRow = Dict[str, object]


def _top_rows(profiler: cProfile.Profile, limit: int) -> List[ProfileRow]:
    """The ``limit`` heaviest functions of one profile, by cumulative time."""
    stats = pstats.Stats(profiler)
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    )
    rows: List[ProfileRow] = []
    for (filename, line, function), (_, n_calls, total, cumulative, _) in entries[
        :limit
    ]:
        short = filename.rsplit("/", 1)[-1]
        rows.append(
            {
                "function": f"{short}:{line}({function})",
                "ncalls": int(n_calls),
                "tottime": round(float(total), 4),
                "cumtime": round(float(cumulative), 4),
            }
        )
    return rows


class StageProfiler:
    """Profiles named stages and collects their top-function tables.

    Disabled instances cost nothing — :meth:`stage` degrades to a bare
    ``yield`` — so callers can instrument unconditionally and let the
    config flag decide.
    """

    def __init__(self, enabled: bool = True, top: int = 15) -> None:
        self.enabled = bool(enabled)
        self.top = int(top)
        self.stages: Dict[str, List[ProfileRow]] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Run one pipeline stage under its own profiler."""
        if not self.enabled:
            yield
            return
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            yield
        finally:
            profiler.disable()
            self.stages[name] = _top_rows(profiler, self.top)

    def report(self) -> Dict[str, List[ProfileRow]]:
        """The collected ``{stage: [rows]}`` mapping (copy)."""
        return dict(self.stages)


def format_profile(report: Dict[str, List[ProfileRow]]) -> str:
    """Human-readable table of a :meth:`StageProfiler.report` mapping."""
    lines: List[str] = []
    for stage, rows in report.items():
        lines.append(f"profile [{stage}] — top functions by cumulative time")
        lines.append(f"  {'cumtime':>9}  {'tottime':>9}  {'ncalls':>8}  function")
        for row in rows:
            lines.append(
                f"  {row['cumtime']:>9.4f}  {row['tottime']:>9.4f}  "
                f"{row['ncalls']:>8}  {row['function']}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
