"""Stage-level cProfile instrumentation for the experiment pipeline.

``ExperimentConfig.profile`` (CLI: ``--profile``) runs each pipeline stage
under :mod:`cProfile` and surfaces the top cumulative-time functions in
``ExperimentResult.extras["profile"]`` — a plain ``{stage: [row, ...]}``
mapping of dictionaries, cheap to print and to serialize ad hoc — so
performance work starts from data instead of guesses.  Besides the
per-stage tables the report carries a ``"total"`` entry: all stages'
raw stats folded into one profile with :meth:`pstats.Stats.add`, so a
function split across stages (the decision core runs under both
``execute_tasks`` and ``aggregate``) shows its true combined cost in a
single ranking — this merged table is what the CLI prints.

Profiling covers the driver process: with the ``serial`` executor (or
``n_workers=1``) that is the whole experiment; with the process backend the
worker-side task bodies run outside the profiler and only orchestration
shows up.  The report says which stages were measured either way.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["StageProfiler", "format_profile", "MERGED_KEY"]

#: A profile row: function identity plus call counts and timings.
ProfileRow = Dict[str, object]

#: Report key of the cross-stage merged table (not a stage name).
MERGED_KEY = "total"


def _top_rows(stats: pstats.Stats, limit: int) -> List[ProfileRow]:
    """The ``limit`` heaviest functions of one stats set, by cumulative time."""
    entries = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    )
    rows: List[ProfileRow] = []
    for (filename, line, function), (_, n_calls, total, cumulative, _) in entries[
        :limit
    ]:
        short = filename.rsplit("/", 1)[-1]
        rows.append(
            {
                "function": f"{short}:{line}({function})",
                "ncalls": int(n_calls),
                "tottime": round(float(total), 4),
                "cumtime": round(float(cumulative), 4),
            }
        )
    return rows


class StageProfiler:
    """Profiles named stages and collects their top-function tables.

    Disabled instances cost nothing — :meth:`stage` degrades to a bare
    ``yield`` — so callers can instrument unconditionally and let the
    config flag decide.
    """

    def __init__(self, enabled: bool = True, top: int = 15) -> None:
        self.enabled = bool(enabled)
        self.top = int(top)
        self.stages: Dict[str, List[ProfileRow]] = {}
        self._merged: Optional[pstats.Stats] = None

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Run one pipeline stage under its own profiler."""
        if not self.enabled:
            yield
            return
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            yield
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler)
            self.stages[name] = _top_rows(stats, self.top)
            if self._merged is None:
                self._merged = stats
            else:
                # Raw-stats fold: per-function call counts and timings sum
                # across stages before the top-N cut, so the merged table
                # ranks true combined costs (a post-hoc merge of the
                # per-stage top rows could not — a function just under the
                # cut in every stage would vanish).
                self._merged.add(stats)

    def report(self) -> Dict[str, List[ProfileRow]]:
        """The ``{stage: [rows]}`` mapping plus the merged ``"total"`` entry."""
        report = dict(self.stages)
        if self._merged is not None:
            report[MERGED_KEY] = _top_rows(self._merged, self.top)
        return report


def format_profile(report: Dict[str, List[ProfileRow]]) -> str:
    """Human-readable table of a :meth:`StageProfiler.report` mapping.

    Prints ONE top-N table — the cross-stage ``"total"`` merge — naming
    the stages it covers; reports recorded before the merged entry
    existed fall back to the old stage-by-stage tables.
    """
    stages = [name for name in report if name != MERGED_KEY]
    merged = report.get(MERGED_KEY)
    if merged is not None:
        lines = [
            "profile — top functions by cumulative time "
            f"(merged across stages: {', '.join(stages)})",
            f"  {'cumtime':>9}  {'tottime':>9}  {'ncalls':>8}  function",
        ]
        for row in merged:
            lines.append(
                f"  {row['cumtime']:>9.4f}  {row['tottime']:>9.4f}  "
                f"{row['ncalls']:>8}  {row['function']}"
            )
        return "\n".join(lines)
    lines = []
    for stage in stages:
        lines.append(f"profile [{stage}] — top functions by cumulative time")
        lines.append(f"  {'cumtime':>9}  {'tottime':>9}  {'ncalls':>8}  function")
        for row in report[stage]:
            lines.append(
                f"  {row['cumtime']:>9.4f}  {row['tottime']:>9.4f}  "
                f"{row['ncalls']:>8}  {row['function']}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
