"""Deterministic random number generation helpers.

Everything stochastic in the library (telemetry generation, workload
generation, replay sampling, network initialisation, exploration) draws from
``numpy.random.Generator`` objects produced by an :class:`RngFactory`.  The
factory derives independent child streams from a root seed and a string key,
so two subsystems never share a stream and results are reproducible even when
the call order between subsystems changes.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, "RngFactory", None]


def _key_to_int(key: str) -> int:
    """Map a string key to a stable 64-bit integer."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Derive independent, reproducible random streams from one root seed.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` gives a non-deterministic root (only sensible in
        interactive exploration; library code always passes a seed).

    Examples
    --------
    >>> factory = RngFactory(1234)
    >>> a = factory.stream("telemetry")
    >>> b = factory.stream("workload")
    >>> a is not b
    True
    >>> RngFactory(1234).stream("telemetry").integers(10) == a.integers(0) if False else True
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed_seq = np.random.SeedSequence(seed)
        self.seed = seed

    def stream(self, key: str) -> np.random.Generator:
        """Return a fresh generator for ``key``.

        The stream depends only on the root seed and ``key`` — not on how many
        other streams were created before it.
        """
        child = np.random.SeedSequence(
            entropy=self._seed_seq.entropy, spawn_key=(_key_to_int(key),)
        )
        return np.random.default_rng(child)

    def child(self, key: str) -> "RngFactory":
        """Return a sub-factory namespaced under ``key``."""
        entropy = self._seed_seq.entropy
        if entropy is None:
            return RngFactory(None)
        mixed = (int(entropy) ^ _key_to_int(key)) % (2**63)
        return RngFactory(mixed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed!r})"


def as_generator(seed: SeedLike, key: str = "default") -> np.random.Generator:
    """Coerce ``seed`` (int, Generator, RngFactory or None) to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, RngFactory):
        return seed.stream(key)
    return np.random.default_rng(seed)
