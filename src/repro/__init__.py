"""Reproduction of "Reinforcement learning-based adaptive mitigation of
uncorrected DRAM errors" (HPDC'24, Boixaderas et al.).

The blessed public API is this module's ``__all__`` — a stable contract for
building tools and services on top of the reproduction:

Facade
    :class:`~repro.study.Study` (run / resume experiments and sweeps),
    :class:`~repro.store.ArtifactStore` (disk-backed, content-keyed
    artifact persistence).
Configuration
    :class:`~repro.config.ScenarioConfig` (what to simulate),
    :class:`~repro.evaluation.pipeline.ExperimentConfig` (how hard to
    train), :class:`~repro.evaluation.sweep.SweepSpec` (which grid).
Results
    :class:`~repro.evaluation.pipeline.ExperimentResult`,
    :class:`~repro.evaluation.sweep.SweepResult`,
    :class:`~repro.evaluation.costs.CostBreakdown`.
Low-level engines
    :func:`~repro.evaluation.experiment.run_experiment`,
    :func:`~repro.evaluation.sweep.run_sweep` — what ``Study`` drives
    internally, kept public for scripting.

Everything else (pipeline stages, executors, caches, telemetry generators)
remains importable from its home module — see :mod:`repro.evaluation` — but
is not part of the stability contract.

Attributes resolve lazily (PEP 562), so ``import repro`` stays cheap and the
CLI (``python -m repro``) starts fast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__version__ = "0.1.0"

__all__ = [
    "ArtifactStore",
    "CostBreakdown",
    "ExperimentConfig",
    "ExperimentResult",
    "ScenarioConfig",
    "Study",
    "SweepResult",
    "SweepSpec",
    "__version__",
    "run_experiment",
    "run_sweep",
]

#: name -> home module of each lazily resolved public attribute.
_EXPORTS = {
    "ArtifactStore": "repro.store",
    "CostBreakdown": "repro.evaluation.costs",
    "ExperimentConfig": "repro.evaluation.pipeline",
    "ExperimentResult": "repro.evaluation.pipeline",
    "ScenarioConfig": "repro.config",
    "Study": "repro.study",
    "SweepResult": "repro.evaluation.sweep",
    "SweepSpec": "repro.evaluation.sweep",
    "run_experiment": "repro.evaluation.experiment",
    "run_sweep": "repro.evaluation.sweep",
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.config import ScenarioConfig
    from repro.evaluation.costs import CostBreakdown
    from repro.evaluation.experiment import run_experiment
    from repro.evaluation.pipeline import ExperimentConfig, ExperimentResult
    from repro.evaluation.sweep import SweepResult, SweepSpec, run_sweep
    from repro.store import ArtifactStore
    from repro.study import Study


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
