"""CART decision-tree classifier, written from scratch with NumPy.

scikit-learn is not available in the offline environment, so the random
forest used by the SC20 baseline is built on this minimal CART
implementation: binary splits chosen by Gini impurity, optional random
feature subsampling at each node (for forests), and probability estimates
from leaf class frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


@dataclass
class _Node:
    """One node of the fitted tree (leaf when ``feature`` is None)."""

    feature: Optional[int]
    threshold: float
    left: int
    right: int
    #: Probability of the positive class among training samples in the node.
    probability: float
    n_samples: int


def _gini(positive: float, total: float) -> float:
    """Gini impurity of a node with ``positive`` positives out of ``total``."""
    if total <= 0:
        return 0.0
    p = positive / total
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier:
    """Binary CART classifier with Gini splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples each child must receive.
    max_features:
        Number of features examined at each split; ``None`` uses all,
        ``"sqrt"`` uses ⌈√d⌉ (the random-forest default).
    seed:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features=None,
        seed=0,
    ) -> None:
        check_positive("max_depth", max_depth)
        check_positive("min_samples_split", min_samples_split)
        check_positive("min_samples_leaf", min_samples_leaf)
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self._rng = as_generator(seed, "tree")
        self._nodes: List[_Node] = []
        self.n_features_: Optional[int] = None
        self._flat: Optional[tuple] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return bool(self._nodes)

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._nodes)

    def _n_split_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.ceil(np.sqrt(n_features))))
        return max(1, min(int(self.max_features), n_features))

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit the tree on features ``X`` and binary labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be a 2-D array")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must have the same number of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        if not np.isin(np.unique(y), [0.0, 1.0]).all():
            raise ValueError("labels must be binary (0/1)")
        self.n_features_ = X.shape[1]
        self._nodes = []
        self._flat = None
        self._build(X, y, np.arange(X.shape[0]), depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, indices: np.ndarray, depth: int) -> int:
        node_index = len(self._nodes)
        y_node = y[indices]
        positives = float(y_node.sum())
        total = float(len(indices))
        probability = positives / total if total else 0.0
        # Reserve the slot; children indices are patched after recursion.
        self._nodes.append(
            _Node(
                feature=None,
                threshold=0.0,
                left=-1,
                right=-1,
                probability=probability,
                n_samples=int(total),
            )
        )

        if (
            depth >= self.max_depth
            or total < self.min_samples_split
            or positives == 0.0
            or positives == total
        ):
            return node_index

        split = self._best_split(X, y, indices)
        if split is None:
            return node_index
        feature, threshold, left_idx, right_idx = split
        left_child = self._build(X, y, left_idx, depth + 1)
        right_child = self._build(X, y, right_idx, depth + 1)
        node = self._nodes[node_index]
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = left_child
        node.right = right_child
        return node_index

    def _best_split(self, X: np.ndarray, y: np.ndarray, indices: np.ndarray):
        """Best (feature, threshold) by Gini gain, or None if nothing helps."""
        n_features = X.shape[1]
        k = self._n_split_features(n_features)
        if k < n_features:
            features = self._rng.choice(n_features, size=k, replace=False)
        else:
            features = np.arange(n_features)

        y_node = y[indices]
        total = float(len(indices))
        total_pos = float(y_node.sum())
        parent_impurity = _gini(total_pos, total)

        best_gain = 1e-12
        best = None
        for feature in features:
            values = X[indices, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_y = y_node[order]
            # Candidate split positions: where the feature value changes.
            change = np.flatnonzero(np.diff(sorted_values) > 0) + 1
            if change.size == 0:
                continue
            cum_pos = np.cumsum(sorted_y)
            left_count = change.astype(float)
            right_count = total - left_count
            valid = (left_count >= self.min_samples_leaf) & (
                right_count >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            left_pos = cum_pos[change - 1]
            right_pos = total_pos - left_pos
            left_gini = np.where(
                left_count > 0, 2 * (left_pos / left_count) * (1 - left_pos / left_count), 0.0
            )
            right_gini = np.where(
                right_count > 0,
                2 * (right_pos / right_count) * (1 - right_pos / right_count),
                0.0,
            )
            weighted = (left_count * left_gini + right_count * right_gini) / total
            gain = parent_impurity - weighted
            gain[~valid] = -np.inf
            best_local = int(np.argmax(gain))
            if gain[best_local] > best_gain:
                best_gain = float(gain[best_local])
                pos = change[best_local]
                threshold = 0.5 * (sorted_values[pos - 1] + sorted_values[pos])
                mask = values <= threshold
                best = (feature, threshold, indices[mask], indices[~mask])
        return best

    # ------------------------------------------------------------------ #
    def _flat_arrays(self) -> tuple:
        """Array form of the fitted tree: ``(feature, threshold, left,
        right, probability, depth)``.

        Built lazily after :meth:`fit` and cached.  Leaves are encoded as
        self-loops (``left == right == node``, dummy feature 0, threshold
        ``+inf``) so the level-synchronous traversal needs no per-level
        pending-row filtering: rows parked on a leaf keep re-selecting it.
        ``depth`` is the maximum node depth — the number of traversal steps
        that provably parks every row on a leaf.
        """
        if self._flat is None:
            n_nodes = len(self._nodes)
            feature = np.zeros(n_nodes, dtype=np.int64)
            threshold = np.full(n_nodes, np.inf)
            left = np.arange(n_nodes, dtype=np.int64)
            right = np.arange(n_nodes, dtype=np.int64)
            probability = np.empty(n_nodes)
            depth = np.zeros(n_nodes, dtype=np.int64)
            for index, node in enumerate(self._nodes):
                probability[index] = node.probability
                if node.feature is not None:
                    feature[index] = node.feature
                    threshold[index] = node.threshold
                    left[index] = node.left
                    right[index] = node.right
                    # _build appends parents before children (preorder), so
                    # child depths resolve in one forward pass.
                    depth[node.left] = depth[index] + 1
                    depth[node.right] = depth[index] + 1
            self._flat = (
                feature,
                threshold,
                left,
                right,
                probability,
                int(depth.max()) if n_nodes else 0,
            )
        return self._flat

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each sample.

        Level-synchronous traversal: every row holds a node pointer and all
        rows advance one level per iteration (leaves self-loop), so a batch
        prediction costs O(depth) vectorized steps instead of a Python loop
        over tree nodes.  Each row performs exactly the comparisons the
        node-by-node walk would — predictions are bitwise identical for any
        batch size.
        """
        if not self.is_fitted:
            raise RuntimeError("the tree has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        feature, threshold, left, right, probability, depth = self._flat_arrays()
        n_rows = X.shape[0]
        flat_x = np.ascontiguousarray(X).ravel()
        row_base = np.arange(n_rows, dtype=np.int64) * X.shape[1]
        node = np.zeros(n_rows, dtype=np.int64)
        for _ in range(depth):
            values = flat_x[row_base + feature[node]]
            node = np.where(values <= threshold[node], left[node], right[node])
        return probability[node]

    def _predict_proba_queue(self, X: np.ndarray) -> np.ndarray:
        """Historical queue-based traversal (reference for equivalence tests)."""
        if not self.is_fitted:
            raise RuntimeError("the tree has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        probabilities = np.empty(X.shape[0], dtype=float)
        queue = [(0, np.arange(X.shape[0]))]
        while queue:
            node_index, rows = queue.pop()
            if rows.size == 0:
                continue
            node = self._nodes[node_index]
            if node.feature is None:
                probabilities[rows] = node.probability
                continue
            mask = X[rows, node.feature] <= node.threshold
            queue.append((node.left, rows[mask]))
            queue.append((node.right, rows[~mask]))
        return probabilities

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Explicit batched probability prediction for a feature matrix.

        The canonical whole-trace entry point of the vectorized decision
        core (one call per evaluation trace).  Tree traversal routes each
        row independently — thresholds are compared per row, never combined
        across rows — so the result is bitwise identical to predicting the
        rows one at a time, whatever the batch size.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("predict_batch expects a 2-D feature matrix")
        return self.predict_proba(X)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary prediction at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)
