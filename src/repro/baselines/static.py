"""Static baseline policies: Never-mitigate, Always-mitigate, Oracle.

These are the reference points of the cost–benefit analysis (Section 4.2):
Never-mitigate pays the full UE cost and no mitigation cost; Always-mitigate
triggers a mitigation at every error-related event, paying the minimum UE
cost achievable by event-triggered policies and the maximum mitigation cost;
the Oracle mitigates only on the last event before each UE, which is the
optimal event-triggered strategy but requires knowledge of the future.

Every policy here also implements the vectorized ``decide_batch`` protocol
(none of them reads the potential UE cost, so a whole trace resolves in one
call; see :func:`repro.evaluation.runner.evaluate_policy`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.policies import DecisionContext, MitigationPolicy


class NeverMitigatePolicy(MitigationPolicy):
    """Do nothing, ever.  Maximum UE cost, zero mitigation cost."""

    name = "Never-mitigate"

    def decide(self, context: DecisionContext) -> bool:
        return False

    def decide_batch(
        self,
        trace,
        ue_costs: Optional[np.ndarray] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        stop = len(trace) if stop is None else stop
        return np.zeros(stop - start, dtype=bool)

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return np.zeros(len(features), dtype=bool)


class AlwaysMitigatePolicy(MitigationPolicy):
    """Mitigate on every event in the error log.

    Implicitly a predictor: any event is treated as an indicator of an
    upcoming UE (Section 4.2).
    """

    name = "Always-mitigate"

    def decide(self, context: DecisionContext) -> bool:
        return True

    def decide_batch(
        self,
        trace,
        ue_costs: Optional[np.ndarray] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        stop = len(trace) if stop is None else stop
        return np.ones(stop - start, dtype=bool)

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return np.ones(len(features), dtype=bool)


class OraclePolicy(MitigationPolicy):
    """Mitigate exactly on the last event before each UE.

    Relies on the ``is_last_event_before_ue`` flag that the evaluation
    harness computes from the *future* of the log; it is not a realisable
    policy and is used only to quantify the room for improvement.
    """

    name = "Oracle"

    def decide(self, context: DecisionContext) -> bool:
        return bool(context.is_last_event_before_ue)

    def decide_batch(
        self,
        trace,
        ue_costs: Optional[np.ndarray] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        stop = len(trace) if stop is None else stop
        return np.asarray(trace.is_last_before_ue[start:stop], dtype=bool)

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        raise NotImplementedError(
            "OraclePolicy reads is_last_event_before_ue, which encodes the "
            "future of the log; it cannot be served online"
        )


class PeriodicMitigatePolicy(MitigationPolicy):
    """Mitigate whenever at least ``period_hours`` elapsed since the last one.

    Not part of the paper's comparison; included as the classical
    fixed-interval checkpointing strategy that adaptive methods are meant to
    improve upon.  State is per evaluation trace (reset between nodes).
    """

    def __init__(self, period_hours: float = 24.0) -> None:
        if period_hours <= 0:
            raise ValueError("period_hours must be > 0")
        self.period_seconds = float(period_hours) * 3600.0
        self.name = f"Periodic-{period_hours:g}h"
        self._last_mitigation: float | None = None

    def reset(self) -> None:
        self._last_mitigation = None

    def decide(self, context: DecisionContext) -> bool:
        if (
            self._last_mitigation is None
            or context.time - self._last_mitigation >= self.period_seconds
        ):
            self._last_mitigation = context.time
            return True
        return False

    def decide_batch(
        self,
        trace,
        ue_costs: Optional[np.ndarray] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        """Jump scan over the decision-point times.

        Reproduces the sequential ``t - last >= period`` comparisons exactly
        (the search advances in chunks but evaluates the same element-wise
        subtraction the scalar path uses), and leaves ``_last_mitigation``
        where a sequential replay would have.  Only whole-trace calls make
        sense for this stateful policy; the runner issues exactly those
        because the policy is not cost-dependent, and partial ranges are
        rejected rather than answered wrongly.
        """
        stop = len(trace) if stop is None else stop
        if start != 0 or stop != len(trace):
            raise ValueError(
                "PeriodicMitigatePolicy.decide_batch replays its mitigation "
                "clock from the trace start; partial [start, stop) ranges "
                "are not supported"
            )
        decisions = np.zeros(len(trace), dtype=bool)
        decision_points = np.flatnonzero(~np.asarray(trace.is_ue, dtype=bool))
        times = trace.times[decision_points]
        last = self._last_mitigation
        i = 0
        chunk = 512
        while i < len(times):
            if last is None:
                j = i
            else:
                j = -1
                for block_start in range(i, len(times), chunk):
                    block = (
                        times[block_start : block_start + chunk] - last
                        >= self.period_seconds
                    )
                    hits = np.flatnonzero(block)
                    if hits.size:
                        j = block_start + int(hits[0])
                        break
                if j < 0:
                    break
            decisions[decision_points[j]] = True
            last = float(times[j])
            i = j + 1
        self._last_mitigation = last
        return decisions[start:stop]

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        raise NotImplementedError(
            "PeriodicMitigatePolicy keeps one mitigation clock per replayed "
            "trace; a serving tick interleaves many nodes, which would need "
            "one clock per node — wrap one policy instance per node instead"
        )
