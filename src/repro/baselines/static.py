"""Static baseline policies: Never-mitigate, Always-mitigate, Oracle.

These are the reference points of the cost–benefit analysis (Section 4.2):
Never-mitigate pays the full UE cost and no mitigation cost; Always-mitigate
triggers a mitigation at every error-related event, paying the minimum UE
cost achievable by event-triggered policies and the maximum mitigation cost;
the Oracle mitigates only on the last event before each UE, which is the
optimal event-triggered strategy but requires knowledge of the future.
"""

from __future__ import annotations

from repro.core.policies import DecisionContext, MitigationPolicy


class NeverMitigatePolicy(MitigationPolicy):
    """Do nothing, ever.  Maximum UE cost, zero mitigation cost."""

    name = "Never-mitigate"

    def decide(self, context: DecisionContext) -> bool:
        return False


class AlwaysMitigatePolicy(MitigationPolicy):
    """Mitigate on every event in the error log.

    Implicitly a predictor: any event is treated as an indicator of an
    upcoming UE (Section 4.2).
    """

    name = "Always-mitigate"

    def decide(self, context: DecisionContext) -> bool:
        return True


class OraclePolicy(MitigationPolicy):
    """Mitigate exactly on the last event before each UE.

    Relies on the ``is_last_event_before_ue`` flag that the evaluation
    harness computes from the *future* of the log; it is not a realisable
    policy and is used only to quantify the room for improvement.
    """

    name = "Oracle"

    def decide(self, context: DecisionContext) -> bool:
        return bool(context.is_last_event_before_ue)


class PeriodicMitigatePolicy(MitigationPolicy):
    """Mitigate whenever at least ``period_hours`` elapsed since the last one.

    Not part of the paper's comparison; included as the classical
    fixed-interval checkpointing strategy that adaptive methods are meant to
    improve upon.  State is per evaluation trace (reset between nodes).
    """

    def __init__(self, period_hours: float = 24.0) -> None:
        if period_hours <= 0:
            raise ValueError("period_hours must be > 0")
        self.period_seconds = float(period_hours) * 3600.0
        self.name = f"Periodic-{period_hours:g}h"
        self._last_mitigation: float | None = None

    def reset(self) -> None:
        self._last_mitigation = None

    def decide(self, context: DecisionContext) -> bool:
        if (
            self._last_mitigation is None
            or context.time - self._last_mitigation >= self.period_seconds
        ):
            self._last_mitigation = context.time
            return True
        return False
