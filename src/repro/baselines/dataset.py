"""Supervised prediction dataset for the random-forest baselines.

The SC20-RF predictor is a classifier over the same telemetry features the
RL agent observes (Table 1 minus the potential UE cost): each merged non-UE
event is a sample, labelled positive when an uncorrected error occurs on the
same node within the prediction window (1 day, Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.features import N_FEATURES, NodeFeatureTrack
from repro.utils.timeutils import DAY
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PredictionDataset:
    """Feature matrix / label vector with provenance columns."""

    X: np.ndarray
    y: np.ndarray
    nodes: np.ndarray
    times: np.ndarray

    def __post_init__(self) -> None:
        if not (
            self.X.shape[0] == self.y.shape[0] == self.nodes.shape[0] == self.times.shape[0]
        ):
            raise ValueError("dataset columns must be aligned")
        if self.X.ndim != 2 or (len(self.X) and self.X.shape[1] != N_FEATURES):
            raise ValueError(f"X must have {N_FEATURES} feature columns")

    def __len__(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_positives(self) -> int:
        """Number of samples followed by a UE within the prediction window."""
        return int(self.y.sum())

    @property
    def positive_rate(self) -> float:
        """Fraction of positive samples (quantifies the class imbalance)."""
        if len(self) == 0:
            return 0.0
        return float(self.y.mean())

    def filter_time(self, t_start: float, t_end: float) -> "PredictionDataset":
        """Samples with ``t_start <= time < t_end``."""
        mask = (self.times >= t_start) & (self.times < t_end)
        return PredictionDataset(
            X=self.X[mask], y=self.y[mask], nodes=self.nodes[mask], times=self.times[mask]
        )


def build_prediction_dataset(
    tracks: Dict[int, NodeFeatureTrack],
    prediction_window_seconds: float = DAY,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
) -> PredictionDataset:
    """Build the supervised dataset from per-node feature tracks.

    Parameters
    ----------
    tracks:
        Per-node feature tracks (the same ones the RL environment replays).
    prediction_window_seconds:
        Look-ahead window for the positive label.
    t_start, t_end:
        Optional restriction of the sampled events (the label still looks at
        UEs beyond ``t_end``: a real deployment would know tomorrow's UEs
        only after the fact, but the *label* of a training sample may —
        this mirrors how the original study builds its training sets).
    """
    check_positive("prediction_window_seconds", prediction_window_seconds)
    features = []
    labels = []
    nodes = []
    times = []
    for node, track in tracks.items():
        if not len(track):
            continue
        ue_times = track.ue_times
        mask = ~track.is_ue
        if t_start is not None:
            mask &= track.times >= t_start
        if t_end is not None:
            mask &= track.times < t_end
        event_times = track.times[mask]
        if event_times.size == 0:
            continue
        if ue_times.size:
            next_ue_idx = np.searchsorted(ue_times, event_times, side="left")
            has_next = next_ue_idx < ue_times.size
            gap = np.full(event_times.shape, np.inf)
            gap[has_next] = ue_times[next_ue_idx[has_next]] - event_times[has_next]
            label = (gap <= prediction_window_seconds).astype(np.int64)
        else:
            label = np.zeros(event_times.shape, dtype=np.int64)
        features.append(track.features[mask])
        labels.append(label)
        nodes.append(np.full(event_times.shape, node, dtype=np.int64))
        times.append(event_times)

    if not features:
        return PredictionDataset(
            X=np.empty((0, N_FEATURES)),
            y=np.empty(0, dtype=np.int64),
            nodes=np.empty(0, dtype=np.int64),
            times=np.empty(0),
        )
    return PredictionDataset(
        X=np.concatenate(features),
        y=np.concatenate(labels),
        nodes=np.concatenate(nodes),
        times=np.concatenate(times),
    )
