"""Fleet-mix: per-segment policy routing over a heterogeneous fleet.

Real clusters are procured in generations; a site operator would not run one
mitigation policy over racks with wildly different failure rates.  The
:class:`SegmentedFleetPolicy` composite routes every decision to the
sub-policy owning the node's :class:`~repro.telemetry.topology.FleetSegment`
— e.g. "always mitigate on the old high-UE racks, use the trained SC20
forest elsewhere" — while presenting the evaluation harness with a single
:class:`~repro.core.policies.MitigationPolicy`.

The composite is registered as the "Fleet-mix" approach (order 55, group
``"rf"`` so it shares the split's trained forest with the SC20 family) and
only runs when ``ExperimentConfig.include_fleet_mix`` is set, keeping every
existing experiment's approach set unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.myopic import MyopicRFPolicy
from repro.baselines.static import (
    AlwaysMitigatePolicy,
    NeverMitigatePolicy,
    OraclePolicy,
)
from repro.core.policies import (
    DecisionContext,
    FallbackPolicy,
    MitigationPolicy,
)
from repro.telemetry.topology import ClusterTopology

__all__ = [
    "DEFAULT_SEGMENT_POLICY",
    "SEGMENT_POLICY_NAMES",
    "SegmentedFleetPolicy",
    "build_fleet_policy",
]

#: Policy names a :class:`~repro.telemetry.topology.FleetSegment` may request.
SEGMENT_POLICY_NAMES = ("never", "always", "sc20", "myopic", "oracle")

#: Policy served to segments that do not name one.
DEFAULT_SEGMENT_POLICY = "sc20"


class SegmentedFleetPolicy(MitigationPolicy):
    """Route decisions to one sub-policy per fleet segment.

    Every evaluation trace belongs to exactly one node, so a whole trace —
    and therefore every batched window of it — resolves through a single
    sub-policy; the composite only has to dispatch, never to merge.

    Training costs of shared artifacts (the SC20 forest) are charged to the
    approaches that own them, so the composite itself reports zero.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        segment_policies: Sequence[MitigationPolicy],
        name: str = "Fleet-mix",
    ) -> None:
        if not topology.segments:
            raise ValueError(
                "SegmentedFleetPolicy needs a topology with fleet segments"
            )
        if len(segment_policies) != len(topology.segments):
            raise ValueError(
                f"{len(topology.segments)} segments but "
                f"{len(segment_policies)} policies"
            )
        self.topology = topology
        self.segment_policies: List[MitigationPolicy] = list(segment_policies)
        self.name = name
        self._node_segment = topology.node_segment()

    # ------------------------------------------------------------------ #
    def _policy_for_node(self, node: int) -> MitigationPolicy:
        if not (0 <= node < self._node_segment.size):
            raise ValueError(
                f"node {node} outside the topology "
                f"[0, {self._node_segment.size})"
            )
        return self.segment_policies[int(self._node_segment[node])]

    def _unique_policies(self) -> List[MitigationPolicy]:
        unique: List[MitigationPolicy] = []
        for policy in self.segment_policies:
            if all(policy is not seen for seen in unique):
                unique.append(policy)
        return unique

    # ------------------------------------------------------------------ #
    @property
    def cost_dependent(self) -> bool:  # type: ignore[override]
        return any(policy.cost_dependent for policy in self.segment_policies)

    def decide(self, context: DecisionContext) -> bool:
        return self._policy_for_node(context.node).decide(context)

    def decide_batch(
        self,
        trace,
        ue_costs: Optional[np.ndarray] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        return self._policy_for_node(trace.node).decide_batch(
            trace, ue_costs, start=start, stop=stop
        )

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if nodes is None:
            raise ValueError(
                "SegmentedFleetPolicy.decide_nodes routes by node id; the "
                "nodes array is required"
            )
        nodes = np.asarray(nodes, dtype=int)
        features = np.asarray(features, dtype=float)
        costs = np.asarray(ue_costs, dtype=float)
        out = np.empty(len(nodes), dtype=bool)
        segments = self._node_segment[nodes]
        for segment in np.unique(segments):
            idx = np.flatnonzero(segments == segment)
            out[idx] = self.segment_policies[int(segment)].decide_nodes(
                features[idx],
                costs[idx],
                times=None if times is None else np.asarray(times, dtype=float)[idx],
                nodes=nodes[idx],
            )
        return out

    def reset(self) -> None:
        for policy in self._unique_policies():
            policy.reset()

    def prepare_trace(self, features: np.ndarray) -> None:
        # The runner does not say which node the matrix belongs to, so every
        # distinct sub-policy gets to cache it; lookups key on identity.
        for policy in self._unique_policies():
            policy.prepare_trace(features)

    def prepare_traces(self, traces) -> None:
        for policy in self._unique_policies():
            policy.prepare_traces(traces)


def build_fleet_policy(ctx) -> MitigationPolicy:
    """Builder of the "Fleet-mix" approach (registry signature: ctx-only part).

    Homogeneous topologies (no segments) get a Never-mitigate fallback under
    the Fleet-mix name, mirroring how untrained learned approaches degrade.
    The trained forest is only requested when some segment actually asks for
    an ``"sc20"`` or ``"myopic"`` policy.
    """
    topology = ctx.scenario.topology
    if not topology.segments:
        return FallbackPolicy(NeverMitigatePolicy(), "Fleet-mix")
    cache: dict = {}

    def make(requested: Optional[str]) -> MitigationPolicy:
        name = requested or DEFAULT_SEGMENT_POLICY
        if name in cache:
            return cache[name]
        if name == "never":
            policy: MitigationPolicy = NeverMitigatePolicy()
        elif name == "always":
            policy = AlwaysMitigatePolicy()
        elif name == "oracle":
            policy = OraclePolicy()
        elif name in ("sc20", "myopic"):
            artifacts = ctx.sc20()
            if artifacts is None:
                policy = NeverMitigatePolicy()
            elif name == "sc20":
                policy = artifacts.optimal_policy
            else:
                policy = MyopicRFPolicy(
                    artifacts.optimal_policy, ctx.mitigation_cost
                )
        else:
            raise ValueError(
                f"unknown segment policy {name!r}; "
                f"valid names: {SEGMENT_POLICY_NAMES}"
            )
        cache[name] = policy
        return policy

    return SegmentedFleetPolicy(
        topology, [make(segment.policy) for segment in topology.segments]
    )
