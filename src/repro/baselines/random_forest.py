"""Random-forest classifier built on the from-scratch CART trees.

Used by the SC20-RF and Myopic-RF baselines.  Bootstrap sampling plus √d
feature subsampling per split, probability output as the mean of the trees'
leaf probabilities — the same recipe as the scikit-learn model used in the
original SC20 study.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.decision_tree import DecisionTreeClassifier
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


class RandomForestClassifier:
    """Bagged ensemble of CART trees with probability averaging."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 10,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features="sqrt",
        bootstrap: bool = True,
        seed=0,
    ) -> None:
        check_positive("n_estimators", n_estimators)
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self._seed = seed
        self._rng = as_generator(seed, "forest")
        self.trees_: List[DecisionTreeClassifier] = []
        self.n_features_: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        return bool(self.trees_)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit the ensemble on features ``X`` and binary labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2-D and aligned with y")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a forest on an empty dataset")
        self.n_features_ = X.shape[1]
        self.trees_ = []
        n = X.shape[0]
        for i in range(self.n_estimators):
            if self.bootstrap:
                sample = self._rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(self._rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean positive-class probability across the ensemble."""
        if not self.is_fitted:
            raise RuntimeError("the forest has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        total = np.zeros(X.shape[0], dtype=float)
        for tree in self.trees_:
            total += tree.predict_proba(X)
        return total / len(self.trees_)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary prediction at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)
