"""Random-forest classifier built on the from-scratch CART trees.

Used by the SC20-RF and Myopic-RF baselines.  Bootstrap sampling plus √d
feature subsampling per split, probability output as the mean of the trees'
leaf probabilities — the same recipe as the scikit-learn model used in the
original SC20 study.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.decision_tree import DecisionTreeClassifier
from repro.core import kernels
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


class RandomForestClassifier:
    """Bagged ensemble of CART trees with probability averaging."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 10,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features="sqrt",
        bootstrap: bool = True,
        seed=0,
    ) -> None:
        check_positive("n_estimators", n_estimators)
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self._seed = seed
        self._rng = as_generator(seed, "forest")
        self.trees_: List[DecisionTreeClassifier] = []
        self.n_features_: Optional[int] = None
        self._stacked: Optional[tuple] = None
        #: Bulk trace predictions shared across the SC20-family policies
        #: (written by ``SC20RandomForestPolicy.prepare_traces``).
        self._shared_trace_predictions: Optional[tuple] = None

    @property
    def is_fitted(self) -> bool:
        return bool(self.trees_)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit the ensemble on features ``X`` and binary labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2-D and aligned with y")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a forest on an empty dataset")
        self.n_features_ = X.shape[1]
        self.trees_ = []
        self._stacked = None
        self._shared_trace_predictions = None
        n = X.shape[0]
        for i in range(self.n_estimators):
            if self.bootstrap:
                sample = self._rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(self._rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)
        return self

    def _stacked_arrays(self) -> tuple:
        """All trees' flat node arrays concatenated, children re-offset.

        Lets one level-synchronous walk advance every (tree, row) pair at
        once instead of paying per-tree Python overhead; built lazily and
        cached until the next :meth:`fit`.
        """
        if self._stacked is None:
            features, thresholds, lefts, rights, probabilities = [], [], [], [], []
            roots = []
            offset = 0
            max_depth = 0
            for tree in self.trees_:
                feature, threshold, left, right, probability, depth = (
                    tree._flat_arrays()
                )
                roots.append(offset)
                features.append(feature)
                thresholds.append(threshold)
                # Re-offset children; leaf self-loops stay self-loops.
                lefts.append(left + offset)
                rights.append(right + offset)
                probabilities.append(probability)
                offset += len(feature)
                max_depth = max(max_depth, depth)
            self._stacked = (
                np.concatenate(features),
                np.concatenate(thresholds),
                np.concatenate(lefts),
                np.concatenate(rights),
                np.concatenate(probabilities),
                np.asarray(roots, dtype=np.int64),
                max_depth,
            )
        return self._stacked

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean positive-class probability across the ensemble.

        All (tree, row) pairs descend their tree together; each pair still
        performs exactly the comparisons a per-tree, per-row walk would, and
        the probability averaging folds the trees in fitting order — so the
        output is bitwise identical to the historical per-tree loop.
        """
        if not self.is_fitted:
            raise RuntimeError("the forest has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        feature, threshold, left, right, probability, roots, depth = (
            self._stacked_arrays()
        )
        n_rows = X.shape[0]
        n_trees = len(self.trees_)
        flat_x = np.ascontiguousarray(X).ravel()
        row_base = np.tile(
            np.arange(n_rows, dtype=np.int64) * X.shape[1], n_trees
        )
        node = np.repeat(roots, n_rows)
        compiled = kernels.active()
        if compiled is not None:
            # Same per-pair comparisons (leaf self-loops are no-ops), just
            # without one gather/where dispatch per tree level.
            node = compiled.forest_walk(
                flat_x, row_base, node, feature, threshold, left, right, depth
            )
        else:
            for _ in range(depth):
                values = flat_x[row_base + feature[node]]
                node = np.where(
                    values <= threshold[node], left[node], right[node]
                )
        per_tree = probability[node].reshape(n_trees, n_rows)
        total = np.zeros(n_rows, dtype=float)
        for k in range(n_trees):  # sequential fold: matches the per-tree loop
            total += per_tree[k]
        return total / n_trees

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Explicit batched probability prediction for a feature matrix.

        One ensemble pass per call: every tree routes all rows at once and
        the per-row probability averaging folds the trees in a fixed order,
        so predictions are bitwise identical to single-row calls — the
        property the vectorized evaluation runner relies on when it asks
        for one forest prediction per trace.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("predict_batch expects a 2-D feature matrix")
        return self.predict_proba(X)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary prediction at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)
