"""Baseline mitigation policies evaluated against the RL agent (Section 4.2).

* :class:`NeverMitigatePolicy` and :class:`AlwaysMitigatePolicy` — the two
  static baselines bounding the cost range.
* :class:`OraclePolicy` — mitigates exactly on the last event before each UE;
  the unrealisable optimum used to quantify the room for improvement.
* :class:`RandomForestClassifier` — a from-scratch random forest (CART trees,
  bagging, feature subsampling) standing in for the scikit-learn model used
  by the SC20 predictor.
* :class:`SC20RandomForestPolicy` — the state-of-the-art threshold-based
  predictor of Boixaderas et al. (SC20), with optimal or perturbed thresholds.
* :class:`MyopicRFPolicy` — the expected-cost extension of SC20-RF.
* :class:`FallbackPolicy` — delegate re-labelled under a learned approach's
  name, substituted when that approach has no history to train on.

Each of these is wired into the experiment driver through
:mod:`repro.evaluation.registry`: an ``ApproachSpec`` names the approach and
provides a ``build`` factory, so new baselines plug into the comparison
without touching the driver.
"""

from repro.baselines.dataset import PredictionDataset, build_prediction_dataset
from repro.baselines.decision_tree import DecisionTreeClassifier
from repro.baselines.myopic import MyopicRFPolicy
from repro.baselines.random_forest import RandomForestClassifier
from repro.baselines.sampling import random_undersample
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.baselines.static import (
    AlwaysMitigatePolicy,
    NeverMitigatePolicy,
    OraclePolicy,
    PeriodicMitigatePolicy,
)
from repro.core.policies import FallbackPolicy

__all__ = [
    "AlwaysMitigatePolicy",
    "DecisionTreeClassifier",
    "FallbackPolicy",
    "MyopicRFPolicy",
    "NeverMitigatePolicy",
    "OraclePolicy",
    "PeriodicMitigatePolicy",
    "PredictionDataset",
    "RandomForestClassifier",
    "SC20RandomForestPolicy",
    "build_prediction_dataset",
    "random_undersample",
    "train_sc20_forest",
]
