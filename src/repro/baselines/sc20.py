"""SC20-RF: the state-of-the-art random-forest predictor (Boixaderas et al., SC20).

The predictor outputs a value in [0, 1] interpreted as the probability of an
upcoming uncorrected error; a mitigation is triggered whenever that value
exceeds an externally supplied threshold.  The paper evaluates it with the
*optimal* threshold (maximum advantage) and with thresholds 2 % and 5 % away
from optimal, to show its sensitivity to this user-defined parameter.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dataset import PredictionDataset
from repro.baselines.random_forest import RandomForestClassifier
from repro.baselines.sampling import random_undersample
from repro.core.features import StateNormalizer
from repro.core.policies import DecisionContext, MitigationPolicy
from repro.utils.validation import check_fraction


def train_sc20_forest(
    dataset: PredictionDataset,
    n_estimators: int = 50,
    max_depth: int = 10,
    undersample_ratio: float = 1.0,
    seed=0,
) -> Tuple[RandomForestClassifier, float]:
    """Train the SC20 random forest with random under-sampling.

    Features are normalised with the same deterministic transform the RL
    agent uses, so both consume comparable inputs.  Returns the fitted forest
    and the wall-clock training time in seconds (charged to the policy by the
    cost–benefit analysis).
    """
    if len(dataset) == 0:
        raise ValueError("cannot train SC20-RF on an empty dataset")
    started = time.perf_counter()
    normalizer = StateNormalizer()
    X = normalizer.transform(
        np.concatenate([dataset.X, np.zeros((len(dataset), 1))], axis=1)
    )[:, :-1]
    X_bal, y_bal = random_undersample(X, dataset.y, undersample_ratio, seed=seed)
    forest = RandomForestClassifier(
        n_estimators=n_estimators, max_depth=max_depth, seed=seed
    )
    forest.fit(X_bal, y_bal)
    elapsed = time.perf_counter() - started
    return forest, elapsed


class SC20RandomForestPolicy(MitigationPolicy):
    """Threshold-based mitigation policy on top of the random forest.

    Parameters
    ----------
    forest:
        Fitted :class:`RandomForestClassifier`.
    threshold:
        Mitigation is triggered when the predicted probability is >= this.
    threshold_offset:
        Added to ``threshold`` to model the realistic sub-optimal settings
        SC20-RF-2 % / SC20-RF-5 % (the paper perturbs the optimal threshold
        by those amounts).
    name:
        Display name.
    training_cost_node_hours:
        Training/validation cost charged by the cost–benefit analysis.
    """

    def __init__(
        self,
        forest: RandomForestClassifier,
        threshold: float = 0.5,
        threshold_offset: float = 0.0,
        name: str = "SC20-RF",
        training_cost_node_hours: float = 0.0,
    ) -> None:
        check_fraction("threshold", threshold)
        self.forest = forest
        self.threshold = float(threshold)
        self.threshold_offset = float(threshold_offset)
        self.name = name
        self._training_cost = float(training_cost_node_hours)
        self._normalizer = StateNormalizer()
        self._trace_probabilities: Optional[np.ndarray] = None
        #: Bulk-prepared (features object, probabilities) pairs, consumed
        #: in order by :meth:`prepare_trace` (see :meth:`prepare_traces`).
        self._prepared_queue: List[Tuple[np.ndarray, np.ndarray]] = []
        self._prepared_cursor = 0
        #: Lockstep lookups into the bulk prediction: probability slice per
        #: feature-matrix identity, plus the stacked probability vector and
        #: each trace's row offset into it (see :meth:`prepare_traces`).
        self._prepared_by_id: Optional[Dict[int, np.ndarray]] = None
        self._stacked_probabilities: Optional[np.ndarray] = None
        self._stacked_offsets: Optional[Dict[int, int]] = None

    @property
    def effective_threshold(self) -> float:
        """Threshold actually applied (clipped to [0, 1])."""
        return float(np.clip(self.threshold + self.threshold_offset, 0.0, 1.0))

    def with_threshold(
        self, threshold: float, offset: float = 0.0, name: Optional[str] = None
    ) -> "SC20RandomForestPolicy":
        """Copy of this policy with a different threshold setting."""
        return SC20RandomForestPolicy(
            forest=self.forest,
            threshold=threshold,
            threshold_offset=offset,
            name=name or self.name,
            training_cost_node_hours=self._training_cost,
        )

    def predict_probability(self, features: np.ndarray) -> float:
        """Forest probability of an upcoming UE for one feature vector."""
        return float(self.predict_probabilities(np.atleast_2d(features))[0])

    def predict_probabilities(self, features: np.ndarray) -> np.ndarray:
        """Batch forest probabilities for a feature matrix."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        padded = np.concatenate(
            [features, np.zeros((features.shape[0], 1))], axis=1
        )
        normalised = self._normalizer.transform(padded)[:, :-1]
        return self.forest.predict_batch(normalised)

    def reset(self) -> None:
        self._trace_probabilities = None

    def prepare_trace(self, features: np.ndarray) -> None:
        """Cache the forest probabilities of a whole trace at once.

        Serves the cache from the bulk :meth:`prepare_traces` queue when the
        runner hands traces back in the prepared order (verified by object
        identity — any other flow just predicts directly; probabilities are
        bitwise identical either way because tree routing is per-row).
        """
        if self._prepared_cursor < len(self._prepared_queue):
            queued_features, probabilities = self._prepared_queue[
                self._prepared_cursor
            ]
            if queued_features is features:
                self._prepared_cursor += 1
                self._trace_probabilities = probabilities
                return
        self._trace_probabilities = self.predict_probabilities(features)

    def prepare_traces(self, traces) -> None:
        """One forest predict for a whole replay's worth of traces.

        The per-trace probability slices are additionally cached *on the
        forest*, keyed by the identity of the feature arrays: every policy
        sharing the forest — the SC20 threshold variants, Myopic-RF, and
        the 41-candidate optimal-threshold grid — replays the same traces,
        so the whole family costs one ensemble prediction instead of one
        per policy.  Holding references to the keyed arrays keeps the
        identity check sound; the cache holds at most one trace set (the
        next distinct set replaces it), its feature arrays are normally
        shared with the pipeline's process-wide trace cache anyway, and the
        runner clears each policy's queue at the end of the replay by
        calling ``prepare_traces(())``.
        """
        traces = [trace for trace in traces if len(trace)]
        if not traces:
            self._prepared_queue = []
            self._prepared_cursor = 0
            self._prepared_by_id = None
            self._stacked_probabilities = None
            self._stacked_offsets = None
            return
        key = tuple(id(trace.features) for trace in traces)
        cached = getattr(self.forest, "_shared_trace_predictions", None)
        if cached is not None and cached[0] == key:
            self._prepared_queue = cached[2]
            self._prepared_cursor = 0
            self._stacked_probabilities = cached[3]
            self._stacked_offsets = cached[4]
            self._prepared_by_id = cached[5]
            return
        stacked = np.concatenate([trace.features for trace in traces])
        probabilities = self.predict_probabilities(stacked)
        queue: List[Tuple[np.ndarray, np.ndarray]] = []
        by_id: Dict[int, np.ndarray] = {}
        offsets: Dict[int, int] = {}
        offset = 0
        for trace in traces:
            piece = probabilities[offset : offset + len(trace)]
            queue.append((trace.features, piece))
            by_id[id(trace.features)] = piece
            offsets[id(trace.features)] = offset
            offset += len(trace)
        # (key, keyed array references — they pin the ids —, slices,
        #  stacked probabilities, per-trace offsets, slices by identity)
        self.forest._shared_trace_predictions = (
            key,
            [trace.features for trace in traces],
            queue,
            probabilities,
            offsets,
            by_id,
        )
        self._prepared_queue = queue
        self._prepared_cursor = 0
        self._stacked_probabilities = probabilities
        self._stacked_offsets = offsets
        self._prepared_by_id = by_id

    def stacked_probabilities(
        self,
    ) -> Tuple[Optional[np.ndarray], Optional[Dict[int, int]]]:
        """The bulk prediction as ``(stacked vector, offsets by identity)``.

        ``offsets`` maps ``id(trace.features)`` to the trace's first row in
        the stacked vector; both are ``None`` before :meth:`prepare_traces`.
        Myopic-RF's ``decide_windows`` gathers arbitrary multi-trace window
        batches out of this with one fancy-index.
        """
        return self._stacked_probabilities, self._stacked_offsets

    def probability_for(self, context: DecisionContext) -> float:
        """Probability of an upcoming UE at this decision point.

        Uses the per-trace cache when available (the common path in the
        evaluation runner) and falls back to a single prediction otherwise.
        """
        cache = self._trace_probabilities
        if cache is not None and 0 <= context.event_index < len(cache):
            return float(cache[context.event_index])
        return self.predict_probability(context.features)

    def decide(self, context: DecisionContext) -> bool:
        return self.probability_for(context) >= self.effective_threshold

    def decide_batch(
        self,
        trace,
        ue_costs=None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        """Threshold the per-trace probability cache in one comparison.

        Uses exactly the probabilities sequential :meth:`decide` calls read
        (the :meth:`prepare_trace` cache, or one batched forest predict when
        the cache is absent), so the decisions match bit for bit.
        """
        stop = len(trace) if stop is None else stop
        return self.trace_probabilities(trace)[start:stop] >= self.effective_threshold

    def trace_probabilities(self, trace) -> np.ndarray:
        """Forest probabilities for every event of a trace (cached).

        The bulk :meth:`prepare_traces` cache is consulted first, by the
        identity of the trace's feature matrix — the lockstep runner asks
        for different traces' windows back to back, so a cache validated by
        the *current* trace alone would thrash (or, worse, alias two traces
        of equal length).  The per-trace :meth:`prepare_trace` cache covers
        the remaining single-trace flows.
        """
        by_id = self._prepared_by_id
        if by_id is not None:
            cached = by_id.get(id(trace.features))
            if cached is not None:
                return cached
        cache = self._trace_probabilities
        if cache is None or len(cache) != len(trace):
            self.prepare_trace(trace.features)
            cache = self._trace_probabilities
        return cache

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One forest gather for a whole micro-batch of concurrent nodes.

        Tree routing is per-row, so the probabilities (and therefore the
        thresholded decisions) are bitwise identical to per-node ``decide``
        calls and to the offline trace replay over the same feature rows.
        """
        return self.predict_probabilities(features) >= self.effective_threshold

    @property
    def training_cost_node_hours(self) -> float:
        return self._training_cost

    @staticmethod
    def threshold_grid(n: int = 41) -> np.ndarray:
        """Grid of candidate thresholds used to find the optimal one."""
        return np.linspace(0.0, 1.0, int(n))

    @staticmethod
    def variant_name(offset: float) -> str:
        """Canonical display name of a perturbed-threshold variant.

        The approach registry and the experiment driver must agree on the
        names of the SC20-RF-2% / SC20-RF-5% bars, so the formatting lives
        here, next to the policy they label.
        """
        return f"SC20-RF-{int(round(offset * 100))}%"
