"""Myopic-RF: the expected-cost extension of SC20-RF (Section 4.2).

Myopic-RF adapts to the current potential UE cost without reinforcement
learning: it triggers a mitigation whenever the expected cost of doing
nothing — the predicted UE probability times the cost the UE would have —
exceeds the cost of the mitigation.  The paper shows that this seemingly
reasonable policy underperforms because the random-forest output is not a
calibrated probability.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.sc20 import SC20RandomForestPolicy
from repro.core.policies import (
    DecisionContext,
    MitigationPolicy,
    WindowSpec,
    concat_ranges,
)
from repro.utils.validation import check_non_negative


class MyopicRFPolicy(MitigationPolicy):
    """Mitigate when ``P(UE) × UE_cost > mitigation_cost``."""

    #: The decision depends on the potential UE cost, which mitigations of
    #: restartable jobs reset — the runner resolves the feedback loop.
    cost_dependent = True

    def __init__(
        self,
        sc20_policy: SC20RandomForestPolicy,
        mitigation_cost_node_hours: float,
        name: str = "Myopic-RF",
    ) -> None:
        check_non_negative("mitigation_cost_node_hours", mitigation_cost_node_hours)
        self.sc20_policy = sc20_policy
        self.mitigation_cost = float(mitigation_cost_node_hours)
        self.name = name

    def reset(self) -> None:
        self.sc20_policy.reset()

    def prepare_trace(self, features) -> None:
        self.sc20_policy.prepare_trace(features)

    def prepare_traces(self, traces) -> None:
        self.sc20_policy.prepare_traces(traces)

    def decide(self, context: DecisionContext) -> bool:
        probability = self.sc20_policy.probability_for(context)
        expected_ue_cost = probability * context.ue_cost
        return expected_ue_cost > self.mitigation_cost

    def decide_batch(
        self,
        trace,
        ue_costs: Optional[np.ndarray] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        """Element-wise expected-cost rule over the cached forest outputs."""
        if ue_costs is None:
            return None
        stop = len(trace) if stop is None else stop
        probabilities = self.sc20_policy.trace_probabilities(trace)[start:stop]
        expected = probabilities * np.asarray(ue_costs, dtype=float)
        return expected > self.mitigation_cost

    def decide_windows(
        self,
        windows: Sequence[WindowSpec],
        ue_costs: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """All windows of a lockstep round in one expected-cost comparison.

        Gathers every window's forest probabilities out of the stacked bulk
        prediction (see :meth:`SC20RandomForestPolicy.prepare_traces`) with
        one fancy-index and applies the element-wise rule once — the same
        multiply/compare, on the same values, as per-window
        :meth:`decide_batch` calls, so the decisions match bit for bit.
        Falls back to the per-window default when the bulk cache is absent
        or a window's trace is not part of the prepared panel.
        """
        if ue_costs is None:
            return None
        stacked, offsets = self.sc20_policy.stacked_probabilities()
        if stacked is None or offsets is None:
            return super().decide_windows(windows, ue_costs)
        starts = np.empty(len(windows), dtype=np.int64)
        stops = np.empty(len(windows), dtype=np.int64)
        for k, (trace, start, stop) in enumerate(windows):
            base = offsets.get(id(trace.features))
            if base is None:
                return super().decide_windows(windows, ue_costs)
            starts[k] = base + start
            stops[k] = base + stop
        rows, _ = concat_ranges(starts, stops)
        expected = stacked[rows] * np.asarray(ue_costs, dtype=float)
        return expected > self.mitigation_cost

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Expected-cost rule over one forest gather for a serving tick.

        The same multiply/compare, on the same per-row probabilities, as the
        scalar :meth:`decide`, so serving decisions match offline replay bit
        for bit.
        """
        probabilities = self.sc20_policy.predict_probabilities(features)
        expected = probabilities * np.asarray(ue_costs, dtype=float)
        return expected > self.mitigation_cost

    @property
    def training_cost_node_hours(self) -> float:
        """Shares the forest (and its training cost) with the SC20 policy."""
        return self.sc20_policy.training_cost_node_hours
