"""Myopic-RF: the expected-cost extension of SC20-RF (Section 4.2).

Myopic-RF adapts to the current potential UE cost without reinforcement
learning: it triggers a mitigation whenever the expected cost of doing
nothing — the predicted UE probability times the cost the UE would have —
exceeds the cost of the mitigation.  The paper shows that this seemingly
reasonable policy underperforms because the random-forest output is not a
calibrated probability.
"""

from __future__ import annotations

from repro.baselines.sc20 import SC20RandomForestPolicy
from repro.core.policies import DecisionContext, MitigationPolicy
from repro.utils.validation import check_non_negative


class MyopicRFPolicy(MitigationPolicy):
    """Mitigate when ``P(UE) × UE_cost > mitigation_cost``."""

    def __init__(
        self,
        sc20_policy: SC20RandomForestPolicy,
        mitigation_cost_node_hours: float,
        name: str = "Myopic-RF",
    ) -> None:
        check_non_negative("mitigation_cost_node_hours", mitigation_cost_node_hours)
        self.sc20_policy = sc20_policy
        self.mitigation_cost = float(mitigation_cost_node_hours)
        self.name = name

    def reset(self) -> None:
        self.sc20_policy.reset()

    def prepare_trace(self, features) -> None:
        self.sc20_policy.prepare_trace(features)

    def decide(self, context: DecisionContext) -> bool:
        probability = self.sc20_policy.probability_for(context)
        expected_ue_cost = probability * context.ue_cost
        return expected_ue_cost > self.mitigation_cost

    @property
    def training_cost_node_hours(self) -> float:
        """Shares the forest (and its training cost) with the SC20 policy."""
        return self.sc20_policy.training_cost_node_hours
