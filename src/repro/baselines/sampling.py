"""Class-imbalance handling for the prediction-based baselines.

The SC20 study found that random under-sampling of the (overwhelmingly
dominant) negative class gave the best random-forest results; the RL method
instead relies on prioritized experience replay (Section 3.3.4).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


def random_undersample(
    X: np.ndarray,
    y: np.ndarray,
    majority_ratio: float = 1.0,
    seed=0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Under-sample the majority (negative) class.

    Parameters
    ----------
    X, y:
        Feature matrix and binary labels.
    majority_ratio:
        Number of retained negatives per positive (1.0 = balanced).
    seed:
        RNG seed.

    Returns the under-sampled ``(X, y)``; when there are no positives, the
    original arrays are returned unchanged (there is nothing to balance
    against).
    """
    check_positive("majority_ratio", majority_ratio)
    X = np.asarray(X, dtype=float)
    y = np.asarray(y).ravel()
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y must be aligned")
    positives = np.flatnonzero(y == 1)
    negatives = np.flatnonzero(y == 0)
    if positives.size == 0 or negatives.size == 0:
        return X, y
    rng = as_generator(seed, "undersample")
    n_keep = int(round(majority_ratio * positives.size))
    n_keep = max(1, min(n_keep, negatives.size))
    kept_negatives = rng.choice(negatives, size=n_keep, replace=False)
    selected = np.sort(np.concatenate([positives, kept_negatives]))
    return X[selected], y[selected]
