"""Per-node job state for the online decision service.

The potential UE cost of a decision point (Equation 3) depends on the job
running on the node at that instant.  Offline, :func:`repro.evaluation.runner
.build_traces` samples one :class:`~repro.workload.sampling.NodeJobTimeline`
per node; online, the service asks a *job state provider* for the timeline of
a node the first time that node produces a decision step.

Three providers cover the serving scenarios:

* :class:`TimelineJobProvider` serves explicit, pre-built timelines — the
  exact-equivalence configuration (hand the service the timelines of an
  offline trace panel and its decisions replay bit for bit);
* :class:`SampledJobProvider` derives each node's timeline from a
  :class:`~repro.workload.sampling.JobSequenceSampler` with the *same*
  per-node RNG streams as ``build_traces`` — a serving daemon pointed at the
  scenario's job log and seed reconstructs the offline workloads;
* :class:`ConstantJobProvider` models one everlasting job per node — the
  minimal stand-in when no job log is available (e.g. tailing a raw mcelog
  file).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from repro.utils.rng import RngFactory
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.sampling import JobSequenceSampler, NodeJobTimeline


@runtime_checkable
class JobStateProvider(Protocol):
    """Answers "what jobs run on node ``n``?" for the decision service."""

    def timeline_for(self, node: int) -> NodeJobTimeline:
        """Return the job timeline of ``node`` (stable across calls)."""
        ...


class TimelineJobProvider:
    """Serve explicit per-node timelines (with an optional fallback).

    Parameters
    ----------
    timelines:
        Mapping from node id to its job timeline — typically
        ``{trace.node: trace.timeline for trace in traces}`` when checking
        serving against an offline replay.
    fallback:
        Provider consulted for nodes absent from ``timelines``; by default
        unknown nodes raise ``KeyError``.
    """

    def __init__(
        self,
        timelines: Dict[int, NodeJobTimeline],
        fallback: Optional[JobStateProvider] = None,
    ) -> None:
        self._timelines = dict(timelines)
        self._fallback = fallback

    def timeline_for(self, node: int) -> NodeJobTimeline:
        timeline = self._timelines.get(node)
        if timeline is not None:
            return timeline
        if self._fallback is not None:
            return self._fallback.timeline_for(node)
        raise KeyError(f"no job timeline registered for node {node}")


class SampledJobProvider:
    """Sample per-node timelines exactly as the offline trace builder does.

    Uses the same ``RngFactory(seed).stream(f"node-{node}")`` derivation as
    :func:`repro.evaluation.runner.build_traces`, so a service configured
    with the scenario's job sampler, seed and evaluation range sees the
    identical workload a ``build_traces`` panel charges — node by node, job
    by job.  Timelines are cached per node (the provider must answer the
    same timeline on every call).
    """

    def __init__(
        self,
        job_sampler: JobSequenceSampler,
        t_start: float,
        t_end: float,
        seed: int = 0,
    ) -> None:
        check_positive("time range", t_end - t_start)
        self._sampler = job_sampler
        self._t_start = float(t_start)
        self._t_end = float(t_end)
        self._factory = RngFactory(seed)
        self._cache: Dict[int, NodeJobTimeline] = {}

    def timeline_for(self, node: int) -> NodeJobTimeline:
        timeline = self._cache.get(node)
        if timeline is None:
            timeline = self._sampler.sample_timeline(
                self._t_start, self._t_end, rng=self._factory.stream(f"node-{node}")
            )
            self._cache[node] = timeline
        return timeline


class ConstantJobProvider:
    """One everlasting job per node — the job-log-free default.

    Every node runs a single job of ``n_nodes`` nodes that started at
    ``job_start``; the potential UE cost grows linearly with the time since
    the job start (or since the last mitigation, for restartable jobs).
    """

    def __init__(self, n_nodes: float = 1.0, job_start: float = 0.0) -> None:
        check_positive("n_nodes", n_nodes)
        check_non_negative("job_start", job_start)
        self._timeline = NodeJobTimeline(
            starts=np.asarray([float(job_start)]),
            durations=np.asarray([1e18]),
            n_nodes=np.asarray([float(n_nodes)]),
        )

    def timeline_for(self, node: int) -> NodeJobTimeline:
        return self._timeline
