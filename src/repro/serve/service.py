"""The micro-batched online decision service (the ``repro.serve`` daemon).

A fleet-scale deployment of the paper's mitigation policies cannot afford
one model evaluation per node event: UE storms deliver bursts of correlated
events across many nodes at once.  :class:`DecisionService` therefore runs a
single asyncio loop that

1. ingests an mcelog event stream (replayed or tailed, see
   :mod:`repro.serve.sources`) into one incremental
   :class:`~repro.core.features.OnlineFeatureState` per node,
2. finalises merged decision steps the moment the stream clock passes their
   merge window (a deadline heap keys the open groups), and
3. *micro-batches* the nodes with pending steps: each tick stacks one step
   per ready node and answers them all with a single
   :meth:`~repro.core.policies.MitigationPolicy.decide_nodes` call — one
   forest gather or one DQN GEMM serves the whole batch.

A tick fires as soon as ``max_batch`` nodes are ready or ``max_delay``
wall-clock seconds after the first step of the open batch arrived, whichever
comes first — the classical throughput/latency knob pair of a batching RPC
server.

Equivalence with the offline replay is exact, not approximate: the per-node
step sequence is bit-identical to :func:`~repro.core.features
.extract_node_features` (pinned by the online feature tests), the potential
UE cost at each step is computed by the same
:meth:`~repro.workload.sampling.NodeJobTimeline.potential_ue_cost` scalar
operations the sequential reference replay uses, at most one step per node
is decided per tick (so a mitigation's cost reset is visible to the node's
next step, exactly as in the sequential replay), and the cost totals fold in
the same order as the evaluation runner's accumulator.  The serve
equivalence suite pins decisions and totals against
:func:`~repro.evaluation.runner.replay_decision_masks` and
:func:`~repro.evaluation.runner.evaluate_policy` for the forest and RL
policies alike.
"""

from __future__ import annotations

import asyncio
import contextlib
import heapq
import time as time_module
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.features import OnlineFeatureState, OnlineStep
from repro.core.policies import MitigationPolicy
from repro.serve.jobs import JobStateProvider
from repro.serve.sources import ReplaySource
from repro.telemetry.records import EventRecord
from repro.utils.timeutils import MINUTE
from repro.utils.validation import check_non_negative, check_positive
from repro.workload.sampling import NodeJobTimeline

#: End-of-stream marker on the ingestion queue.
_EOF = object()


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the online decision service.

    ``max_batch`` and ``max_delay_seconds`` trade throughput for decision
    latency: a tick fires when ``max_batch`` nodes have a pending step or
    ``max_delay_seconds`` after the first pending step arrived, whichever
    comes first.  They only shape *when* model calls happen — decisions are
    invariant under any setting (pinned by the batching-invariance test).
    """

    mitigation_cost_node_hours: float = 1.0
    restartable: bool = True
    max_batch: int = 64
    max_delay_seconds: float = 0.05
    merge_window_seconds: float = MINUTE
    queue_size: int = 4096
    keep_decisions: bool = True

    def __post_init__(self) -> None:
        check_non_negative("mitigation_cost_node_hours", self.mitigation_cost_node_hours)
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        check_non_negative("max_delay_seconds", self.max_delay_seconds)
        check_positive("merge_window_seconds", self.merge_window_seconds)
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")


@dataclass(frozen=True)
class DecisionRecord:
    """One entry of the per-node decision log."""

    tick: int
    node: int
    time: float
    ue_cost: float
    mitigate: bool
    is_ue: bool

    def to_dict(self) -> Dict:
        """JSONL-ready representation (the ``--decision-log`` format)."""
        return {
            "tick": self.tick,
            "node": self.node,
            "time": self.time,
            "ue_cost": self.ue_cost,
            "mitigate": self.mitigate,
            "is_ue": self.is_ue,
        }


@dataclass(frozen=True)
class ServeReport:
    """Outcome and telemetry of one service run.

    ``masks`` holds, per node, one boolean per merged step in step order
    (``False`` at UE steps) — directly comparable to the offline
    :func:`~repro.evaluation.runner.replay_decision_masks` of the same
    panel.  ``ue_cost_node_hours`` / ``mitigation_cost_node_hours`` fold
    exactly as the evaluation runner's accumulator does, so they equal the
    corresponding :class:`~repro.evaluation.costs.CostBreakdown` fields of
    an offline :func:`~repro.evaluation.runner.evaluate_policy` run.
    """

    policy_name: str
    n_events: int
    n_steps: int
    n_decision_points: int
    n_ues: int
    n_mitigations: int
    n_ticks: int
    wall_seconds: float
    ue_cost_node_hours: float
    mitigation_cost_node_hours: float
    masks: Dict[int, np.ndarray]
    batch_sizes: np.ndarray
    tick_latencies: np.ndarray
    decisions: List[DecisionRecord] = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        """Mean decision-batch size across non-empty ticks."""
        if self.batch_sizes.size == 0:
            return 0.0
        return float(np.mean(self.batch_sizes))

    @property
    def decisions_per_second(self) -> float:
        """Decision throughput over the whole run."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_decision_points / self.wall_seconds

    def latency_seconds(self, percentile: float) -> float:
        """Tick-latency percentile in seconds (e.g. ``50`` / ``99``)."""
        if self.tick_latencies.size == 0:
            return 0.0
        return float(np.percentile(self.tick_latencies, percentile))

    def batch_size_histogram(self) -> Dict[int, int]:
        """``{batch size: number of ticks}`` over the run."""
        return dict(sorted(Counter(int(b) for b in self.batch_sizes).items()))

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        return (
            f"{self.policy_name}: {self.n_events} events -> {self.n_steps} steps "
            f"({self.n_decision_points} decision points, {self.n_ues} UEs) in "
            f"{self.n_ticks} ticks; {self.n_mitigations} mitigations; "
            f"mean batch {self.mean_batch_size:.1f}, "
            f"{self.decisions_per_second:,.0f} decisions/s, "
            f"tick p50 {self.latency_seconds(50) * 1e3:.2f} ms / "
            f"p99 {self.latency_seconds(99) * 1e3:.2f} ms; "
            f"UE cost {self.ue_cost_node_hours:,.1f} node-h, "
            f"mitigation cost {self.mitigation_cost_node_hours:,.1f} node-h"
        )


class _NodeState:
    """Everything the service tracks for one node."""

    __slots__ = (
        "features",
        "pending",
        "timeline",
        "last_mitigation",
        "mask",
        "ue_costs",
        "pushed_deadline",
    )

    def __init__(self, features: OnlineFeatureState, timeline: NodeJobTimeline) -> None:
        self.features = features
        self.pending: Deque[OnlineStep] = deque()
        self.timeline = timeline
        self.last_mitigation: Optional[float] = None
        self.mask: List[bool] = []
        self.ue_costs: List[float] = []
        #: Deadline of the open merge group already on the service heap
        #: (deadlines only grow, so equality is enough to dedupe pushes).
        self.pushed_deadline: Optional[float] = None


class DecisionService:
    """Long-lived micro-batching decision loop over an async event source.

    One instance serves one stream; :meth:`run` consumes the source to
    exhaustion (or forever, for a following tail) and returns the
    :class:`ServeReport`.  The policy must implement ``decide_nodes`` for
    batched ticks — every built-in online-servable policy does; the base
    class falls back to per-row ``decide`` calls.
    """

    def __init__(
        self,
        policy: MitigationPolicy,
        jobs: JobStateProvider,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self._policy = policy
        self._jobs = jobs
        self._config = config or ServeConfig()
        self._nodes: Dict[int, _NodeState] = {}
        self._ready: set = set()
        self._deadlines: List = []
        self._clock: Optional[float] = None
        self._n_events = 0
        self._n_steps = 0
        self._n_decision_points = 0
        self._n_ues = 0
        self._n_mitigations = 0
        self._tick_index = 0
        self._batch_sizes: List[int] = []
        self._tick_latencies: List[float] = []
        self._decisions: List[DecisionRecord] = []

    # ------------------------------------------------------------------ #
    # ingestion                                                          #
    # ------------------------------------------------------------------ #

    def _node_state(self, node: int) -> _NodeState:
        state = self._nodes.get(node)
        if state is None:
            state = _NodeState(
                OnlineFeatureState(
                    node, merge_window_seconds=self._config.merge_window_seconds
                ),
                self._jobs.timeline_for(node),
            )
            self._nodes[node] = state
        return state

    def _ingest(self, record: EventRecord) -> None:
        if self._clock is not None and record.time < self._clock:
            raise ValueError(
                f"event stream must be time-ordered (got t={record.time!r} "
                f"after t={self._clock!r})"
            )
        self._clock = record.time
        self._n_events += 1
        state = self._node_state(record.node)
        steps = state.features.absorb(record)
        if steps:
            state.pending.extend(steps)
            self._ready.add(record.node)
        deadline = state.features.open_group_deadline
        if deadline is not None and deadline != state.pushed_deadline:
            heapq.heappush(self._deadlines, (deadline, record.node))
            state.pushed_deadline = deadline
        self._expire_deadlines()

    def _expire_deadlines(self) -> None:
        """Finalise every open group the stream clock has passed.

        Safe because the stream is globally time-ordered: any node's next
        event is no earlier than the current clock, which is exactly the
        :meth:`OnlineFeatureState.advance_to` precondition.
        """
        clock = self._clock
        while self._deadlines and self._deadlines[0][0] <= clock:
            deadline, node = heapq.heappop(self._deadlines)
            state = self._nodes[node]
            if state.features.open_group_deadline != deadline:
                continue  # stale entry: the group already closed
            steps = state.features.advance_to(clock)
            state.pushed_deadline = None
            if steps:
                state.pending.extend(steps)
                self._ready.add(node)

    def _flush_all(self) -> None:
        """Force-close every open group (end of stream)."""
        self._deadlines.clear()
        for node in sorted(self._nodes):
            state = self._nodes[node]
            steps = state.features.flush()
            state.pushed_deadline = None
            if steps:
                state.pending.extend(steps)
                self._ready.add(node)

    # ------------------------------------------------------------------ #
    # micro-batched ticks                                                #
    # ------------------------------------------------------------------ #

    def _account_ue(self, state: _NodeState, step: OnlineStep) -> None:
        cost = state.timeline.potential_ue_cost(
            step.time, state.last_mitigation, self._config.restartable
        )
        state.ue_costs.append(cost)
        state.mask.append(False)
        # The node reboots after the UE; the next job starts fresh.
        state.last_mitigation = None
        self._n_ues += 1
        self._n_steps += 1
        if self._config.keep_decisions:
            self._decisions.append(
                DecisionRecord(
                    tick=self._tick_index,
                    node=step.node,
                    time=step.time,
                    ue_cost=cost,
                    mitigate=False,
                    is_ue=True,
                )
            )

    def _tick(self) -> None:
        """Decide one pending step per ready node, all in one policy call."""
        started = time_module.perf_counter()
        batch_nodes: List[int] = []
        batch_steps: List[OnlineStep] = []
        batch_costs: List[float] = []
        for node in sorted(self._ready):
            state = self._nodes[node]
            # Terminal (UE) steps never reach the policy: account the UE
            # cost under the node's current mitigation state and reset it.
            while state.pending and state.pending[0].is_ue:
                self._account_ue(state, state.pending.popleft())
            if not state.pending:
                self._ready.discard(node)
                continue
            if len(batch_nodes) >= self._config.max_batch:
                break
            step = state.pending.popleft()
            cost = state.timeline.potential_ue_cost(
                step.time, state.last_mitigation, self._config.restartable
            )
            batch_nodes.append(node)
            batch_steps.append(step)
            batch_costs.append(cost)

        if batch_nodes:
            features = np.stack([step.features for step in batch_steps])
            ue_costs = np.asarray(batch_costs, dtype=float)
            times = np.asarray([step.time for step in batch_steps])
            nodes = np.asarray(batch_nodes, dtype=np.int64)
            result = self._policy.decide_nodes(
                features, ue_costs, times=times, nodes=nodes
            )
            decisions = np.asarray(result, dtype=bool)
            if decisions.shape != (len(batch_nodes),):
                raise ValueError(
                    f"decide_nodes of {self._policy.name!r} returned shape "
                    f"{decisions.shape}, expected ({len(batch_nodes)},)"
                )
            for node, step, cost, mitigate in zip(
                batch_nodes, batch_steps, batch_costs, decisions
            ):
                state = self._nodes[node]
                mitigate = bool(mitigate)
                state.mask.append(mitigate)
                if mitigate:
                    state.last_mitigation = step.time
                    self._n_mitigations += 1
                self._n_decision_points += 1
                self._n_steps += 1
                if self._config.keep_decisions:
                    self._decisions.append(
                        DecisionRecord(
                            tick=self._tick_index,
                            node=node,
                            time=step.time,
                            ue_cost=cost,
                            mitigate=mitigate,
                            is_ue=False,
                        )
                    )
                if not state.pending:
                    self._ready.discard(node)
            self._batch_sizes.append(len(batch_nodes))
            self._tick_latencies.append(time_module.perf_counter() - started)
            self._tick_index += 1

    # ------------------------------------------------------------------ #
    # main loop                                                          #
    # ------------------------------------------------------------------ #

    async def run(self, source) -> ServeReport:
        """Consume ``source`` to exhaustion and return the run report."""
        started = time_module.perf_counter()
        queue: asyncio.Queue = asyncio.Queue(maxsize=self._config.queue_size)

        async def _produce() -> None:
            try:
                async for record in source:
                    await queue.put(record)
            except asyncio.CancelledError:
                raise
            except BaseException:
                # The source failed: the consumer must still see the end
                # marker (so run() reaches ``await producer`` and re-raises
                # this error), but a plain put could block on a full queue.
                while True:
                    try:
                        queue.put_nowait(_EOF)
                        break
                    except asyncio.QueueFull:
                        await asyncio.sleep(0)
                raise
            else:
                await queue.put(_EOF)

        producer = asyncio.create_task(_produce())
        try:
            await self._consume(queue)
        except BaseException:
            producer.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await producer
            raise
        await producer
        return self._report(time_module.perf_counter() - started)

    async def _consume(self, queue: asyncio.Queue) -> None:
        loop = asyncio.get_running_loop()
        max_batch = self._config.max_batch
        max_delay = self._config.max_delay_seconds
        batch_deadline: Optional[float] = None
        eof = False
        while not eof:
            # Drain whatever already arrived (up to one batch's worth).
            while len(self._ready) < max_batch:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _EOF:
                    eof = True
                    break
                self._ingest(item)
            if eof:
                break
            if len(self._ready) >= max_batch:
                self._tick()
                batch_deadline = None
                continue
            if self._ready:
                if batch_deadline is None:
                    batch_deadline = loop.time() + max_delay
                remaining = batch_deadline - loop.time()
                if remaining <= 0:
                    self._tick()
                    batch_deadline = None
                    continue
                try:
                    item = await asyncio.wait_for(queue.get(), timeout=remaining)
                except asyncio.TimeoutError:
                    self._tick()
                    batch_deadline = None
                    continue
            else:
                batch_deadline = None
                item = await queue.get()
            if item is _EOF:
                eof = True
            else:
                self._ingest(item)
        # End of stream: close every open merge group and drain the backlog.
        self._flush_all()
        while self._ready:
            self._tick()

    # ------------------------------------------------------------------ #
    # reporting                                                          #
    # ------------------------------------------------------------------ #

    def _report(self, wall_seconds: float) -> ServeReport:
        # Cost totals fold exactly as the evaluation runner's accumulator:
        # per-node UE-cost chunks concatenated in sorted-node (= panel)
        # order and left-folded with np.add.accumulate; the mitigation
        # total is the same fold of the unit cost repeated per mitigation.
        chunks = [
            np.asarray(self._nodes[node].ue_costs, dtype=np.float64)
            for node in sorted(self._nodes)
            if self._nodes[node].ue_costs
        ]
        if chunks:
            ue_cost = float(np.add.accumulate(np.concatenate(chunks))[-1])
        else:
            ue_cost = 0.0
        if self._n_mitigations:
            repeated = np.full(
                self._n_mitigations, self._config.mitigation_cost_node_hours
            )
            mitigation_cost = float(np.add.accumulate(repeated)[-1])
        else:
            mitigation_cost = 0.0
        return ServeReport(
            policy_name=self._policy.name,
            n_events=self._n_events,
            n_steps=self._n_steps,
            n_decision_points=self._n_decision_points,
            n_ues=self._n_ues,
            n_mitigations=self._n_mitigations,
            n_ticks=self._tick_index,
            wall_seconds=wall_seconds,
            ue_cost_node_hours=ue_cost,
            mitigation_cost_node_hours=mitigation_cost,
            masks={
                node: np.asarray(self._nodes[node].mask, dtype=bool)
                for node in sorted(self._nodes)
            },
            batch_sizes=np.asarray(self._batch_sizes, dtype=np.int64),
            tick_latencies=np.asarray(self._tick_latencies, dtype=np.float64),
            decisions=self._decisions,
        )


def serve_log(
    log,
    policy: MitigationPolicy,
    jobs: JobStateProvider,
    config: Optional[ServeConfig] = None,
    speed: Optional[float] = None,
) -> ServeReport:
    """Serve a whole error log through a fresh service (sync convenience).

    ``speed=None`` replays unthrottled (maximal batching); a positive value
    replays at that multiple of real time, exercising the max-delay path.
    """
    service = DecisionService(policy, jobs, config)
    return asyncio.run(service.run(ReplaySource(log, speed=speed)))
