"""Asynchronous mcelog event sources for the decision service.

A *source* is anything the service can ``async for`` over to obtain
:class:`~repro.telemetry.records.EventRecord` objects in non-decreasing time
order.  Two implementations cover replay and live ingestion:

* :class:`ReplaySource` replays an in-memory :class:`~repro.telemetry
  .error_log.ErrorLog` (or any record sequence), optionally throttled to a
  multiple of real time — the "UE storm at 1000x" benchmark mode;
* :class:`TailSource` tails an mcelog-format file through
  :func:`~repro.telemetry.mcelog.iter_mcelog_records`, preserving the
  parser's 1-based line numbers in error messages and optionally following
  the file as a daemon would (``tail -f``).
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import AsyncIterator, Iterable, Optional, Union

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.mcelog import iter_mcelog_records
from repro.telemetry.records import EventRecord
from repro.utils.validation import check_positive


class ReplaySource:
    """Replay an error log (or record iterable) as an async event stream.

    Parameters
    ----------
    events:
        An :class:`ErrorLog` or an iterable of :class:`EventRecord` in
        non-decreasing time order.
    speed:
        ``None`` replays as fast as the consumer drains (offline
        equivalence runs); a positive float maps event time to wall time at
        that multiple of real time — ``speed=3600`` compresses an hour of
        telemetry into one second, the replayed-at-speed storm mode.
    """

    def __init__(
        self,
        events: Union[ErrorLog, Iterable[EventRecord]],
        speed: Optional[float] = None,
    ) -> None:
        if speed is not None:
            check_positive("speed", speed)
        self._events = events
        self._speed = speed

    async def __aiter__(self) -> AsyncIterator[EventRecord]:
        speed = self._speed
        loop = asyncio.get_running_loop()
        anchor_event: Optional[float] = None
        anchor_wall = 0.0
        for count, record in enumerate(iter(self._events)):
            if speed is not None:
                if anchor_event is None:
                    anchor_event = record.time
                    anchor_wall = loop.time()
                else:
                    target = anchor_wall + (record.time - anchor_event) / speed
                    delay = target - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
            elif count % 1024 == 1023:
                # Unthrottled replay still yields to the event loop now and
                # then so the consumer can interleave ticks with ingestion.
                await asyncio.sleep(0)
            yield record


class TailSource:
    """Tail an mcelog-format file as an async event stream.

    Parameters
    ----------
    path:
        The mcelog dump / spool file to read.
    follow:
        ``False`` (default) stops at end of file; ``True`` keeps polling
        for appended lines like ``tail -f`` (stop the service task to end).
    poll_seconds:
        Sleep between polls when following an idle file.

    Lines are parsed with the same hardened parser as the batch loader
    (comments and blank lines skipped, duplicate keys and negative fields
    rejected), and parse errors carry the 1-based line number of the
    offending line within the file.
    """

    def __init__(
        self,
        path: Union[str, Path],
        follow: bool = False,
        poll_seconds: float = 0.2,
    ) -> None:
        check_positive("poll_seconds", poll_seconds)
        self._path = Path(path)
        self._follow = bool(follow)
        self._poll_seconds = float(poll_seconds)

    async def __aiter__(self) -> AsyncIterator[EventRecord]:
        with open(self._path, "r", encoding="utf-8") as handle:
            lineno = 0
            partial = ""
            while True:
                chunk = handle.readline()
                if chunk == "":
                    if not self._follow:
                        if partial.strip():
                            for record in iter_mcelog_records(
                                [partial], start_lineno=lineno + 1
                            ):
                                yield record
                        return
                    await asyncio.sleep(self._poll_seconds)
                    continue
                partial += chunk
                if not partial.endswith("\n"):
                    # readline() hands back a torn line at EOF while a
                    # writer is mid-append; keep it until the newline lands.
                    continue
                line, partial = partial, ""
                lineno += 1
                for record in iter_mcelog_records([line], start_lineno=lineno):
                    yield record
