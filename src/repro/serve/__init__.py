"""Online micro-batched decision serving (``python -m repro serve``).

This package turns the offline evaluation stack into a long-lived daemon: an
asyncio loop tails an mcelog event stream, maintains one incremental
:class:`~repro.core.features.OnlineFeatureState` per node, and answers all
concurrently pending nodes with a single batched
:meth:`~repro.core.policies.MitigationPolicy.decide_nodes` call per tick.
Decisions are bit-identical to an offline
:func:`~repro.evaluation.runner.evaluate_policy` replay of the same events
(see :mod:`repro.serve.service` for the exactness argument).
"""

from repro.serve.jobs import (
    ConstantJobProvider,
    JobStateProvider,
    SampledJobProvider,
    TimelineJobProvider,
)
from repro.serve.service import (
    DecisionRecord,
    DecisionService,
    ServeConfig,
    ServeReport,
    serve_log,
)
from repro.serve.sources import ReplaySource, TailSource

__all__ = [
    "ConstantJobProvider",
    "DecisionRecord",
    "DecisionService",
    "JobStateProvider",
    "ReplaySource",
    "SampledJobProvider",
    "ServeConfig",
    "ServeReport",
    "TailSource",
    "TimelineJobProvider",
    "serve_log",
]
