"""Log preprocessing: UE burst reduction and DIMM-retirement bias removal.

Section 2.1.3: whenever a node encountered a UE it was removed from
production and tested for one week, so only the first UE of each burst (of up
to a week) affects a production workload.  Filtering the MareNostrum log this
way reduced 333 UEs to 67.

Section 2.1.4: DIMMs that were administratively retired introduce a bias
(their future is unknowable), so every sample belonging to such DIMMs is
removed from training and evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.records import EventKind
from repro.utils.timeutils import WEEK


@dataclass(frozen=True)
class ReductionReport:
    """Bookkeeping of what the preprocessing removed."""

    raw_ues: int
    reduced_ues: int
    removed_burst_ues: int
    retired_dimms: int
    removed_retirement_events: int

    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        return simple_to_dict(self, "reduction_report")

    @classmethod
    def from_dict(cls, data: dict) -> "ReductionReport":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import simple_from_dict

        return simple_from_dict(cls, data, "reduction_report")


def reduce_ue_bursts(log: ErrorLog, window_seconds: float = WEEK) -> ErrorLog:
    """Keep only the first UE of each per-node burst.

    A burst is defined per node: after a UE, any further UE on the same node
    within ``window_seconds`` belongs to the same burst and is dropped.  The
    window restarts from each retained UE (a new burst can begin once the
    node has returned to production).
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be > 0")
    if not len(log):
        return log
    keep = np.ones(len(log), dtype=bool)
    ue_mask = log.is_ue_mask
    for node in np.unique(log.node[ue_mask]):
        idx = np.flatnonzero((log.node == node) & ue_mask)
        if idx.size <= 1:
            continue
        times = log.time[idx]
        last_kept = -np.inf
        for i, t in zip(idx, times):
            if t - last_kept >= window_seconds:
                last_kept = t
            else:
                keep[i] = False
    return log.select(keep)


def remove_retirement_bias(log: ErrorLog) -> Tuple[ErrorLog, np.ndarray]:
    """Drop every event belonging to an administratively retired DIMM.

    Returns the filtered log and the array of retired DIMM ids.  Node-level
    events (boots) are kept — they are not attributable to a specific DIMM.
    """
    if not len(log):
        return log, np.empty(0, dtype=np.int64)
    retired = np.unique(log.dimm[log.kind == int(EventKind.RETIREMENT)])
    retired = retired[retired >= 0]
    if retired.size == 0:
        return log, retired
    return log.exclude_dimms(retired), retired


def prepare_log(
    log: ErrorLog, ue_burst_window_seconds: float = WEEK
) -> Tuple[ErrorLog, ReductionReport]:
    """Apply the full preprocessing pipeline of Section 2.1.

    Order matters: retirement bias removal first (it removes whole DIMMs),
    then UE burst reduction (it needs the per-node UE sequence).
    """
    raw_ues = log.count_ues()
    no_bias, retired = remove_retirement_bias(log)
    removed_retirement_events = len(log) - len(no_bias)
    reduced = reduce_ue_bursts(no_bias, ue_burst_window_seconds)
    reduced_ues = reduced.count_ues()
    report = ReductionReport(
        raw_ues=raw_ues,
        reduced_ues=reduced_ues,
        removed_burst_ues=no_bias.count_ues() - reduced_ues,
        retired_dimms=int(retired.size),
        removed_retirement_events=removed_retirement_events,
    )
    return reduced, report
