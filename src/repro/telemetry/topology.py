"""Cluster topology: nodes, DIMMs and DRAM manufacturers.

MareNostrum 3 comprised 3056 compute nodes with more than 25,000 DDR3-1600
DIMMs from three (anonymised) manufacturers, with 6694, 5207 and 13,419 DIMMs
from Manufacturer A, B and C respectively.  With few exceptions, all DIMMs of
a node come from the same manufacturer (Section 4.5); the topology model
therefore assigns manufacturers per *node*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FleetSegment:
    """One homogeneous slice of a heterogeneous fleet.

    Real clusters are rarely uniform: racks are procured in generations,
    each with its own DRAM manufacturer and its own fault rates (newer
    parts fail less).  A segment pins a contiguous block of nodes to one
    manufacturer and scales its CE/UE incidence; the optional ``policy``
    names the mitigation approach serving the segment in the Fleet-mix
    composite policy (see :mod:`repro.baselines.fleet`).
    """

    #: Human-readable segment name (unique within a topology).
    name: str
    #: Number of consecutive nodes in this segment.
    n_nodes: int
    #: Manufacturer index of every DIMM in the segment.
    manufacturer: int
    #: DIMM-generation fault-rate multipliers relative to the fault model.
    ce_scale: float = 1.0
    ue_scale: float = 1.0
    #: Per-segment policy of the Fleet-mix approach (``None``: the default).
    policy: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("segment name must not be empty")
        check_positive("n_nodes", self.n_nodes)
        if self.manufacturer < 0:
            raise ValueError("segment manufacturer index must be >= 0")
        check_positive("ce_scale", self.ce_scale)
        check_positive("ue_scale", self.ue_scale)

    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        return simple_to_dict(self, "fleet_segment")

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSegment":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import simple_from_dict

        return simple_from_dict(cls, data, "fleet_segment")


@dataclass(frozen=True)
class ClusterTopology:
    """Static description of the monitored cluster.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes (login/test nodes are excluded, §2.1).
    dimms_per_node:
        DIMMs installed in each node.
    manufacturer_shares:
        Fraction of nodes populated with DIMMs from each manufacturer; must
        sum to 1 (a small tolerance is allowed and re-normalised).
    mixed_node_fraction:
        Fraction of nodes whose DIMMs mix two manufacturers ("with few
        exceptions, all DIMMs in a given node are from the same DRAM
        manufacturer").
    """

    n_nodes: int
    dimms_per_node: int = 8
    manufacturer_shares: Tuple[float, ...] = (0.26, 0.21, 0.53)
    mixed_node_fraction: float = 0.01
    ranks_per_dimm: int = 4
    banks_per_rank: int = 8
    rows_per_bank: int = 65536
    cols_per_row: int = 1024
    #: Heterogeneous-fleet description: contiguous node blocks, each with
    #: its own manufacturer and DIMM-generation fault scaling.  When empty
    #: (the default) manufacturers are drawn from ``manufacturer_shares``
    #: exactly as before; when present the segment node counts must sum to
    #: ``n_nodes`` and the assignment is deterministic.
    segments: Tuple[FleetSegment, ...] = ()

    def __post_init__(self) -> None:
        check_positive("n_nodes", self.n_nodes)
        check_positive("dimms_per_node", self.dimms_per_node)
        if len(self.manufacturer_shares) < 1:
            raise ValueError("at least one manufacturer share is required")
        total = float(sum(self.manufacturer_shares))
        if not np.isclose(total, 1.0, atol=5e-2):
            raise ValueError(
                f"manufacturer_shares must sum to ~1, got {total:.3f}"
            )
        if not (0.0 <= self.mixed_node_fraction <= 1.0):
            raise ValueError("mixed_node_fraction must be in [0, 1]")
        if self.segments:
            seg_total = sum(seg.n_nodes for seg in self.segments)
            if seg_total != self.n_nodes:
                raise ValueError(
                    f"fleet segments cover {seg_total} nodes but the "
                    f"topology has {self.n_nodes}"
                )
            names = [seg.name for seg in self.segments]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate segment names in {names!r}")

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        payload = simple_to_dict(self, "cluster_topology")
        payload["segments"] = [seg.to_dict() for seg in self.segments]
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterTopology":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import untag

        payload = dict(untag(data, "cluster_topology"))
        payload["manufacturer_shares"] = tuple(payload["manufacturer_shares"])
        payload["segments"] = tuple(
            FleetSegment.from_dict(item) for item in payload.pop("segments", [])
        )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            from repro.serialization import SchemaError

            raise SchemaError(
                f"'cluster_topology' payload has unknown fields {unknown!r}"
            )
        return cls(**payload)

    # ------------------------------------------------------------------ #
    @property
    def n_dimms(self) -> int:
        """Total number of DIMMs in the cluster."""
        return self.n_nodes * self.dimms_per_node

    @property
    def n_manufacturers(self) -> int:
        """Number of DRAM manufacturers present."""
        n = len(self.manufacturer_shares)
        if self.segments:
            n = max(n, max(seg.manufacturer for seg in self.segments) + 1)
        return n

    def dimm_node(self, dimm: np.ndarray | int) -> np.ndarray | int:
        """Node hosting DIMM ``dimm`` (vectorised)."""
        return np.asarray(dimm) // self.dimms_per_node

    def node_dimms(self, node: int) -> np.ndarray:
        """Global DIMM identifiers installed in ``node``."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        start = node * self.dimms_per_node
        return np.arange(start, start + self.dimms_per_node, dtype=np.int64)

    def segment_bounds(self) -> Tuple[Tuple[int, int], ...]:
        """``(start, stop)`` node range of each segment, in declaration order."""
        bounds = []
        start = 0
        for seg in self.segments:
            bounds.append((start, start + seg.n_nodes))
            start += seg.n_nodes
        return tuple(bounds)

    def node_segment(self) -> np.ndarray:
        """Segment index of every node (requires ``segments``)."""
        if not self.segments:
            raise ValueError("topology has no fleet segments")
        return np.repeat(
            np.arange(len(self.segments), dtype=np.int32),
            [seg.n_nodes for seg in self.segments],
        )

    def assign_manufacturers(self, rng=None) -> np.ndarray:
        """Assign a manufacturer index to every DIMM.

        Manufacturers are assigned per node (nodes are homogeneous) except
        for a ``mixed_node_fraction`` of nodes in which one DIMM is replaced
        by a part from a different manufacturer — mirroring the "few
        exceptions" noted in Section 4.5.

        When the topology declares fleet ``segments`` the assignment is
        instead fully deterministic: each contiguous node block takes its
        segment's manufacturer and no random numbers are consumed.

        Returns
        -------
        numpy.ndarray of shape ``(n_dimms,)`` with manufacturer indices.
        """
        if self.segments:
            node_manu = np.repeat(
                np.asarray([seg.manufacturer for seg in self.segments]),
                [seg.n_nodes for seg in self.segments],
            )
            return np.repeat(node_manu, self.dimms_per_node).astype(np.int8)
        rng = as_generator(rng, "topology")
        shares = np.asarray(self.manufacturer_shares, dtype=float)
        shares = shares / shares.sum()
        node_manu = rng.choice(len(shares), size=self.n_nodes, p=shares)
        dimm_manu = np.repeat(node_manu, self.dimms_per_node).astype(np.int8)
        if self.mixed_node_fraction > 0 and len(shares) > 1:
            n_mixed = int(round(self.mixed_node_fraction * self.n_nodes))
            if n_mixed > 0:
                mixed_nodes = rng.choice(self.n_nodes, size=n_mixed, replace=False)
                for node in mixed_nodes:
                    slot = int(rng.integers(self.dimms_per_node))
                    current = dimm_manu[node * self.dimms_per_node + slot]
                    alternatives = [m for m in range(len(shares)) if m != current]
                    dimm_manu[node * self.dimms_per_node + slot] = rng.choice(
                        alternatives
                    )
        return dimm_manu
