"""Synthetic MareNostrum-3-style error-log generator.

The generator substitutes for the proprietary production logs described in
Section 2.1 of the paper.  It draws, for every DIMM of a
:class:`~repro.telemetry.topology.ClusterTopology`, a fault trajectory
following the processes parameterised by
:class:`~repro.telemetry.fault_model.FaultModelConfig`, and emits an
:class:`~repro.telemetry.error_log.ErrorLog` containing corrected errors,
uncorrected errors, UE warnings, over-temperature shutdowns, node boots and
administrative DIMM retirements.

The important statistical properties (documented in ``fault_model.py``) are:
bursty and highly skewed per-DIMM CE counts, location locality driven by the
fault geometry, UE bursts confined to the week-long post-UE quarantine, a
minority of "silent" UEs with no preceding telemetry, and manufacturer skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.fault_model import FaultModelConfig, FaultType
from repro.telemetry.records import EventKind
from repro.telemetry.topology import ClusterTopology
from repro.utils.rng import RngFactory, as_generator
from repro.utils.timeutils import DAY, HOUR, MINUTE
from repro.utils.validation import check_positive


@dataclass
class _EventBuffer:
    """Mutable column buffers accumulated during generation."""

    time: List[float]
    node: List[int]
    dimm: List[int]
    kind: List[int]
    ce_count: List[int]
    rank: List[int]
    bank: List[int]
    row: List[int]
    col: List[int]
    scrubber: List[bool]
    manufacturer: List[int]

    @classmethod
    def new(cls) -> "_EventBuffer":
        return cls([], [], [], [], [], [], [], [], [], [], [])

    def append(
        self,
        time: float,
        node: int,
        dimm: int,
        kind: EventKind,
        ce_count: int = 0,
        rank: int = -1,
        bank: int = -1,
        row: int = -1,
        col: int = -1,
        scrubber: bool = False,
        manufacturer: int = -1,
    ) -> None:
        self.time.append(float(time))
        self.node.append(int(node))
        self.dimm.append(int(dimm))
        self.kind.append(int(kind))
        self.ce_count.append(int(ce_count))
        self.rank.append(int(rank))
        self.bank.append(int(bank))
        self.row.append(int(row))
        self.col.append(int(col))
        self.scrubber.append(bool(scrubber))
        self.manufacturer.append(int(manufacturer))

    def extend_ce(
        self,
        times: np.ndarray,
        node: int,
        dimm: int,
        counts: np.ndarray,
        ranks: np.ndarray,
        banks: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        scrubbers: np.ndarray,
        manufacturer: int,
    ) -> None:
        n = len(times)
        self.time.extend(map(float, times))
        self.node.extend([node] * n)
        self.dimm.extend([dimm] * n)
        self.kind.extend([int(EventKind.CE)] * n)
        self.ce_count.extend(map(int, counts))
        self.rank.extend(map(int, ranks))
        self.bank.extend(map(int, banks))
        self.row.extend(map(int, rows))
        self.col.extend(map(int, cols))
        self.scrubber.extend(map(bool, scrubbers))
        self.manufacturer.extend([manufacturer] * n)

    def to_log(self) -> ErrorLog:
        return ErrorLog(
            time=self.time,
            node=self.node,
            dimm=self.dimm,
            kind=self.kind,
            ce_count=self.ce_count,
            rank=self.rank,
            bank=self.bank,
            row=self.row,
            col=self.col,
            scrubber=self.scrubber,
            manufacturer=self.manufacturer,
        )


class TelemetryGenerator:
    """Generate a synthetic production error log.

    Parameters
    ----------
    topology:
        Cluster description (nodes, DIMMs, manufacturers).
    config:
        Fault-model parameters.
    duration_seconds:
        Length of the simulated production period.
    seed:
        Root seed, generator or :class:`~repro.utils.rng.RngFactory`.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        config: Optional[FaultModelConfig] = None,
        duration_seconds: float = 180 * DAY,
        seed=0,
    ) -> None:
        check_positive("duration_seconds", duration_seconds)
        self.topology = topology
        self.config = config or FaultModelConfig()
        self.duration = float(duration_seconds)
        if isinstance(seed, RngFactory):
            self._factory = seed
        else:
            self._factory = RngFactory(seed if isinstance(seed, int) else None)
        self.dimm_manufacturer = topology.assign_manufacturers(
            self._factory.stream("manufacturers")
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> ErrorLog:
        """Produce the full error log for the configured period."""
        buffer = _EventBuffer.new()
        rng = self._factory.stream("generator")

        faulty_dimms = self._select_faulty_dimms(rng)
        ce_history: dict[int, float] = {}
        for dimm in faulty_dimms:
            last_ce = self._emit_dimm_ce_history(buffer, rng, int(dimm))
            ce_history[int(dimm)] = last_ce

        ue_first_times = self._emit_ue_bursts(buffer, rng, faulty_dimms, ce_history)
        if self.config.correlated_bursts > 0:
            correlated = self._emit_correlated_bursts(buffer)
            if correlated.size:
                ue_first_times = np.sort(
                    np.concatenate([ue_first_times, correlated])
                )
        self._emit_boots(buffer, rng, ue_first_times)
        self._emit_retirements(buffer, rng, faulty_dimms)

        log = buffer.to_log()
        log = self._apply_quarantine(log, ue_first_times)
        return log

    # ------------------------------------------------------------------ #
    # Faulty DIMM selection and CE emission
    # ------------------------------------------------------------------ #
    def _manufacturer_weight(self, weights: Sequence[float]) -> np.ndarray:
        weights = np.asarray(weights, dtype=float)
        if weights.size < self.topology.n_manufacturers:
            weights = np.resize(weights, self.topology.n_manufacturers)
        weights = weights[: self.topology.n_manufacturers]
        return weights / weights.mean()

    def _dimm_scale(self, attr: str) -> np.ndarray:
        """Per-DIMM fault-rate multiplier from the fleet segments."""
        topo = self.topology
        node_scale = np.repeat(
            np.asarray([getattr(seg, attr) for seg in topo.segments], dtype=float),
            [seg.n_nodes for seg in topo.segments],
        )
        return np.repeat(node_scale, topo.dimms_per_node)

    def _select_faulty_dimms(self, rng: np.random.Generator) -> np.ndarray:
        """Choose which DIMMs develop CE-producing faults."""
        cfg = self.config
        n_dimms = self.topology.n_dimms
        weights = self._manufacturer_weight(cfg.manufacturer_ce_weights)
        per_dimm_p = cfg.faulty_dimm_fraction * weights[self.dimm_manufacturer]
        if self.topology.segments:
            per_dimm_p = per_dimm_p * self._dimm_scale("ce_scale")
        per_dimm_p = np.clip(per_dimm_p, 0.0, 1.0)
        mask = rng.random(n_dimms) < per_dimm_p
        faulty = np.flatnonzero(mask)
        if faulty.size == 0 and cfg.faulty_dimm_fraction > 0 and n_dimms > 0:
            faulty = rng.choice(n_dimms, size=1)
        return faulty

    def _sample_fault_geometry(self, rng: np.random.Generator, size: int):
        """Sample CE physical locations for one fault."""
        topo = self.topology
        fault_type = FaultType(
            rng.choice(
                [
                    FaultType.TRANSIENT,
                    FaultType.ROW,
                    FaultType.COLUMN,
                    FaultType.BANK,
                    FaultType.RANK,
                ],
                p=[0.25, 0.3, 0.15, 0.2, 0.1],
            )
        )
        ranks = rng.integers(0, topo.ranks_per_dimm, size)
        banks = rng.integers(0, topo.banks_per_rank, size)
        rows = rng.integers(0, topo.rows_per_bank, size)
        cols = rng.integers(0, topo.cols_per_row, size)
        if fault_type == FaultType.ROW:
            ranks[:] = ranks[0]
            banks[:] = banks[0]
            rows[:] = rows[0]
        elif fault_type == FaultType.COLUMN:
            ranks[:] = ranks[0]
            banks[:] = banks[0]
            cols[:] = cols[0]
        elif fault_type == FaultType.BANK:
            ranks[:] = ranks[0]
            banks[:] = banks[0]
        elif fault_type == FaultType.RANK:
            ranks[:] = ranks[0]
        return fault_type, ranks, banks, rows, cols

    def _emit_dimm_ce_history(
        self, buffer: _EventBuffer, rng: np.random.Generator, dimm: int
    ) -> float:
        """Emit the CE records (and warnings) of one faulty DIMM.

        Returns the time of the last CE record, used to place UEs after some
        CE history for predictable failures.
        """
        cfg = self.config
        node = int(self.topology.dimm_node(dimm))
        manufacturer = int(self.dimm_manufacturer[dimm])

        onset = rng.uniform(0.0, 0.95 * self.duration)
        lifetime = rng.exponential(cfg.mean_fault_lifetime_seconds)
        end = min(self.duration, onset + max(lifetime, HOUR))

        n_bursts = 1 + rng.poisson(max(cfg.mean_bursts_per_faulty_dimm - 1, 0.0))
        burst_times = np.sort(rng.uniform(onset, end, n_bursts))

        records_per_burst = 1 + rng.poisson(
            max(cfg.mean_records_per_burst - 1, 0.0), size=n_bursts
        )
        n_records = int(records_per_burst.sum())

        # Total CEs for this DIMM: heavy-tailed log-normal around the mean.
        sigma = cfg.ce_count_sigma
        mu = np.log(max(cfg.mean_ces_per_faulty_dimm, 1.0)) - 0.5 * sigma**2
        total_ces = max(n_records, int(round(rng.lognormal(mu, sigma))))

        # Distribute total CEs over records with a Dirichlet split so a few
        # records carry large MCA counts (bursty aggregation, §2.1.1).
        shares = rng.dirichlet(np.full(n_records, 0.35))
        counts = np.maximum(1, np.round(shares * total_ces).astype(np.int64))

        times = np.concatenate(
            [
                np.sort(
                    burst_times[i]
                    + rng.exponential(cfg.burst_spread_seconds, records_per_burst[i])
                )
                for i in range(n_bursts)
            ]
        )
        times = np.clip(times, 0.0, self.duration - 1.0)
        order = np.argsort(times, kind="stable")
        times = times[order]
        counts = counts[order]

        _, ranks, banks, rows, cols = self._sample_fault_geometry(rng, n_records)
        scrubbers = rng.random(n_records) < cfg.scrubber_fraction

        buffer.extend_ce(
            times, node, dimm, counts, ranks, banks, rows, cols, scrubbers,
            manufacturer,
        )

        # UE warnings whenever the cumulative CE count crosses a multiple of
        # the correctable-error logging limit (§2.1.2).
        cumulative = np.cumsum(counts)
        crossings = np.flatnonzero(
            np.diff(np.concatenate([[0], cumulative // cfg.ce_logging_limit])) > 0
        )
        for idx in crossings:
            buffer.append(
                time=times[idx] + 1.0,
                node=node,
                dimm=dimm,
                kind=EventKind.UE_WARNING,
                manufacturer=manufacturer,
            )
        return float(times[-1]) if n_records else onset

    # ------------------------------------------------------------------ #
    # Uncorrected errors
    # ------------------------------------------------------------------ #
    def _emit_ue_bursts(
        self,
        buffer: _EventBuffer,
        rng: np.random.Generator,
        faulty_dimms: np.ndarray,
        ce_history: dict[int, float],
    ) -> np.ndarray:
        """Emit UE bursts and return the times of the *first* UE of each burst."""
        cfg = self.config
        n_bursts = cfg.n_ue_bursts
        if n_bursts <= 0:
            return np.empty(0)

        n_silent = int(round(cfg.silent_ue_fraction * n_bursts))
        n_predictable = n_bursts - n_silent

        weights = self._manufacturer_weight(cfg.manufacturer_ue_weights)

        ue_scale: Optional[np.ndarray] = None
        if self.topology.segments:
            ue_scale = self._dimm_scale("ue_scale")

        # Predictable UEs strike DIMMs with CE history (after some of it).
        predictable_dimms: List[int] = []
        if n_predictable > 0 and faulty_dimms.size > 0:
            w = weights[self.dimm_manufacturer[faulty_dimms]]
            if ue_scale is not None:
                w = w * ue_scale[faulty_dimms]
            p = w / w.sum()
            chosen = rng.choice(
                faulty_dimms,
                size=min(n_predictable, faulty_dimms.size),
                replace=False,
                p=p,
            )
            predictable_dimms = [int(d) for d in chosen]
        n_silent += n_predictable - len(predictable_dimms)

        # Silent UEs strike DIMMs with no CE history at all.
        healthy = np.setdiff1d(
            np.arange(self.topology.n_dimms), faulty_dimms, assume_unique=False
        )
        silent_dimms: List[int] = []
        if n_silent > 0 and healthy.size > 0:
            w = weights[self.dimm_manufacturer[healthy]]
            if ue_scale is not None:
                w = w * ue_scale[healthy]
            p = w / w.sum()
            chosen = rng.choice(
                healthy, size=min(n_silent, healthy.size), replace=False, p=p
            )
            silent_dimms = [int(d) for d in chosen]

        first_times: List[float] = []
        for dimm in predictable_dimms + silent_dimms:
            node = int(self.topology.dimm_node(dimm))
            manufacturer = int(self.dimm_manufacturer[dimm])
            if dimm in ce_history:
                # Place the UE shortly after the DIMM's CE history and emit a
                # final escalating CE burst in the hours before it, so the
                # telemetry features carry predictive signal and event-
                # triggered policies have a recent event to mitigate from.
                last_ce = ce_history[dimm]
                lead = min(rng.lognormal(np.log(2 * HOUR), 1.0), DAY)
                t_first = min(self.duration - 1.0, last_ce + lead)
                self._emit_pre_ue_burst(buffer, rng, dimm, node, manufacturer, t_first)
            else:
                t_first = rng.uniform(0.05 * self.duration, self.duration - 1.0)
            is_overtemp = rng.random() < cfg.overtemp_fraction
            kind = EventKind.OVERTEMP if is_overtemp else EventKind.UE
            buffer.append(
                time=t_first,
                node=node,
                dimm=dimm,
                kind=kind,
                manufacturer=manufacturer,
            )
            first_times.append(t_first)

            # Follow-up UEs within the one-week quarantine burst.
            n_repeats = rng.poisson(cfg.ue_burst_repeat_mean)
            if n_repeats > 0:
                repeat_times = t_first + rng.uniform(
                    10 * MINUTE, 0.93 * cfg.quarantine_seconds, size=n_repeats
                )
                for t in np.sort(repeat_times):
                    if t >= self.duration:
                        continue
                    buffer.append(
                        time=float(t),
                        node=node,
                        dimm=dimm,
                        kind=EventKind.UE,
                        manufacturer=manufacturer,
                    )
        return np.asarray(sorted(first_times))

    def _emit_correlated_bursts(self, buffer: _EventBuffer) -> np.ndarray:
        """Emit correlated multi-node failure incidents.

        Each incident strikes ``correlated_burst_width`` consecutive nodes
        (a rack-level power or cooling event, the failure mode the burst
        statistics of :mod:`repro.analysis.burst` expose) with first UEs
        spread over ``correlated_burst_span_seconds``, plus follow-up UEs
        inside each node's quarantine window.  Draws come from a dedicated
        ``"correlated-bursts"`` RNG stream so that enabling the mode never
        perturbs the base generator's sequence.
        """
        cfg = self.config
        topo = self.topology
        rng = self._factory.stream("correlated-bursts")
        width = min(cfg.correlated_burst_width, topo.n_nodes)
        first_times: List[float] = []
        for _ in range(cfg.correlated_bursts):
            start_node = int(rng.integers(0, topo.n_nodes - width + 1))
            t0 = rng.uniform(0.05 * self.duration, 0.9 * self.duration)
            offsets = np.sort(
                rng.uniform(0.0, cfg.correlated_burst_span_seconds, width)
            )
            for i, node in enumerate(range(start_node, start_node + width)):
                t_first = min(float(t0 + offsets[i]), self.duration - 1.0)
                dimm = node * topo.dimms_per_node + int(
                    rng.integers(topo.dimms_per_node)
                )
                manufacturer = int(self.dimm_manufacturer[dimm])
                buffer.append(
                    time=t_first,
                    node=node,
                    dimm=dimm,
                    kind=EventKind.UE,
                    manufacturer=manufacturer,
                )
                first_times.append(t_first)
                n_repeats = rng.poisson(cfg.correlated_burst_repeat_mean)
                if n_repeats > 0:
                    repeat_times = t_first + rng.uniform(
                        10 * MINUTE, 0.93 * cfg.quarantine_seconds, size=n_repeats
                    )
                    for t in np.sort(repeat_times):
                        if t >= self.duration:
                            continue
                        buffer.append(
                            time=float(t),
                            node=node,
                            dimm=dimm,
                            kind=EventKind.UE,
                            manufacturer=manufacturer,
                        )
        return np.asarray(sorted(first_times))

    def _emit_pre_ue_burst(
        self,
        buffer: _EventBuffer,
        rng: np.random.Generator,
        dimm: int,
        node: int,
        manufacturer: int,
        t_ue: float,
    ) -> None:
        """Escalating CE activity in the hours before a predictable UE.

        Field studies (and the paper's own premise) show that most
        predictable UEs are preceded by a surge of corrected errors on the
        failing DIMM; this is what gives both the random-forest baseline and
        the RL agent their signal, and what lets event-triggered policies
        place a mitigation close to the UE.
        """
        cfg = self.config
        n_records = 4 + int(rng.poisson(8))
        # Log-spaced lead times: activity accelerates towards the failure but
        # leaves a few minutes of slack so a mitigation triggered on the last
        # event can complete before the UE strikes.
        leads = np.sort(
            np.exp(rng.uniform(np.log(5 * MINUTE), np.log(18 * HOUR), n_records))
        )[::-1]
        times = np.clip(t_ue - leads, 0.0, t_ue - 3 * MINUTE)
        counts = 1 + rng.geometric(0.05, size=n_records)
        _, ranks, banks, rows, cols = self._sample_fault_geometry(rng, n_records)
        scrubbers = rng.random(n_records) < cfg.scrubber_fraction
        buffer.extend_ce(
            times, node, dimm, counts, ranks, banks, rows, cols, scrubbers,
            manufacturer,
        )
        # The surge usually trips the correctable-error logging limit,
        # producing a UE warning shortly before the failure (§2.1.2).
        if rng.random() < 0.6:
            buffer.append(
                time=float(np.clip(t_ue - rng.uniform(5 * MINUTE, 6 * HOUR), 0.0, t_ue - MINUTE)),
                node=node,
                dimm=dimm,
                kind=EventKind.UE_WARNING,
                manufacturer=manufacturer,
            )

    # ------------------------------------------------------------------ #
    # Boots, retirements, quarantine
    # ------------------------------------------------------------------ #
    def _emit_boots(
        self,
        buffer: _EventBuffer,
        rng: np.random.Generator,
        ue_first_times: np.ndarray,
    ) -> None:
        cfg = self.config
        for node in range(self.topology.n_nodes):
            # Routine maintenance reboots: Poisson over the period.
            expected = self.duration / cfg.mean_boot_interval_seconds
            n_boots = rng.poisson(expected)
            for t in np.sort(rng.uniform(0.0, self.duration, n_boots)):
                buffer.append(time=float(t), node=node, dimm=-1, kind=EventKind.BOOT)

        # Nodes about to suffer a UE sometimes reboot in the days before it
        # (gives the boot-count features predictive value).
        ue_nodes_times = [
            (buffer.node[i], buffer.time[i])
            for i in range(len(buffer.time))
            if EventKind(buffer.kind[i]).counts_as_ue
        ]
        seen_nodes = set()
        for node, t_ue in ue_nodes_times:
            if node in seen_nodes:
                continue
            seen_nodes.add(node)
            if rng.random() < cfg.pre_ue_boot_probability:
                t = max(0.0, t_ue - rng.uniform(HOUR, 2 * DAY))
                buffer.append(time=t, node=node, dimm=-1, kind=EventKind.BOOT)

    def _emit_retirements(
        self,
        buffer: _EventBuffer,
        rng: np.random.Generator,
        faulty_dimms: np.ndarray,
    ) -> None:
        cfg = self.config
        if cfg.n_retired_dimms <= 0:
            return
        healthy = np.setdiff1d(np.arange(self.topology.n_dimms), faulty_dimms)
        n_error_free = int(round(cfg.retired_error_free_fraction * cfg.n_retired_dimms))
        n_faulty = cfg.n_retired_dimms - n_error_free
        chosen: List[int] = []
        if healthy.size > 0 and n_error_free > 0:
            chosen.extend(
                int(d)
                for d in rng.choice(
                    healthy, size=min(n_error_free, healthy.size), replace=False
                )
            )
        if faulty_dimms.size > 0 and n_faulty > 0:
            chosen.extend(
                int(d)
                for d in rng.choice(
                    faulty_dimms, size=min(n_faulty, faulty_dimms.size), replace=False
                )
            )
        for dimm in chosen:
            node = int(self.topology.dimm_node(dimm))
            manufacturer = int(self.dimm_manufacturer[dimm])
            buffer.append(
                time=float(rng.uniform(0.1 * self.duration, self.duration - 1.0)),
                node=node,
                dimm=dimm,
                kind=EventKind.RETIREMENT,
                manufacturer=manufacturer,
            )

    def _apply_quarantine(
        self, log: ErrorLog, ue_first_times: np.ndarray
    ) -> ErrorLog:
        """Drop non-UE events during each node's post-UE quarantine week and
        insert a boot when the node returns to production (§2.1.3)."""
        if not len(log) or ue_first_times.size == 0:
            return log
        cfg = self.config
        keep = np.ones(len(log), dtype=bool)
        boots = _EventBuffer.new()
        ue_mask = log.is_ue_mask
        for node in np.unique(log.node[ue_mask]):
            node_mask = log.node == node
            node_ue_times = np.sort(log.time[node_mask & ue_mask])
            if node_ue_times.size == 0:
                continue
            # Quarantine windows start at each *first* UE of a burst.
            window_starts: List[float] = []
            for t in node_ue_times:
                if not window_starts or t > window_starts[-1] + cfg.quarantine_seconds:
                    window_starts.append(float(t))
            for start in window_starts:
                end = start + cfg.quarantine_seconds
                in_window = (
                    node_mask
                    & (log.time > start)
                    & (log.time <= end)
                    & ~ue_mask
                )
                keep &= ~in_window
                if end < self.duration:
                    boots.append(time=end, node=int(node), dimm=-1, kind=EventKind.BOOT)
        filtered = log.select(keep)
        boot_log = boots.to_log()
        if len(boot_log):
            return ErrorLog.concatenate([filtered, boot_log])
        return filtered


def generate_error_log(
    topology: ClusterTopology,
    config: Optional[FaultModelConfig] = None,
    duration_seconds: float = 180 * DAY,
    seed=0,
) -> ErrorLog:
    """Convenience wrapper: build a generator and produce its log."""
    return TelemetryGenerator(
        topology, config=config, duration_seconds=duration_seconds, seed=seed
    ).generate()
