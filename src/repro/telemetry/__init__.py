"""Synthetic field memory-error telemetry substrate.

This package plays the role of the MareNostrum 3 monitoring infrastructure
described in Section 2.1 of the paper: the mcelog-based corrected-error
daemon, the IBM-firmware uncorrected-error log, node boot events, DIMM
retirement records and over-temperature shutdowns.  Because the original
production logs are proprietary, the package also contains a statistically
faithful *generator* of such logs (see ``DESIGN.md`` for the substitution
rationale).

Public entry points
-------------------
:class:`ClusterTopology`      — nodes, DIMMs and their manufacturers.
:class:`FaultModelConfig`     — parameters of the per-DIMM fault processes.
:class:`TelemetryGenerator`   — produces an :class:`ErrorLog`.
:class:`ErrorLog`             — columnar, NumPy-backed event log.
:func:`reduce_ue_bursts`      — keep only the first UE of each burst (§2.1.3).
:func:`remove_retirement_bias` — drop events from admin-retired DIMMs (§2.1.4).
:func:`merge_events`          — per-node per-minute event merging (§3.2.3).
"""

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.fault_model import FaultModelConfig
from repro.telemetry.generator import TelemetryGenerator, generate_error_log
from repro.telemetry.mcelog import (
    format_full_log,
    format_mcelog,
    format_ue_log,
    iter_mcelog_records,
    parse_mcelog,
    parse_ue_log,
)
from repro.telemetry.merging import MergedEvent, merge_events, merge_node_events
from repro.telemetry.records import (
    EventKind,
    EventRecord,
    MANUFACTURER_NAMES,
)
from repro.telemetry.reduction import (
    prepare_log,
    reduce_ue_bursts,
    remove_retirement_bias,
)
from repro.telemetry.topology import ClusterTopology

__all__ = [
    "ClusterTopology",
    "ErrorLog",
    "EventKind",
    "EventRecord",
    "FaultModelConfig",
    "MANUFACTURER_NAMES",
    "MergedEvent",
    "TelemetryGenerator",
    "format_full_log",
    "format_mcelog",
    "format_ue_log",
    "generate_error_log",
    "iter_mcelog_records",
    "merge_events",
    "merge_node_events",
    "parse_mcelog",
    "parse_ue_log",
    "prepare_log",
    "reduce_ue_bursts",
    "remove_retirement_bias",
]
