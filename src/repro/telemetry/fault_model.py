"""Parameters of the per-DIMM fault processes used by the telemetry generator.

The generator does not try to model DRAM physics; it reproduces the
*statistical properties* of the MareNostrum 3 logs that the paper identifies
as load-bearing for mitigation-policy design (Sections 2.1 and 3.3.4):

* corrected errors are rare per DIMM but highly bursty, and a small fraction
  of DIMMs produce the vast majority of CEs;
* CE locality follows fault geometry (row / column / bank / rank / transient
  faults), which drives the "number of ranks/banks/rows/columns with CEs"
  features of Table 1;
* uncorrected errors appear in bursts: a node that suffers one UE tends to
  produce several more while it is quarantined for testing, so only the first
  UE of each burst matters for production (333 raw UEs → 67 first UEs);
* a sizeable minority of UEs have *no* preceding event within a day, making
  them unpredictable for event-triggered policies (25 of 67 in the paper);
* UE warnings fire when the correctable-error logging limit is reached;
* critical over-temperature shutdowns are counted as UEs;
* some DIMMs are retired administratively with no preceding errors, which
  introduces the training bias the paper removes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.utils.timeutils import DAY, HOUR, MINUTE
from repro.utils.validation import check_fraction, check_non_negative, check_positive


class FaultType(enum.IntEnum):
    """Geometry of a DRAM fault, controlling CE address locality."""

    TRANSIENT = 0
    ROW = 1
    COLUMN = 2
    BANK = 3
    RANK = 4


@dataclass(frozen=True)
class FaultModelConfig:
    """Tunable parameters of the synthetic fault processes."""

    # -- corrected-error producing faults ------------------------------- #
    #: Fraction of DIMMs that develop a CE-producing fault during the period.
    faulty_dimm_fraction: float = 0.10
    #: Mean number of CE bursts emitted by a faulty DIMM.
    mean_bursts_per_faulty_dimm: float = 9.0
    #: Mean number of CE log records per burst.
    mean_records_per_burst: float = 18.0
    #: Mean spread of a burst in seconds (records are exponentially spaced).
    burst_spread_seconds: float = 45 * MINUTE
    #: Mean total corrected errors carried by one faulty DIMM (heavy-tailed).
    mean_ces_per_faulty_dimm: float = 600.0
    #: Log-normal sigma of the per-DIMM total CE count.
    ce_count_sigma: float = 1.6
    #: Mean active lifetime of a fault, seconds.
    mean_fault_lifetime_seconds: float = 90 * DAY
    #: Probability that a CE is found by the patrol scrubber.
    scrubber_fraction: float = 0.35
    #: Relative CE incidence per manufacturer (A, B, C); normalised internally.
    manufacturer_ce_weights: Tuple[float, ...] = (1.4, 0.7, 1.0)

    # -- uncorrected errors --------------------------------------------- #
    #: Expected number of distinct UE bursts (i.e. "first" UEs, §2.1.3).
    n_ue_bursts: int = 24
    #: Mean number of *additional* UEs within the week-long burst.
    ue_burst_repeat_mean: float = 4.0
    #: Fraction of UE bursts that strike DIMMs with no prior CE history.
    silent_ue_fraction: float = 0.35
    #: Fraction of UE bursts that are critical over-temperature shutdowns.
    overtemp_fraction: float = 0.08
    #: Relative UE incidence per manufacturer (A, B, C); normalised internally.
    manufacturer_ue_weights: Tuple[float, ...] = (1.2, 0.9, 1.0)
    #: Week-long quarantine applied to a node after a UE (§2.1.3).
    quarantine_seconds: float = 7 * DAY

    # -- correlated multi-node burst failures --------------------------- #
    #: Number of correlated failure incidents striking *several adjacent
    #: nodes* at once (rack-level power/cooling events).  ``0`` — the
    #: default — disables the mode entirely and leaves every RNG stream of
    #: the generator untouched, so existing scenarios are bit-identical.
    correlated_bursts: int = 0
    #: Number of consecutive nodes struck by each correlated incident.
    correlated_burst_width: int = 4
    #: Temporal span within which the incident's first UEs land, seconds.
    correlated_burst_span_seconds: float = 1 * HOUR
    #: Mean follow-up UEs per affected node within its quarantine window.
    correlated_burst_repeat_mean: float = 2.0

    # -- warnings, boots, retirement ------------------------------------ #
    #: Correctable-error logging limit that triggers a UE warning.
    ce_logging_limit: int = 256
    #: Mean interval between routine node reboots, seconds.
    mean_boot_interval_seconds: float = 60 * DAY
    #: Probability that a node about to suffer a UE reboots in the prior days.
    pre_ue_boot_probability: float = 0.4
    #: Number of DIMMs retired administratively during the period (§2.1.4).
    n_retired_dimms: int = 4
    #: Fraction of retired DIMMs that had no preceding errors (paper: most).
    retired_error_free_fraction: float = 0.8

    def __post_init__(self) -> None:
        check_fraction("faulty_dimm_fraction", self.faulty_dimm_fraction)
        check_fraction("silent_ue_fraction", self.silent_ue_fraction)
        check_fraction("overtemp_fraction", self.overtemp_fraction)
        check_fraction("scrubber_fraction", self.scrubber_fraction)
        check_fraction(
            "retired_error_free_fraction", self.retired_error_free_fraction
        )
        check_fraction("pre_ue_boot_probability", self.pre_ue_boot_probability)
        check_positive("mean_ces_per_faulty_dimm", self.mean_ces_per_faulty_dimm)
        check_positive("mean_bursts_per_faulty_dimm", self.mean_bursts_per_faulty_dimm)
        check_positive("mean_records_per_burst", self.mean_records_per_burst)
        check_positive("burst_spread_seconds", self.burst_spread_seconds)
        check_positive("quarantine_seconds", self.quarantine_seconds)
        check_positive("ce_logging_limit", self.ce_logging_limit)
        check_non_negative("n_ue_bursts", self.n_ue_bursts)
        check_non_negative("n_retired_dimms", self.n_retired_dimms)
        check_non_negative("ue_burst_repeat_mean", self.ue_burst_repeat_mean)
        check_non_negative("correlated_bursts", self.correlated_bursts)
        check_positive("correlated_burst_width", self.correlated_burst_width)
        check_positive(
            "correlated_burst_span_seconds", self.correlated_burst_span_seconds
        )
        check_non_negative(
            "correlated_burst_repeat_mean", self.correlated_burst_repeat_mean
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def scaled_for(
        n_dimms: int,
        duration_seconds: float,
        target_ues: int,
        target_ces: Optional[float] = None,
        n_retired_dimms: Optional[int] = None,
    ) -> "FaultModelConfig":
        """Derive a configuration hitting approximate volume targets.

        Parameters
        ----------
        n_dimms:
            Total DIMMs in the cluster.
        duration_seconds:
            Length of the simulated production period.
        target_ues:
            Desired number of distinct UE bursts (first UEs after reduction).
        target_ces:
            Desired total number of corrected errors.  When omitted, the
            default per-DIMM CE volume is kept.
        n_retired_dimms:
            Number of administratively retired DIMMs; defaults to roughly
            the paper's proportion (51 out of ~25k DIMMs).
        """
        check_positive("n_dimms", n_dimms)
        check_positive("duration_seconds", duration_seconds)
        base = FaultModelConfig()
        faulty_fraction = base.faulty_dimm_fraction
        mean_ces = base.mean_ces_per_faulty_dimm
        if target_ces is not None:
            n_faulty = max(1.0, faulty_fraction * n_dimms)
            mean_ces = float(target_ces) / n_faulty
        if n_retired_dimms is None:
            n_retired_dimms = max(2, int(round(51 * n_dimms / 25320)))
        return replace(
            base,
            n_ue_bursts=int(target_ues),
            mean_ces_per_faulty_dimm=mean_ces,
            n_retired_dimms=int(n_retired_dimms),
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_burst_statistics(
        stats,
        base: Optional["FaultModelConfig"] = None,
    ) -> "FaultModelConfig":
        """Calibrate the UE burst process from measured burst statistics.

        ``stats`` is a :class:`~repro.analysis.burst.BurstStatistics` (e.g.
        of an ingested mcelog dump): the number of distinct bursts becomes
        ``n_ue_bursts``, the mean burst size minus the first UE becomes the
        per-burst repeat mean, and the grouping window becomes the
        quarantine length — so a synthetic scenario reproduces the measured
        raw-to-first UE reduction factor.  ``base`` supplies every other
        field (default: the stock configuration).
        """
        base = base or FaultModelConfig()
        return replace(
            base,
            n_ue_bursts=int(stats.n_first_ues),
            ue_burst_repeat_mean=max(0.0, float(stats.mean_burst_size) - 1.0),
            quarantine_seconds=float(stats.burst_window_seconds),
        )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        return simple_to_dict(self, "fault_model_config")

    @classmethod
    def from_dict(cls, data: dict) -> "FaultModelConfig":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import simple_from_dict

        return simple_from_dict(
            cls,
            data,
            "fault_model_config",
            tuple_fields=("manufacturer_ce_weights", "manufacturer_ue_weights"),
        )
