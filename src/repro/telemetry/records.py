"""Event record types shared by the telemetry generator and parsers.

The telemetry substrate models the five kinds of events the paper's feature
set (Table 1) is built from:

* corrected errors (CE) reported by the mcelog-style daemon, with the DIMM
  physical location (rank, bank, row, column), the number of errors observed
  in the 100 ms polling period, and whether the error was found by an
  application read or the patrol scrubber;
* uncorrected errors (UE) reported by the platform firmware, which terminate
  the node;
* UE warnings (correctable-error logging limit reached or memory throttled);
* node boot events;
* DIMM retirement events recorded by the system administrators;
* critical over-temperature conditions, which shut the node down and are
  therefore *counted as UEs* (Section 2.1.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

#: Anonymised manufacturer labels used throughout the paper.
MANUFACTURER_NAMES: Tuple[str, ...] = ("A", "B", "C")


class EventKind(enum.IntEnum):
    """Kind of telemetry event."""

    CE = 0
    UE = 1
    UE_WARNING = 2
    BOOT = 3
    RETIREMENT = 4
    OVERTEMP = 5

    @property
    def counts_as_ue(self) -> bool:
        """True for events that terminate the node like an uncorrected error.

        Critical over-temperature conditions cause a node shutdown and are
        counted as equivalent to uncorrected errors (Section 2.1.2).
        """
        return self in (EventKind.UE, EventKind.OVERTEMP)


@dataclass(frozen=True, order=True)
class EventRecord:
    """A single telemetry event.

    Attributes
    ----------
    time:
        Seconds since the beginning of the observed production period.
    node:
        Compute node identifier.
    dimm:
        Global DIMM identifier (``-1`` for node-level events such as boots).
    kind:
        The :class:`EventKind`.
    ce_count:
        Number of corrected errors covered by this record (the MCA registers
        report a count when several errors fall in one polling period).
    rank, bank, row, col:
        Physical location of the (sampled) corrected error, ``-1`` if the
        location is unknown or not applicable.
    scrubber:
        True if the error was found by the patrol scrubber rather than an
        application memory request.
    manufacturer:
        DRAM manufacturer index (0 = A, 1 = B, 2 = C), ``-1`` if unknown.
    """

    time: float
    node: int
    dimm: int = -1
    kind: EventKind = field(default=EventKind.CE, compare=False)
    ce_count: int = field(default=0, compare=False)
    rank: int = field(default=-1, compare=False)
    bank: int = field(default=-1, compare=False)
    row: int = field(default=-1, compare=False)
    col: int = field(default=-1, compare=False)
    scrubber: bool = field(default=False, compare=False)
    manufacturer: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.node < 0:
            raise ValueError(f"node id must be >= 0, got {self.node}")
        if self.kind == EventKind.CE and self.ce_count < 1:
            raise ValueError("CE events must carry ce_count >= 1")

    @property
    def is_ue(self) -> bool:
        """True if this event is counted as an uncorrected error."""
        return EventKind(self.kind).counts_as_ue

    @property
    def manufacturer_name(self) -> str:
        """Anonymised manufacturer letter, or ``'?'`` when unknown."""
        if 0 <= self.manufacturer < len(MANUFACTURER_NAMES):
            return MANUFACTURER_NAMES[self.manufacturer]
        return "?"
