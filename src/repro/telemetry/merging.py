"""Per-node, per-minute event merging (Section 3.2.3).

The paper imposes a minimum wallclock time of one minute between state
transitions: all events observed on a node within the same minute are
combined into a single decision point.  This module groups raw log indices
into such merged steps, preserving the index lists so that feature extraction
can still inspect every underlying record (e.g. distinct CE locations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.telemetry.error_log import ErrorLog
from repro.utils.timeutils import MINUTE


@dataclass(frozen=True)
class MergedEvent:
    """One merged decision point on a node.

    Attributes
    ----------
    time:
        Time of the *last* raw event merged into this step (the decision is
        taken once the minute's events have been observed).
    node:
        Node identifier.
    indices:
        Indices into the original :class:`ErrorLog` of the merged raw events.
    is_ue:
        True if any merged raw event is counted as an uncorrected error.
    """

    time: float
    node: int
    indices: np.ndarray
    is_ue: bool

    @property
    def n_raw_events(self) -> int:
        """Number of raw log records merged into this step."""
        return int(self.indices.size)


def merge_node_events(
    log: ErrorLog,
    indices: np.ndarray,
    merge_window_seconds: float = MINUTE,
) -> List[MergedEvent]:
    """Merge the (time-ordered) events of one node into decision steps.

    Events closer than ``merge_window_seconds`` to the start of the current
    step are folded into it.  A step containing a UE ends the sequence of
    steps for that burst; subsequent events start a new step as usual (the
    burst-reduction pass normally removes them beforehand).
    """
    if merge_window_seconds <= 0:
        raise ValueError("merge_window_seconds must be > 0")
    indices = np.asarray(indices)
    if indices.size == 0:
        return []
    times = log.time[indices]
    ue_mask = log.is_ue_mask[indices]
    # Prefix counts of UEs: "any UE in [start, i)" becomes an O(1) lookup
    # instead of re-scanning the window for every candidate boundary.
    ue_before = np.zeros(indices.size + 1, dtype=np.int64)
    ue_before[1:] = np.add.accumulate(ue_mask.astype(np.int64))

    merged: List[MergedEvent] = []
    start = 0
    window_start = times[0]
    for i in range(1, indices.size + 1):
        boundary = i == indices.size
        if not boundary:
            same_window = times[i] - window_start < merge_window_seconds
            # A UE always terminates the current merged step so that the
            # terminal transition is distinct from ordinary telemetry.
            if same_window and ue_before[i] == ue_before[start]:
                continue
        group = indices[start:i]
        merged.append(
            MergedEvent(
                time=float(times[i - 1]),
                node=int(log.node[indices[start]]),
                indices=group,
                is_ue=bool(ue_before[i] > ue_before[start]),
            )
        )
        if not boundary:
            start = i
            window_start = times[i]
    return merged


def merge_events(
    log: ErrorLog, merge_window_seconds: float = MINUTE
) -> Dict[int, List[MergedEvent]]:
    """Merge events for every node of the log.

    Returns a mapping ``node -> list of MergedEvent`` in time order.
    """
    return {
        node: merge_node_events(log, indices, merge_window_seconds)
        for node, indices in log.node_slices().items()
    }


def count_merged_events(
    log: ErrorLog, merge_window_seconds: float = MINUTE
) -> int:
    """Total number of merged decision points in the log (paper: 259,270)."""
    return sum(len(steps) for steps in merge_events(log, merge_window_seconds).values())
