"""Columnar, NumPy-backed container for telemetry event logs.

An :class:`ErrorLog` stores every event of a production period in parallel
NumPy arrays (structure-of-arrays) so that the filtering, counting and
windowing operations used by feature extraction and the evaluation harness
are vectorised.  Individual events can still be materialised as
:class:`~repro.telemetry.records.EventRecord` objects for I/O and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.telemetry.records import EventKind, EventRecord

_COLUMNS = (
    ("time", np.float64),
    ("node", np.int64),
    ("dimm", np.int64),
    ("kind", np.int8),
    ("ce_count", np.int64),
    ("rank", np.int32),
    ("bank", np.int32),
    ("row", np.int64),
    ("col", np.int64),
    ("scrubber", np.bool_),
    ("manufacturer", np.int8),
)


@dataclass(frozen=True)
class ErrorLogStats:
    """Summary statistics of an :class:`ErrorLog` (Section 2.1.5 style)."""

    n_events: int
    n_ce_records: int
    n_corrected_errors: int
    n_uncorrected_errors: int
    n_ue_warnings: int
    n_boots: int
    n_retirements: int
    n_overtemp: int
    n_nodes_with_events: int
    n_dimms_with_ce: int
    time_span_seconds: float


class ErrorLog:
    """Immutable-by-convention, time-sorted telemetry event log."""

    __slots__ = tuple(name for name, _ in _COLUMNS)

    def __init__(self, **columns: np.ndarray) -> None:
        n = None
        for name, dtype in _COLUMNS:
            arr = np.asarray(columns.get(name, np.empty(0)), dtype=dtype)
            if n is None:
                n = arr.shape[0]
            elif arr.shape[0] != n:
                raise ValueError(
                    f"column {name!r} has length {arr.shape[0]}, expected {n}"
                )
            object.__setattr__(self, name, arr)
        if n and np.any(np.diff(self.time) < 0):
            order = np.argsort(self.time, kind="stable")
            for name, _ in _COLUMNS:
                object.__setattr__(self, name, getattr(self, name)[order])

    def __setattr__(self, key, value):  # pragma: no cover - guard
        raise AttributeError("ErrorLog columns are read-only; build a new log")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "ErrorLog":
        """An error log with no events."""
        return cls()

    @classmethod
    def from_records(cls, records: Iterable[EventRecord]) -> "ErrorLog":
        """Build a log from an iterable of :class:`EventRecord`."""
        records = list(records)
        if not records:
            return cls.empty()
        return cls(
            time=[r.time for r in records],
            node=[r.node for r in records],
            dimm=[r.dimm for r in records],
            kind=[int(r.kind) for r in records],
            ce_count=[r.ce_count for r in records],
            rank=[r.rank for r in records],
            bank=[r.bank for r in records],
            row=[r.row for r in records],
            col=[r.col for r in records],
            scrubber=[r.scrubber for r in records],
            manufacturer=[r.manufacturer for r in records],
        )

    @classmethod
    def concatenate(cls, logs: Sequence["ErrorLog"]) -> "ErrorLog":
        """Merge several logs into one, re-sorting by time."""
        logs = [log for log in logs if len(log)]
        if not logs:
            return cls.empty()
        return cls(
            **{
                name: np.concatenate([getattr(log, name) for log in logs])
                for name, _ in _COLUMNS
            }
        )

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.time.shape[0])

    def __iter__(self) -> Iterator[EventRecord]:
        return (self.record(i) for i in range(len(self)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ErrorLog):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name, _ in _COLUMNS
        )

    def __hash__(self):  # pragma: no cover - logs are not hashable
        return NotImplemented

    def record(self, index: int) -> EventRecord:
        """Materialise event ``index`` as an :class:`EventRecord`."""
        return EventRecord(
            time=float(self.time[index]),
            node=int(self.node[index]),
            dimm=int(self.dimm[index]),
            kind=EventKind(int(self.kind[index])),
            ce_count=int(self.ce_count[index]),
            rank=int(self.rank[index]),
            bank=int(self.bank[index]),
            row=int(self.row[index]),
            col=int(self.col[index]),
            scrubber=bool(self.scrubber[index]),
            manufacturer=int(self.manufacturer[index]),
        )

    def to_records(self) -> List[EventRecord]:
        """Materialise the whole log as a list of records."""
        return list(self)

    # ------------------------------------------------------------------ #
    # Masks and selection
    # ------------------------------------------------------------------ #
    def _select(self, mask: np.ndarray) -> "ErrorLog":
        return ErrorLog(
            **{name: getattr(self, name)[mask] for name, _ in _COLUMNS}
        )

    def select(self, mask: np.ndarray) -> "ErrorLog":
        """Return a sub-log selected by a boolean mask or index array."""
        return self._select(np.asarray(mask))

    def is_kind(self, kind: EventKind) -> np.ndarray:
        """Boolean mask of events of ``kind``."""
        return self.kind == int(kind)

    @property
    def is_ue_mask(self) -> np.ndarray:
        """Mask of events counted as uncorrected errors (UE or over-temp)."""
        return (self.kind == int(EventKind.UE)) | (
            self.kind == int(EventKind.OVERTEMP)
        )

    def filter_kind(self, kind: EventKind) -> "ErrorLog":
        """Events of one kind only."""
        return self._select(self.is_kind(kind))

    def filter_time(self, t_start: float, t_end: float) -> "ErrorLog":
        """Events with ``t_start <= time < t_end`` (fast: uses sortedness)."""
        lo = int(np.searchsorted(self.time, t_start, side="left"))
        hi = int(np.searchsorted(self.time, t_end, side="left"))
        return self._select(np.arange(lo, hi))

    def filter_node(self, node: int) -> "ErrorLog":
        """Events observed on one node."""
        return self._select(self.node == node)

    def filter_nodes(self, nodes: Sequence[int]) -> "ErrorLog":
        """Events observed on any of ``nodes``."""
        return self._select(np.isin(self.node, np.asarray(nodes)))

    def filter_manufacturer(self, manufacturer: int) -> "ErrorLog":
        """Events on nodes populated by ``manufacturer``.

        Node-level events (boots) carry ``manufacturer = -1``; they are kept
        if the node hosts at least one DIMM of the requested manufacturer, so
        the per-manufacturer subsystems of Section 4.5 keep their boot
        history.
        """
        with_manu = self.manufacturer == manufacturer
        nodes = np.unique(self.node[with_manu])
        node_level = (self.manufacturer < 0) & np.isin(self.node, nodes)
        return self._select(with_manu | node_level)

    def exclude_dimms(self, dimms: Sequence[int]) -> "ErrorLog":
        """Drop all DIMM-level events belonging to ``dimms``."""
        dimms = np.asarray(list(dimms))
        if dimms.size == 0:
            return self
        mask = ~np.isin(self.dimm, dimms) | (self.dimm < 0)
        return self._select(mask)

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> np.ndarray:
        """Sorted unique node identifiers present in the log."""
        return np.unique(self.node)

    @property
    def ue_times(self) -> np.ndarray:
        """Times of all events counted as UEs."""
        return self.time[self.is_ue_mask]

    def total_corrected_errors(self) -> int:
        """Total number of corrected errors (sum of CE counts, §2.1.1)."""
        return int(self.ce_count[self.kind == int(EventKind.CE)].sum())

    def count_kind(self, kind: EventKind) -> int:
        """Number of log records of ``kind``."""
        return int(np.count_nonzero(self.kind == int(kind)))

    def count_ues(self) -> int:
        """Number of events counted as uncorrected errors."""
        return int(np.count_nonzero(self.is_ue_mask))

    def stats(self) -> ErrorLogStats:
        """Summary statistics used to validate the generator (§2.1.5)."""
        ce_mask = self.kind == int(EventKind.CE)
        span = 0.0
        if len(self):
            span = float(self.time[-1] - self.time[0])
        return ErrorLogStats(
            n_events=len(self),
            n_ce_records=int(np.count_nonzero(ce_mask)),
            n_corrected_errors=self.total_corrected_errors(),
            n_uncorrected_errors=self.count_ues(),
            n_ue_warnings=self.count_kind(EventKind.UE_WARNING),
            n_boots=self.count_kind(EventKind.BOOT),
            n_retirements=self.count_kind(EventKind.RETIREMENT),
            n_overtemp=self.count_kind(EventKind.OVERTEMP),
            n_nodes_with_events=int(np.unique(self.node).size),
            n_dimms_with_ce=int(np.unique(self.dimm[ce_mask]).size),
            time_span_seconds=span,
        )

    def time_range(self) -> tuple[float, float]:
        """(first, last) event time; (0, 0) for an empty log."""
        if not len(self):
            return (0.0, 0.0)
        return float(self.time[0]), float(self.time[-1])

    # ------------------------------------------------------------------ #
    # Grouping
    # ------------------------------------------------------------------ #
    def node_slices(self) -> dict[int, np.ndarray]:
        """Map node id -> indices of its events (each in time order)."""
        order = np.lexsort((self.time, self.node))
        sorted_nodes = self.node[order]
        result: dict[int, np.ndarray] = {}
        if order.size == 0:
            return result
        boundaries = np.flatnonzero(np.diff(sorted_nodes)) + 1
        groups = np.split(order, boundaries)
        for group in groups:
            result[int(self.node[group[0]])] = group
        return result

    def per_node(self) -> dict[int, "ErrorLog"]:
        """Split the log into one sub-log per node."""
        return {
            node: self._select(indices)
            for node, indices in self.node_slices().items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"ErrorLog(events={s.n_events}, CEs={s.n_corrected_errors}, "
            f"UEs={s.n_uncorrected_errors}, nodes={s.n_nodes_with_events})"
        )
