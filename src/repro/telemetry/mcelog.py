"""mcelog-style and firmware-style text serialisation of error logs.

MareNostrum 3 collected corrected errors with a daemon based on Linux
``mcelog`` (Section 2.1.1) and uncorrected errors / warnings / over-
temperature conditions with the IBM platform firmware (Section 2.1.2).  This
module provides a plain-text round-trippable representation of both streams
so that externally produced logs in the same shape can be ingested and so
that generated logs can be inspected with standard tools.

The formats are deliberately simple, line-oriented and human readable::

    CE time=86455.1 node=17 dimm=139 count=12 rank=1 bank=4 row=5121 \
col=77 scrubber=1 manufacturer=2
    UE time=90001.0 node=17 dimm=139 manufacturer=2

Timestamps are emitted with ``repr`` precision so that a format -> parse
round-trip reproduces every ``float64`` bit-exactly: real dumps carry
sub-millisecond spacing, and a fixed-precision rendering would collapse or
reorder those events on ingestion.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, TextIO, Union

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.records import EventKind, EventRecord

_CE_FIELDS = (
    "time",
    "node",
    "dimm",
    "count",
    "rank",
    "bank",
    "row",
    "col",
    "scrubber",
    "manufacturer",
)
_UE_FIELDS = ("time", "node", "dimm", "manufacturer")

_KIND_TAGS = {
    EventKind.CE: "CE",
    EventKind.UE: "UE",
    EventKind.UE_WARNING: "UEWARN",
    EventKind.BOOT: "BOOT",
    EventKind.RETIREMENT: "RETIRE",
    EventKind.OVERTEMP: "OVERTEMP",
}
_TAG_KINDS = {v: k for k, v in _KIND_TAGS.items()}


def _format_record(record: EventRecord) -> str:
    tag = _KIND_TAGS[EventKind(record.kind)]
    fields = [f"time={record.time!r}", f"node={record.node}"]
    if record.dimm >= 0:
        fields.append(f"dimm={record.dimm}")
    if record.kind == EventKind.CE:
        fields.extend(
            [
                f"count={record.ce_count}",
                f"rank={record.rank}",
                f"bank={record.bank}",
                f"row={record.row}",
                f"col={record.col}",
                f"scrubber={int(record.scrubber)}",
            ]
        )
    if record.manufacturer >= 0:
        fields.append(f"manufacturer={record.manufacturer}")
    return tag + " " + " ".join(fields)


def _parse_line(line: str) -> EventRecord:
    parts = line.split()
    if not parts:
        raise ValueError("empty log line")
    tag = parts[0]
    if tag not in _TAG_KINDS:
        raise ValueError(f"unknown event tag {tag!r}")
    kind = _TAG_KINDS[tag]
    values = {}
    for token in parts[1:]:
        if "=" not in token:
            raise ValueError(f"malformed field {token!r} in line {line!r}")
        key, value = token.split("=", 1)
        if key in values:
            raise ValueError(f"duplicate field {key!r} in line {line!r}")
        values[key] = value
    try:
        time = float(values["time"])
        if time < 0:
            raise ValueError(f"negative time {values['time']!r} in line {line!r}")
        count = int(values.get("count", 1 if kind == EventKind.CE else 0))
        if count < 0:
            raise ValueError(
                f"negative count {values['count']!r} in line {line!r}"
            )
        return EventRecord(
            time=time,
            node=int(values["node"]),
            dimm=int(values.get("dimm", -1)),
            kind=kind,
            ce_count=count,
            rank=int(values.get("rank", -1)),
            bank=int(values.get("bank", -1)),
            row=int(values.get("row", -1)),
            col=int(values.get("col", -1)),
            scrubber=bool(int(values.get("scrubber", 0))),
            manufacturer=int(values.get("manufacturer", -1)),
        )
    except KeyError as exc:
        raise ValueError(f"missing field {exc} in line {line!r}") from exc


def format_mcelog(log: ErrorLog) -> str:
    """Serialise the corrected-error stream (CE records only)."""
    lines = [
        _format_record(rec) for rec in log if EventKind(rec.kind) == EventKind.CE
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def format_ue_log(log: ErrorLog) -> str:
    """Serialise the firmware stream (UEs, warnings, boots, retirements)."""
    lines = [
        _format_record(rec)
        for rec in log
        if EventKind(rec.kind) != EventKind.CE
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def format_full_log(log: ErrorLog) -> str:
    """Serialise every event of the log."""
    lines = [_format_record(rec) for rec in log]
    return "\n".join(lines) + ("\n" if lines else "")


def _iter_lines(source: Union[str, TextIO, Iterable[str]]) -> Iterable[str]:
    if isinstance(source, str):
        return source.splitlines()
    return source


def iter_mcelog_records(
    source: Union[str, TextIO, Iterable[str]],
    start_lineno: int = 1,
) -> Iterator[EventRecord]:
    """Lazily parse an mcelog-format stream into :class:`EventRecord`\\ s.

    This is the streaming entry point: it consumes one line at a time (a
    string, an open file, or any iterable of lines — including a live tail),
    skips blanks and ``#`` comments, and yields records as they parse.  Every
    ``ValueError`` is annotated with the 1-based line number so a bad line in
    a multi-MB firmware dump is findable.  ``start_lineno`` lets a resumed
    tail keep numbering from where the previous read stopped.
    """
    for lineno, raw in enumerate(_iter_lines(source), start=start_lineno):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield _parse_line(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc


def parse_mcelog(source: Union[str, TextIO, Iterable[str]]) -> ErrorLog:
    """Parse a corrected-error stream produced by :func:`format_mcelog`.

    Non-CE lines are tolerated and parsed as their own kinds, so a combined
    file also round-trips through this function.  Malformed input raises
    ``ValueError`` with the offending 1-based line number.
    """
    records: List[EventRecord] = list(iter_mcelog_records(source))
    return ErrorLog.from_records(records)


def parse_ue_log(source: Union[str, TextIO, Iterable[str]]) -> ErrorLog:
    """Parse a firmware event stream produced by :func:`format_ue_log`."""
    return parse_mcelog(source)
