"""Core contribution: the RL-based adaptive mitigation controller.

This package contains the paper's primary contribution (Section 3): the
Markov-decision-process formulation of uncorrected-error mitigation control,
the per-node feature extraction of Table 1, the log-replay environment, the
dueling double deep Q-network with prioritized experience replay, the
training loop and hyperparameter search, plus policy wrappers used by the
evaluation harness.
"""

from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.environment import MitigationEnv
from repro.core.features import (
    FEATURE_NAMES,
    N_FEATURES,
    NodeFeatureTrack,
    OnlineFeatureState,
    OnlineStep,
    StateNormalizer,
    build_feature_tracks,
    extract_node_features,
)
from repro.core.hyperparams import HyperparameterSpace, RandomSearchResult, random_search
from repro.core.mdp import Action, Transition, compute_reward
from repro.core.policies import (
    DecisionContext,
    MitigationPolicy,
    RLPolicy,
)
from repro.core.qlearning import TabularQAgent, TabularQConfig
from repro.core.replay import PrioritizedReplayBuffer, SumTree, UniformReplayBuffer
from repro.core.trainer import TrainingResult, train_agent

__all__ = [
    "Action",
    "DDDQNAgent",
    "DQNConfig",
    "DecisionContext",
    "FEATURE_NAMES",
    "HyperparameterSpace",
    "MitigationEnv",
    "MitigationPolicy",
    "N_FEATURES",
    "NodeFeatureTrack",
    "OnlineFeatureState",
    "OnlineStep",
    "PrioritizedReplayBuffer",
    "RLPolicy",
    "RandomSearchResult",
    "StateNormalizer",
    "SumTree",
    "TabularQAgent",
    "TabularQConfig",
    "TrainingResult",
    "Transition",
    "UniformReplayBuffer",
    "build_feature_tracks",
    "compute_reward",
    "extract_node_features",
    "random_search",
    "train_agent",
]
