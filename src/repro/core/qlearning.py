"""Tabular Q-learning agent over a discretised state (ablation / extension).

The paper argues that the state space is effectively continuous and therefore
approximates the Q-function with a deep network.  This module provides the
obvious simpler alternative — a tabular agent over a coarse discretisation of
the most informative features — so that the benefit of the function
approximator can be quantified (``benchmarks/test_ablation_tabular.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.features import FEATURE_INDEX, N_FEATURES
from repro.core.mdp import N_ACTIONS
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class TabularQConfig:
    """Hyperparameters of the tabular agent."""

    learning_rate: float = 0.1
    gamma: float = 0.97
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 20_000
    #: Bin edges (log10 node–hours) of the potential-UE-cost feature.
    ue_cost_bins: Tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 4.0)
    #: Bin edges (log10 count) of the cumulative CE count.
    ce_bins: Tuple[float, ...] = (0.0, 1.0, 2.0, 3.0)
    reward_scale: float = 100.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("learning_rate", self.learning_rate)
        check_fraction("gamma", self.gamma)
        check_positive("epsilon_decay_steps", self.epsilon_decay_steps)
        check_positive("reward_scale", self.reward_scale)


class TabularQAgent:
    """Q-learning over (UE-cost bin, CE bin, warnings flag, recent-boot flag).

    The interface mirrors :class:`~repro.core.dqn.DDDQNAgent` closely enough
    that :func:`repro.core.trainer.train_agent` and
    :class:`~repro.core.policies.RLPolicy` work with either, but the state
    passed in must be the *normalised* state vector produced by
    :class:`~repro.core.features.StateNormalizer` (the same one the deep
    agent consumes), from which the discretisation is derived.
    """

    def __init__(self, state_dim: int, config: Optional[TabularQConfig] = None) -> None:
        check_positive("state_dim", state_dim)
        self.config = config or TabularQConfig()
        self.state_dim = int(state_dim)
        self._q: Dict[Tuple[int, ...], np.ndarray] = {}
        self._rng = as_generator(self.config.seed, "tabular")
        self.env_steps = 0
        self.train_steps = 0
        self.training_wallclock_seconds = 0.0

    # ------------------------------------------------------------------ #
    def _discretise(self, state: np.ndarray) -> Tuple[int, ...]:
        state = np.asarray(state, dtype=float).ravel()
        cfg = self.config
        # The normalised state stores log1p-compressed values; convert the
        # compressed value back to a log10 order of magnitude.
        ue_cost_log10 = state[-1] / np.log(10.0)
        ces_log10 = state[FEATURE_INDEX["ces_total"]] / np.log(10.0)
        ue_bin = int(np.digitize(ue_cost_log10, cfg.ue_cost_bins))
        ce_bin = int(np.digitize(ces_log10, cfg.ce_bins))
        warnings_flag = int(state[FEATURE_INDEX["ue_warnings_total"]] > 0)
        boot_flag = int(
            state[FEATURE_INDEX["time_since_boot"]] < np.log1p(24 * 3600.0)
        )
        return (ue_bin, ce_bin, warnings_flag, boot_flag)

    def _values(self, key: Tuple[int, ...]) -> np.ndarray:
        if key not in self._q:
            self._q[key] = np.zeros(N_ACTIONS)
        return self._q[key]

    @property
    def epsilon(self) -> float:
        cfg = self.config
        fraction = min(1.0, self.env_steps / cfg.epsilon_decay_steps)
        return cfg.epsilon_start + fraction * (cfg.epsilon_end - cfg.epsilon_start)

    @property
    def n_visited_states(self) -> int:
        """Number of distinct discretised states seen so far."""
        return len(self._q)

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-values of the discretised state."""
        return self._values(self._discretise(state)).copy()

    def act(self, state: np.ndarray, explore: bool = True) -> int:
        if explore and self._rng.random() < self.epsilon:
            return int(self._rng.integers(N_ACTIONS))
        return int(np.argmax(self.q_values(state)))

    def observe(self, transition) -> None:
        """Standard one-step Q-learning update."""
        cfg = self.config
        self.env_steps += 1
        key = self._discretise(transition.state)
        values = self._values(key)
        reward = transition.reward / cfg.reward_scale
        if transition.done or transition.next_state is None:
            target = reward
        else:
            next_values = self._values(self._discretise(transition.next_state))
            target = reward + cfg.gamma * float(np.max(next_values))
        values[transition.action] += cfg.learning_rate * (
            target - values[transition.action]
        )
        self.train_steps += 1

    @property
    def training_cost_node_hours(self) -> float:
        """Tabular updates are effectively free; charge nothing."""
        return 0.0
