"""Markov-decision-process formulation of UE mitigation control (Section 3.2).

* **State** — the Table 1 telemetry features of the node plus the potential
  UE cost of the job currently running on it (Equation 3).
* **Actions** — request a mitigation (1) or do nothing (0).
* **Transitions** — the environment advances to the next merged event; if it
  is a UE the node is shut down and the episode terminates.
* **Reward** — the negative lost node–hours (Equation 4):
  ``R = -a * mitigation_cost - ue_occurred * ue_cost``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_non_negative


class Action(enum.IntEnum):
    """The two actions available to the agent at every decision point."""

    NO_MITIGATION = 0
    MITIGATE = 1


#: Number of actions in the MDP.
N_ACTIONS: int = len(Action)


def compute_reward(
    action: int,
    mitigation_cost: float,
    ue_occurred: bool,
    ue_cost: float,
) -> float:
    """Equation 4: ``R_a = -a×mitigation_cost − UE_occurred×UE_cost``.

    All quantities are in node–hours; the reward is therefore the negative
    number of node–hours lost as a consequence of the action and of any UE
    that follows it.
    """
    check_non_negative("mitigation_cost", mitigation_cost)
    check_non_negative("ue_cost", ue_cost)
    if action not in (0, 1):
        raise ValueError(f"action must be 0 or 1, got {action!r}")
    reward = -float(action) * float(mitigation_cost)
    if ue_occurred:
        reward -= float(ue_cost)
    return reward


@dataclass(frozen=True)
class Transition:
    """One experience tuple stored in the replay memory."""

    state: np.ndarray
    action: int
    reward: float
    next_state: Optional[np.ndarray]
    done: bool

    def __post_init__(self) -> None:
        if self.action not in (0, 1):
            raise ValueError(f"action must be 0 or 1, got {self.action!r}")
        if self.done and self.next_state is not None:
            # Terminal transitions carry no successor state; the Q-target
            # reduces to the reward alone.
            object.__setattr__(self, "next_state", None)
        if not self.done and self.next_state is None:
            raise ValueError("non-terminal transitions need a next_state")


@dataclass(frozen=True)
class EpisodeSummary:
    """Bookkeeping returned by the environment at the end of an episode."""

    node: int
    n_steps: int
    n_mitigations: int
    ue_occurred: bool
    total_reward: float
    mitigation_cost: float
    ue_cost: float
