"""Policy interface shared by the RL agent and every baseline.

The evaluation harness replays the test portion of the error log and asks a
policy, at every merged (non-UE) event, whether to trigger a mitigation.  The
policy sees a :class:`DecisionContext` carrying the Table 1 telemetry
features and the potential UE cost of the job running on the node.  The
Oracle baseline additionally needs to know whether the current event is the
last one before a UE — a field real policies must never read (it encodes the
future); it exists only to quantify the room for improvement (Section 4.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dqn import DDDQNAgent
from repro.core.features import StateNormalizer
from repro.core.mdp import Action

#: One window of a multi-trace batched decision request: the trace object
#: and the half-open event range ``[start, stop)`` within it.
WindowSpec = Tuple[object, int, int]


def concat_ranges(
    starts: np.ndarray, stops: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated ``arange(start, stop)`` index runs, vectorized.

    Returns ``(rows, widths)`` where ``rows`` is the concatenation of every
    window's index range (used to gather window slices out of one stacked
    per-panel array in a single fancy-index operation) and ``widths`` the
    per-window lengths.  Shared by the lockstep evaluation runner and the
    policies' ``decide_windows`` implementations.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    widths = stops - starts
    total = int(widths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), widths
    bounds = np.empty(widths.size + 1, dtype=np.int64)
    bounds[0] = 0
    np.cumsum(widths, out=bounds[1:])
    pos = np.arange(total, dtype=np.int64)
    rows = pos - np.repeat(bounds[:-1] - starts, widths)
    return rows, widths


@dataclass(frozen=True)
class DecisionContext:
    """Everything a policy may observe at one decision point."""

    #: Time of the merged event, seconds.
    time: float
    #: Node on which the event was observed.
    node: int
    #: Raw (unnormalised) Table 1 telemetry feature vector.
    features: np.ndarray
    #: Potential UE cost at this instant, node–hours (Equation 3).
    ue_cost: float
    #: Oracle-only flag: is this the last event before a UE on this node?
    is_last_event_before_ue: bool = False
    #: Index of this event within the evaluation trace currently replayed
    #: (lets policies look up per-trace caches built by ``prepare_trace``).
    event_index: int = -1


class MitigationPolicy(abc.ABC):
    """A decision rule mapping telemetry state to mitigate / do-nothing."""

    #: Human-readable name used in reports and plots.
    name: str = "policy"

    #: Whether :meth:`decide` reads ``DecisionContext.ue_cost``.  The
    #: vectorized evaluation runner uses this to tell apart policies whose
    #: whole-trace decisions can be computed in one batch (False) from those
    #: that must be resolved through the mitigation-cost feedback loop when
    #: mitigations reset the potential UE cost (True; see
    #: :func:`repro.evaluation.runner.evaluate_policy`).
    cost_dependent: bool = False

    @abc.abstractmethod
    def decide(self, context: DecisionContext) -> bool:
        """Return True to trigger a mitigation at this event."""

    def decide_batch(
        self,
        trace,
        ue_costs: Optional[np.ndarray] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        """Vectorised :meth:`decide` over events ``[start, stop)`` of a trace.

        ``trace`` is an :class:`repro.evaluation.runner.EvaluationTrace`;
        ``ue_costs`` (when the policy is :attr:`cost_dependent`) carries the
        potential UE cost of each event in the range, aligned with it
        (``len(ue_costs) == stop - start``).  Implementations must return a
        boolean array for the range whose entries at non-UE events equal
        what sequential :meth:`decide` calls would have returned (entries at
        UE events are ignored — the runner never consults the policy there),
        or ``None`` to decline, which sends the evaluation runner down the
        scalar per-event path.  The base implementation declines: policies
        that only implement :meth:`decide` keep working unchanged.
        """
        return None

    def decide_windows(
        self,
        windows: Sequence[WindowSpec],
        ue_costs: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """Batched :meth:`decide_batch` over windows of *several* traces.

        The lockstep evaluation runner resolves the speculative renewal
        windows of every trace in the panel per round and submits them as
        one call: ``windows`` is a sequence of ``(trace, start, stop)``
        specs and ``ue_costs`` (for :attr:`cost_dependent` policies) one
        float array concatenating each window's potential UE costs in
        window order.  Implementations return one boolean array of the
        summed window widths (entries at UE events are ignored), or
        ``None`` to decline — which sends the *whole policy* down the
        scalar per-event path, exactly like a declined ``decide_batch``.

        The base implementation loops :meth:`decide_batch` per window, so
        any policy with a working ``decide_batch`` participates in lockstep
        replay unchanged; implementations overriding this (the RL agent,
        Myopic-RF) answer all windows with one batched model evaluation.
        Note the windows of one call may interleave different traces:
        ``decide_batch`` implementations must key any per-trace cache on
        the ``trace`` argument itself (all built-ins do).
        """
        pieces: List[np.ndarray] = []
        offset = 0
        for trace, start, stop in windows:
            width = stop - start
            if self.cost_dependent:
                if ue_costs is None:
                    return None
                piece = self.decide_batch(
                    trace,
                    ue_costs=ue_costs[offset : offset + width],
                    start=start,
                    stop=stop,
                )
            else:
                piece = self.decide_batch(trace, start=start, stop=stop)
            if piece is None:
                return None
            pieces.append(np.asarray(piece, dtype=bool))
            offset += width
        if not pieces:
            return np.zeros(0, dtype=bool)
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One decision per row of concurrent per-node feature states.

        This is the *serving* entry point: a micro-batch tick hands the
        policy the current feature vector and potential UE cost of several
        distinct nodes at once — unlike :meth:`decide_batch`, the rows are
        not a window of one trace but one pending step per node.  Returns a
        boolean array aligned with the rows.

        The base implementation loops :meth:`decide` with one
        :class:`DecisionContext` per row, which is correct for any policy
        whose ``decide`` is a pure function of the context (every built-in
        except the stateful periodic baseline).  Batch-backed policies
        override it so one model evaluation serves the whole tick.
        """
        features = np.asarray(features, dtype=float)
        costs = np.asarray(ue_costs, dtype=float)
        out = np.empty(len(features), dtype=bool)
        for i in range(len(features)):
            out[i] = self.decide(
                DecisionContext(
                    time=float(times[i]) if times is not None else 0.0,
                    node=int(nodes[i]) if nodes is not None else -1,
                    features=features[i],
                    ue_cost=float(costs[i]),
                )
            )
        return out

    def reset(self) -> None:
        """Called before each node's test trace is replayed (stateless by default)."""

    def prepare_trace(self, features: np.ndarray) -> None:
        """Optional hook: pre-compute per-trace data from the feature matrix.

        The evaluation runner calls this once per node trace with the full
        ``(n_events, N_FEATURES)`` telemetry feature matrix before replaying
        the events, so that policies backed by batch predictors (the random
        forests) can vectorise their per-event work.
        """

    def prepare_traces(self, traces) -> None:
        """Optional bulk hook: pre-compute data for a whole replay at once.

        The vectorized evaluation runner calls this once with the full list
        of :class:`~repro.evaluation.runner.EvaluationTrace` objects before
        replaying them (it still calls :meth:`prepare_trace` per trace, in
        order), so batch predictors can amortise one prediction over every
        trace of the split instead of paying per-trace call overhead.  The
        scalar reference path never calls it.
        """

    @property
    def training_cost_node_hours(self) -> float:
        """Training + validation cost charged by the cost–benefit analysis."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class RLPolicy(MitigationPolicy):
    """Greedy wrapper around a trained :class:`DDDQNAgent`."""

    cost_dependent = True  # the UE cost is part of the network's state

    def __init__(
        self,
        agent: DDDQNAgent,
        normalizer: Optional[StateNormalizer] = None,
        name: str = "RL",
        training_cost_node_hours: float = 0.0,
    ) -> None:
        self.agent = agent
        self.normalizer = normalizer or StateNormalizer()
        self.name = name
        self._training_cost = float(training_cost_node_hours)
        self._norm_features: Optional[np.ndarray] = None
        self._norm_features_source: Optional[np.ndarray] = None
        self._norm_stacked: Optional[np.ndarray] = None
        self._norm_offsets: Optional[Dict[int, int]] = None
        self._norm_pinned: Optional[List[np.ndarray]] = None

    def decide(self, context: DecisionContext) -> bool:
        state = self.normalizer.state_vector(context.features, context.ue_cost)
        return self.agent.act(state, explore=False) == Action.MITIGATE

    def prepare_trace(self, features: np.ndarray) -> None:
        """Pre-normalise the telemetry part of the state for a whole trace.

        The cost column is the only state component that changes between the
        decision core's speculative windows, so normalising the feature
        columns once per trace removes most per-window work.  Only the stock
        :class:`StateNormalizer` transform is separable this way; custom
        normalizers fall back to whole-state normalisation per window.
        """
        if type(self.normalizer) is not StateNormalizer:
            self._norm_features = None
            self._norm_features_source = None
            return
        offsets = self._norm_offsets
        if offsets is not None and self._norm_stacked is not None:
            base = offsets.get(id(features))
            if base is not None:
                # The panel-wide stack already holds this trace's rows
                # (element-wise transform, so slicing it is bit-identical
                # to re-normalising the trace on its own).
                self._norm_features = self._norm_stacked[
                    base : base + len(features)
                ]
                self._norm_features_source = features
                return
        padded = np.concatenate(
            [features, np.zeros((len(features), 1))], axis=1
        )
        self._norm_features = self.normalizer.transform(padded)[:, :-1]
        self._norm_features_source = features

    def prepare_traces(self, traces) -> None:
        """Pre-normalise the telemetry features of a whole replay panel.

        Stacks every trace's feature matrix, normalises once, and remembers
        each trace's row offset into the stack (keyed by the identity of its
        feature matrix, with the matrices pinned so the keys stay valid), so
        :meth:`decide_windows` can gather any mix of per-trace windows with
        one fancy-index instead of per-trace slicing.  The transform is
        element-wise, so the stacked rows are bit-identical to the
        per-trace :meth:`prepare_trace` cache.  Called with an empty
        sequence, this releases the cache.
        """
        self._norm_stacked = None
        self._norm_offsets = None
        self._norm_pinned = None
        if type(self.normalizer) is not StateNormalizer:
            return
        mats = [trace.features for trace in traces]
        if not mats:
            return
        stacked_raw = mats[0] if len(mats) == 1 else np.concatenate(mats, axis=0)
        padded = np.concatenate(
            [stacked_raw, np.zeros((len(stacked_raw), 1))], axis=1
        )
        self._norm_stacked = self.normalizer.transform(padded)[:, :-1]
        offsets: Dict[int, int] = {}
        offset = 0
        for mat in mats:
            offsets[id(mat)] = offset
            offset += len(mat)
        self._norm_offsets = offsets
        self._norm_pinned = mats

    def decide_windows(
        self,
        windows: Sequence[WindowSpec],
        ue_costs: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """All windows of a lockstep round in one Q-network forward.

        Gathers the pre-normalised feature rows of every window out of the
        :meth:`prepare_traces` stack, appends the (exactly replicated) cost
        column transform, and runs a single batched advantage-difference
        evaluation over the concatenation.  Falls back to the per-window
        default when the bulk cache is missing (custom normalizer, or a
        trace outside the prepared panel).  The same batched-GEMM rounding
        caveat as :meth:`decide_batch` applies — pinned by the equivalence
        suites and the golden harness.
        """
        if ue_costs is None:
            return None
        offsets = self._norm_offsets
        if offsets is None or self._norm_stacked is None:
            return super().decide_windows(windows, ue_costs)
        starts = np.empty(len(windows), dtype=np.int64)
        stops = np.empty(len(windows), dtype=np.int64)
        for k, (trace, start, stop) in enumerate(windows):
            base = offsets.get(id(trace.features))
            if base is None:
                return super().decide_windows(windows, ue_costs)
            starts[k] = base + start
            stops[k] = base + stop
        rows, _ = concat_ranges(starts, stops)
        costs = np.asarray(ue_costs, dtype=float)
        states = np.empty((rows.size, self._norm_stacked.shape[1] + 1))
        states[:, :-1] = self._norm_stacked[rows]
        states[:, -1] = np.log1p(np.maximum(costs, 0.0))
        return self._greedy_decisions(states)

    def decide_batch(
        self,
        trace,
        ue_costs: Optional[np.ndarray] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        """One greedy Q-network forward over a whole range of events.

        The state normalisation is element-wise (bit-identical to the
        per-event path), but the matrix products are not: batched GEMMs
        (and the reduced advantage-difference head below) round differently
        from ``decide()``'s single-row products, so a decision can diverge
        whenever the two actions' Q-values are within rounding noise of
        each other — not only on exact ties.  For trained (non-degenerate)
        agents such near-ties are vanishingly rare; the scalar-vs-vector
        equivalence suite and the golden harness pin that the repo's
        experiments decide identically.  Note the golden fingerprints were
        already BLAS-dependent before batched evaluation existed (training
        itself is batched), so this does not add a new class of
        machine-dependence.
        """
        if ue_costs is None:
            return None
        stop = len(trace) if stop is None else stop
        costs = np.asarray(ue_costs, dtype=float)
        if (
            self._norm_features is not None
            and self._norm_features_source is trace.features
        ):
            # Reuse the per-trace normalised features; the cost column's
            # transform (log1p of the clamped cost) is replicated exactly.
            states = np.empty((stop - start, self._norm_features.shape[1] + 1))
            states[:, :-1] = self._norm_features[start:stop]
            states[:, -1] = np.log1p(np.maximum(costs, 0.0))
        else:
            states = self.normalizer.transform(
                np.concatenate([trace.features[start:stop], costs[:, None]], axis=1)
            )
        return self._greedy_decisions(states)

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One Q-network forward for a whole micro-batch of nodes.

        Same element-wise state normalisation as the uncached
        :meth:`decide_batch` branch, so each row's state is bit-identical to
        what ``decide()`` would build; the batched-GEMM rounding caveat of
        :meth:`decide_batch` applies unchanged.
        """
        costs = np.asarray(ue_costs, dtype=float)
        states = self.normalizer.transform(
            np.concatenate(
                [np.asarray(features, dtype=float), costs[:, None]], axis=1
            )
        )
        return self._greedy_decisions(states)

    def _greedy_decisions(self, states: np.ndarray) -> np.ndarray:
        """Greedy decision = argmax over Q-values, for a batch of states.

        The dueling combine adds the same per-row constant (V - mean
        advantage) to both actions, so the argmax reduces to the sign of
        the advantage difference — one matrix-vector product instead of
        both head products.  (With two actions, ``decide()``'s argmax picks
        NOTHING on an exact tie; ``> 0`` preserves that.)
        """
        network = self.agent.online
        if network.n_actions != 2:  # pragma: no cover - N_ACTIONS is 2
            q_values = network.forward(states)
            return np.argmax(q_values, axis=1) == int(Action.MITIGATE)
        hidden = states
        for weights, biases in zip(network.weights, network.biases):
            hidden = np.maximum(hidden @ weights + biases, 0.0)
        mitigate = int(Action.MITIGATE)
        other = 1 - mitigate
        advantage_delta = hidden @ (
            network.advantage_w[:, mitigate] - network.advantage_w[:, other]
        ) + (network.advantage_b[mitigate] - network.advantage_b[other])
        return advantage_delta > 0.0

    @property
    def training_cost_node_hours(self) -> float:
        return self._training_cost + self.agent.training_cost_node_hours


class CallablePolicy(MitigationPolicy):
    """Adapter turning a plain function ``context -> bool`` into a policy."""

    def __init__(self, fn, name: str = "custom") -> None:
        self._fn = fn
        self.name = name

    def decide(self, context: DecisionContext) -> bool:
        return bool(self._fn(context))


class FallbackPolicy(MitigationPolicy):
    """Delegate policy re-labelled under another approach's name.

    A learned approach that cannot be trained yet (no history precedes the
    test range) still has to be charged *some* behaviour; the experiment
    substitutes a cheap fallback — typically :class:`NeverMitigatePolicy`,
    which is also what an untrained model converges to — but records the
    evaluation under the learned approach's name.  No training cost is
    charged: nothing was trained.
    """

    def __init__(self, inner: MitigationPolicy, name: str) -> None:
        self.inner = inner
        self.name = name

    @property
    def cost_dependent(self) -> bool:
        return self.inner.cost_dependent

    def reset(self) -> None:
        self.inner.reset()

    def prepare_trace(self, features: np.ndarray) -> None:
        self.inner.prepare_trace(features)

    def prepare_traces(self, traces) -> None:
        self.inner.prepare_traces(traces)

    def decide(self, context: DecisionContext) -> bool:
        return self.inner.decide(context)

    def decide_batch(
        self,
        trace,
        ue_costs: Optional[np.ndarray] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        return self.inner.decide_batch(trace, ue_costs, start=start, stop=stop)

    def decide_windows(
        self,
        windows: Sequence[WindowSpec],
        ue_costs: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        return self.inner.decide_windows(windows, ue_costs)

    def decide_nodes(
        self,
        features: np.ndarray,
        ue_costs: np.ndarray,
        times: Optional[np.ndarray] = None,
        nodes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return self.inner.decide_nodes(features, ue_costs, times=times, nodes=nodes)
