"""Policy interface shared by the RL agent and every baseline.

The evaluation harness replays the test portion of the error log and asks a
policy, at every merged (non-UE) event, whether to trigger a mitigation.  The
policy sees a :class:`DecisionContext` carrying the Table 1 telemetry
features and the potential UE cost of the job running on the node.  The
Oracle baseline additionally needs to know whether the current event is the
last one before a UE — a field real policies must never read (it encodes the
future); it exists only to quantify the room for improvement (Section 4.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dqn import DDDQNAgent
from repro.core.features import StateNormalizer
from repro.core.mdp import Action


@dataclass(frozen=True)
class DecisionContext:
    """Everything a policy may observe at one decision point."""

    #: Time of the merged event, seconds.
    time: float
    #: Node on which the event was observed.
    node: int
    #: Raw (unnormalised) Table 1 telemetry feature vector.
    features: np.ndarray
    #: Potential UE cost at this instant, node–hours (Equation 3).
    ue_cost: float
    #: Oracle-only flag: is this the last event before a UE on this node?
    is_last_event_before_ue: bool = False
    #: Index of this event within the evaluation trace currently replayed
    #: (lets policies look up per-trace caches built by ``prepare_trace``).
    event_index: int = -1


class MitigationPolicy(abc.ABC):
    """A decision rule mapping telemetry state to mitigate / do-nothing."""

    #: Human-readable name used in reports and plots.
    name: str = "policy"

    @abc.abstractmethod
    def decide(self, context: DecisionContext) -> bool:
        """Return True to trigger a mitigation at this event."""

    def reset(self) -> None:
        """Called before each node's test trace is replayed (stateless by default)."""

    def prepare_trace(self, features: np.ndarray) -> None:
        """Optional hook: pre-compute per-trace data from the feature matrix.

        The evaluation runner calls this once per node trace with the full
        ``(n_events, N_FEATURES)`` telemetry feature matrix before replaying
        the events, so that policies backed by batch predictors (the random
        forests) can vectorise their per-event work.
        """

    @property
    def training_cost_node_hours(self) -> float:
        """Training + validation cost charged by the cost–benefit analysis."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class RLPolicy(MitigationPolicy):
    """Greedy wrapper around a trained :class:`DDDQNAgent`."""

    def __init__(
        self,
        agent: DDDQNAgent,
        normalizer: Optional[StateNormalizer] = None,
        name: str = "RL",
        training_cost_node_hours: float = 0.0,
    ) -> None:
        self.agent = agent
        self.normalizer = normalizer or StateNormalizer()
        self.name = name
        self._training_cost = float(training_cost_node_hours)

    def decide(self, context: DecisionContext) -> bool:
        state = self.normalizer.state_vector(context.features, context.ue_cost)
        return self.agent.act(state, explore=False) == Action.MITIGATE

    @property
    def training_cost_node_hours(self) -> float:
        return self._training_cost + self.agent.training_cost_node_hours


class CallablePolicy(MitigationPolicy):
    """Adapter turning a plain function ``context -> bool`` into a policy."""

    def __init__(self, fn, name: str = "custom") -> None:
        self._fn = fn
        self.name = name

    def decide(self, context: DecisionContext) -> bool:
        return bool(self._fn(context))


class FallbackPolicy(MitigationPolicy):
    """Delegate policy re-labelled under another approach's name.

    A learned approach that cannot be trained yet (no history precedes the
    test range) still has to be charged *some* behaviour; the experiment
    substitutes a cheap fallback — typically :class:`NeverMitigatePolicy`,
    which is also what an untrained model converges to — but records the
    evaluation under the learned approach's name.  No training cost is
    charged: nothing was trained.
    """

    def __init__(self, inner: MitigationPolicy, name: str) -> None:
        self.inner = inner
        self.name = name

    def reset(self) -> None:
        self.inner.reset()

    def prepare_trace(self, features: np.ndarray) -> None:
        self.inner.prepare_trace(features)

    def decide(self, context: DecisionContext) -> bool:
        return self.inner.decide(context)
