"""Dueling double deep Q-network agent with prioritized experience replay.

This is the learning algorithm of Section 3.3: a double DQN (one online
network selects the next action, a periodically synchronised target network
evaluates it, mitigating the overestimation bias), a dueling head, Adam with
a Huber loss, ε-greedy exploration, and prioritized experience replay to deal
with the events-to-UEs class imbalance.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.mdp import N_ACTIONS, Transition
from repro.core.networks import AdamOptimizer, DuelingQNetwork, huber_grad, huber_loss
from repro.core.replay import PrioritizedReplayBuffer, ReplayBatch, UniformReplayBuffer
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class DQNConfig:
    """Hyperparameters of the DDDQN agent.

    The subset tuned by the paper's random search (Section 4.1) is the
    learning rate, the discount factor γ, the network update and
    synchronisation frequencies, and the replay batch size / PER exponents.
    """

    hidden_sizes: Sequence[int] = (256, 256, 128, 64)
    learning_rate: float = 1e-3
    gamma: float = 0.97
    batch_size: int = 32
    buffer_capacity: int = 50_000
    #: Environment steps between gradient updates.
    train_frequency: int = 2
    #: Gradient updates between hard target-network synchronisations.
    target_sync_frequency: int = 100
    #: Steps of ε-greedy annealing from ``epsilon_start`` to ``epsilon_end``.
    epsilon_start: float = 1.0
    epsilon_end: float = 0.02
    epsilon_decay_steps: int = 20_000
    #: Minimum stored transitions before learning starts.
    warmup_transitions: int = 256
    #: Prioritized experience replay parameters.  A fairly aggressive α is
    #: needed because the terminal UE transitions are extremely rare compared
    #: with uneventful telemetry (Section 3.3.4).
    prioritized: bool = True
    per_alpha: float = 0.7
    per_beta0: float = 0.5
    per_epsilon: float = 1e-3
    #: Anneal β to 1 over this many gradient updates.
    per_beta_steps: int = 20_000
    #: Double and dueling switches (ablations).
    double: bool = True
    dueling: bool = True
    #: Rewards are divided by this factor before entering the network.
    reward_scale: float = 1.0
    #: Huber transition point.  Uncorrected-error penalties are orders of
    #: magnitude larger than mitigation penalties; a small δ would clip their
    #: gradients so aggressively that the agent systematically under-estimates
    #: the risk of doing nothing, so the loss is kept close to quadratic over
    #: the realistic cost range.
    huber_delta: float = 50.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("learning_rate", self.learning_rate)
        check_fraction("gamma", self.gamma)
        check_positive("batch_size", self.batch_size)
        check_positive("buffer_capacity", self.buffer_capacity)
        check_positive("train_frequency", self.train_frequency)
        check_positive("target_sync_frequency", self.target_sync_frequency)
        check_fraction("epsilon_start", self.epsilon_start)
        check_fraction("epsilon_end", self.epsilon_end)
        check_positive("epsilon_decay_steps", self.epsilon_decay_steps)
        check_positive("reward_scale", self.reward_scale)
        check_positive("huber_delta", self.huber_delta)
        if self.epsilon_end > self.epsilon_start:
            raise ValueError("epsilon_end must not exceed epsilon_start")

    def with_overrides(self, **kwargs) -> "DQNConfig":
        """Copy of the config with some fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict:
        """Versioned JSON-ready representation (see :mod:`repro.serialization`)."""
        from repro.serialization import simple_to_dict

        return simple_to_dict(self, "dqn_config")

    @classmethod
    def from_dict(cls, data: Dict) -> "DQNConfig":
        """Inverse of :meth:`to_dict`."""
        from repro.serialization import simple_from_dict

        return simple_from_dict(cls, data, "dqn_config", tuple_fields=("hidden_sizes",))


@dataclass
class TrainStepStats:
    """Diagnostics of one gradient update."""

    loss: float
    mean_abs_td_error: float
    mean_q: float


class DDDQNAgent:
    """The RL agent that decides when to trigger a UE mitigation."""

    def __init__(self, state_dim: int, config: Optional[DQNConfig] = None) -> None:
        check_positive("state_dim", state_dim)
        self.config = config or DQNConfig()
        cfg = self.config
        self.state_dim = int(state_dim)
        self.online = DuelingQNetwork(
            state_dim,
            hidden_sizes=cfg.hidden_sizes,
            n_actions=N_ACTIONS,
            dueling=cfg.dueling,
            seed=cfg.seed,
        )
        self.target = self.online.clone()
        self.optimizer = AdamOptimizer(cfg.learning_rate)
        if cfg.prioritized:
            self.replay = PrioritizedReplayBuffer(
                cfg.buffer_capacity,
                alpha=cfg.per_alpha,
                beta0=cfg.per_beta0,
                epsilon=cfg.per_epsilon,
                seed=cfg.seed + 1,
            )
        else:
            self.replay = UniformReplayBuffer(cfg.buffer_capacity, seed=cfg.seed + 1)
        self._rng = as_generator(cfg.seed + 2, "agent")
        self.env_steps = 0
        self.train_steps = 0
        self.training_wallclock_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """Current ε of the ε-greedy exploration schedule."""
        cfg = self.config
        fraction = min(1.0, self.env_steps / cfg.epsilon_decay_steps)
        return cfg.epsilon_start + fraction * (cfg.epsilon_end - cfg.epsilon_start)

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-values of a single state, shape ``(n_actions,)``."""
        return self.online.forward(np.atleast_2d(state))[0]

    def act(self, state: np.ndarray, explore: bool = True) -> int:
        """Choose an action; ε-greedy when ``explore`` is True."""
        if explore and self._rng.random() < self.epsilon:
            return int(self._rng.integers(N_ACTIONS))
        return int(np.argmax(self.q_values(state)))

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def observe(self, transition: Transition) -> Optional[TrainStepStats]:
        """Store a transition and run a gradient update when due.

        Rewards are scaled by ``1 / reward_scale`` before being stored so
        that the Huber loss operates in a reasonable numeric range; the
        scaling affects training only, never the evaluation cost accounting.
        """
        cfg = self.config
        scaled = Transition(
            state=np.asarray(transition.state, dtype=float),
            action=transition.action,
            reward=transition.reward / cfg.reward_scale,
            next_state=(
                None
                if transition.next_state is None
                else np.asarray(transition.next_state, dtype=float)
            ),
            done=transition.done,
        )
        self.replay.push(scaled)
        self.env_steps += 1
        stats: Optional[TrainStepStats] = None
        if (
            len(self.replay) >= max(cfg.warmup_transitions, cfg.batch_size)
            and self.env_steps % cfg.train_frequency == 0
        ):
            stats = self.train_step()
        return stats

    def train_step(self) -> TrainStepStats:
        """One prioritized double-DQN gradient update."""
        cfg = self.config
        started = time.perf_counter()
        batch = self.replay.sample(cfg.batch_size)
        td_errors, loss, mean_q = self._update_from_batch(batch)
        self.replay.update_priorities(batch.indices, td_errors)
        self.train_steps += 1
        self.replay.anneal(min(1.0, self.train_steps / cfg.per_beta_steps))
        if self.train_steps % cfg.target_sync_frequency == 0:
            self.target.copy_from(self.online)
        self.training_wallclock_seconds += time.perf_counter() - started
        return TrainStepStats(
            loss=loss, mean_abs_td_error=float(np.mean(np.abs(td_errors))), mean_q=mean_q
        )

    def _update_from_batch(self, batch: ReplayBatch):
        cfg = self.config
        q_next_online = self.online.forward(batch.next_states)
        if cfg.double:
            next_actions = np.argmax(q_next_online, axis=1)
            q_next_target = self.target.forward(batch.next_states)
            next_values = q_next_target[np.arange(len(batch)), next_actions]
        else:
            next_values = np.max(q_next_online, axis=1)
        targets = batch.rewards + cfg.gamma * (1.0 - batch.dones) * next_values

        q = self.online.forward(batch.states, cache=True)
        selected = q[np.arange(len(batch)), batch.actions]
        td_errors = selected - targets

        loss = float(np.mean(batch.weights * huber_loss(td_errors, cfg.huber_delta)))
        d_selected = batch.weights * huber_grad(td_errors, cfg.huber_delta) / len(batch)
        d_q = np.zeros_like(q)
        d_q[np.arange(len(batch)), batch.actions] = d_selected
        grads = self.online.backward(d_q)
        self.optimizer.update(self.online.parameters(), grads)
        return td_errors, loss, float(np.mean(selected))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Online-network parameters (the policy) for checkpointing.

        A plain ``{name: contiguous ndarray}`` mapping — the unit the
        parallel experiment pipeline ships between executor tasks (the
        per-trial RL search results and the warm-start carry), so it must
        stay cheap to pickle across a process boundary.
        """
        return self.online.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a previously saved policy into both networks."""
        self.online.load_state_dict(state)
        self.target.copy_from(self.online)

    @classmethod
    def from_state_dict(
        cls,
        state_dim: int,
        state: Dict[str, np.ndarray],
        config: Optional[DQNConfig] = None,
    ) -> "DDDQNAgent":
        """Reconstruct an agent from a checkpointed policy, cheaply.

        The inverse of :meth:`state_dict` for the executor round-trip: the
        pipeline's select-best reduce task receives trial checkpoints from
        worker processes and needs an agent back for greedy evaluation.  The
        hidden layout is inferred from the checkpoint's array shapes (and
        overrides whatever ``config`` says, so a caller cannot silently load
        parameters into a mismatched network), and the replay buffer is
        allocated at minimal capacity: the restored agent acts greedily or
        serves as a warm-start *source* — replay transitions are not part of
        the checkpoint, so a full-size empty buffer would be pure
        allocation cost per reconstruction.
        """
        hidden_sizes = []
        for i in itertools.count():
            weight = state.get(f"hidden_{i}_w")
            if weight is None:
                break
            hidden_sizes.append(int(weight.shape[1]))
        if not hidden_sizes or int(state["hidden_0_w"].shape[0]) != int(state_dim):
            raise ValueError(
                "state dict does not describe a network over "
                f"{state_dim}-dimensional states"
            )
        config = (config or DQNConfig()).with_overrides(
            hidden_sizes=tuple(hidden_sizes),
            buffer_capacity=1,
            warmup_transitions=1,
        )
        agent = cls(state_dim, config)
        agent.load_state_dict(state)
        return agent

    @property
    def training_cost_node_hours(self) -> float:
        """Wall-clock training time expressed in node–hours.

        The cost–benefit analysis (Section 4.3) charges the model its own
        training and validation time; a single node runs the training, so
        node–hours equal wall-clock hours.
        """
        return self.training_wallclock_seconds / 3600.0
