"""Episode-based training loop for the mitigation agent (Section 3.3.3).

Training is divided into episodes; each episode picks a random node, assigns
it a random (node-count-weighted) job sequence, and replays its telemetry
events from the beginning to the end of the training range.  The paper trains
each candidate agent for 20,000 episodes; the loop below is the same
procedure with a configurable episode budget so tests and benchmarks can run
a scaled-down schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.dqn import DDDQNAgent
from repro.core.environment import MitigationEnv
from repro.core.mdp import Transition
from repro.utils.validation import check_positive


@dataclass
class TrainingResult:
    """Statistics accumulated over a training run."""

    episode_rewards: List[float] = field(default_factory=list)
    episode_mitigations: List[int] = field(default_factory=list)
    episode_ue_hits: List[bool] = field(default_factory=list)
    wallclock_seconds: float = 0.0
    env_steps: int = 0

    @property
    def n_episodes(self) -> int:
        return len(self.episode_rewards)

    @property
    def mean_reward(self) -> float:
        """Mean episode reward (0 if no episodes were run)."""
        if not self.episode_rewards:
            return 0.0
        return float(np.mean(self.episode_rewards))

    def tail_mean_reward(self, fraction: float = 0.25) -> float:
        """Mean reward of the last ``fraction`` of episodes (convergence probe)."""
        if not self.episode_rewards:
            return 0.0
        n = max(1, int(len(self.episode_rewards) * fraction))
        return float(np.mean(self.episode_rewards[-n:]))

    @property
    def training_cost_node_hours(self) -> float:
        """Wall-clock training time in node–hours (single training node)."""
        return self.wallclock_seconds / 3600.0


def train_agent(
    env: MitigationEnv,
    agent: DDDQNAgent,
    n_episodes: int,
    max_steps_per_episode: Optional[int] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> TrainingResult:
    """Train ``agent`` on ``env`` for ``n_episodes`` episodes.

    Parameters
    ----------
    env:
        The mitigation environment, already restricted to the training range.
    agent:
        The agent to train (modified in place).
    n_episodes:
        Number of episodes ("runs" of random nodes) to execute.
    max_steps_per_episode:
        Optional safety cap on the number of decisions per episode.
    callback:
        Optional ``callback(episode_index, episode_reward)`` hook.
    """
    check_positive("n_episodes", n_episodes)
    result = TrainingResult()
    started = time.perf_counter()

    for episode in range(int(n_episodes)):
        state = env.reset()
        episode_reward = 0.0
        steps = 0
        done = False
        while not done:
            action = agent.act(state, explore=True)
            next_state, reward, done, info = env.step(action)
            agent.observe(
                Transition(
                    state=state,
                    action=action,
                    reward=reward,
                    next_state=next_state,
                    done=done,
                )
            )
            episode_reward += reward
            steps += 1
            result.env_steps += 1
            if not done:
                state = next_state
            if max_steps_per_episode is not None and steps >= max_steps_per_episode:
                break
        summary = env.episode_summary()
        result.episode_rewards.append(episode_reward)
        result.episode_mitigations.append(summary.n_mitigations)
        result.episode_ue_hits.append(summary.ue_occurred)
        if callback is not None:
            callback(episode, episode_reward)

    result.wallclock_seconds = time.perf_counter() - started
    return result
