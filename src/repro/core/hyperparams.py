"""Two-round random hyperparameter search (Section 4.1).

The paper tunes the learning rate, the discount factor γ, the update and
synchronisation frequencies of the two networks and some prioritized-replay
parameters with a first round of random search (60 configurations), followed
by a second, narrowed round around the best configuration; the agent finally
selected is the best performer on the validation set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dqn import DQNConfig
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class HyperparameterSpace:
    """Sampling ranges of the tuned hyperparameters.

    ``learning_rate`` and ``gamma_complement`` (1 − γ) are sampled
    log-uniformly; frequencies and batch sizes are drawn from discrete sets.
    """

    learning_rate: Tuple[float, float] = (1e-4, 5e-3)
    gamma_complement: Tuple[float, float] = (5e-3, 2e-1)
    batch_sizes: Sequence[int] = (16, 32, 64)
    train_frequencies: Sequence[int] = (1, 2, 4, 8)
    target_sync_frequencies: Sequence[int] = (100, 250, 500, 1000)
    per_alphas: Tuple[float, float] = (0.4, 0.8)
    per_beta0s: Tuple[float, float] = (0.3, 0.6)

    def sample(self, rng: np.random.Generator) -> Dict[str, object]:
        """Draw one hyperparameter assignment."""
        lr = float(np.exp(rng.uniform(*np.log(self.learning_rate))))
        gamma = 1.0 - float(np.exp(rng.uniform(*np.log(self.gamma_complement))))
        return {
            "learning_rate": lr,
            "gamma": gamma,
            "batch_size": int(rng.choice(self.batch_sizes)),
            "train_frequency": int(rng.choice(self.train_frequencies)),
            "target_sync_frequency": int(rng.choice(self.target_sync_frequencies)),
            "per_alpha": float(rng.uniform(*self.per_alphas)),
            "per_beta0": float(rng.uniform(*self.per_beta0s)),
        }

    def narrowed_around(
        self, best: Dict[str, object], shrink: float = 0.5
    ) -> "HyperparameterSpace":
        """Return a space centred on ``best`` with ranges shrunk by ``shrink``."""
        if not (0.0 < shrink <= 1.0):
            raise ValueError("shrink must be in (0, 1]")

        def _shrink_log_range(bounds: Tuple[float, float], centre: float):
            lo, hi = bounds
            ratio = (hi / lo) ** (shrink / 2.0)
            new_lo = max(lo, centre / ratio)
            new_hi = min(hi, centre * ratio)
            if new_lo >= new_hi:
                return (lo, hi)
            return (new_lo, new_hi)

        lr = _shrink_log_range(self.learning_rate, float(best["learning_rate"]))
        gamma_c = _shrink_log_range(
            self.gamma_complement, max(1e-4, 1.0 - float(best["gamma"]))
        )
        return replace(self, learning_rate=lr, gamma_complement=gamma_c)


@dataclass
class RandomSearchResult:
    """Outcome of a hyperparameter search."""

    best_params: Dict[str, object]
    best_score: float
    trials: List[Tuple[Dict[str, object], float]] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def best_config(self, base: Optional[DQNConfig] = None) -> DQNConfig:
        """Materialise the best assignment on top of a base config."""
        base = base or DQNConfig()
        return base.with_overrides(**self.best_params)


def random_search(
    evaluate: Callable[[Dict[str, object]], float],
    space: Optional[HyperparameterSpace] = None,
    n_initial: int = 60,
    n_refine: int = 20,
    seed=0,
) -> RandomSearchResult:
    """Two-round random search maximising ``evaluate(params)``.

    Parameters
    ----------
    evaluate:
        Callable scoring one hyperparameter assignment (higher is better);
        in the paper this is the validation-set reward of an agent trained
        with those hyperparameters.
    space:
        Sampling space of the first round.
    n_initial:
        Number of configurations in the first round (paper: 60).
    n_refine:
        Number of configurations in the narrowed second round.
    """
    check_positive("n_initial", n_initial)
    space = space or HyperparameterSpace()
    rng = as_generator(seed, "hyperparams")

    trials: List[Tuple[Dict[str, object], float]] = []
    best_params: Optional[Dict[str, object]] = None
    best_score = -np.inf

    def _run_round(current_space: HyperparameterSpace, n: int) -> None:
        nonlocal best_params, best_score
        for _ in range(int(n)):
            params = current_space.sample(rng)
            score = float(evaluate(params))
            trials.append((params, score))
            if score > best_score:
                best_score = score
                best_params = params

    _run_round(space, n_initial)
    if n_refine > 0 and best_params is not None:
        _run_round(space.narrowed_around(best_params), n_refine)

    assert best_params is not None
    return RandomSearchResult(
        best_params=best_params, best_score=best_score, trials=trials
    )
