"""Experience replay memories: uniform and prioritized (Schaul et al., 2015).

Prioritized experience replay (PER) is the mechanism the paper relies on to
cope with the extreme class imbalance between ordinary telemetry events and
uncorrected errors (Section 3.3.4): transitions with a large temporal-
difference error — typically the rare terminal UE transitions — are replayed
far more often than the abundant uneventful ones.

The sum tree and the prioritized buffer expose two equivalent code paths:

* the scalar per-element methods (``SumTree.update`` / ``SumTree.sample``,
  ``PrioritizedReplayBuffer._sample_scalar`` /
  ``_update_priorities_scalar``) — the historical reference implementation;
* vectorized batch methods (``SumTree.update_many`` / ``SumTree.sample_many``,
  the default ``sample`` / ``update_priorities`` / ``push_many``) that
  reproduce the scalar results *bit for bit*: every floating-point operation
  is applied element-wise in the same order the scalar loops used
  (``np.add.at`` is an ordered, unbuffered fold; batched
  ``Generator.uniform`` draws consume the stream exactly like the scalar
  calls; priority exponentiation stays per-element because NumPy's SIMD
  ``pow`` is not bitwise-identical to Python's), and the one stream-order
  hazard — the pre-wrap unfilled-slot fallback, which interleaves an extra
  ``integers`` draw between ``uniform`` draws — rewinds the generator and
  replays the scalar loop verbatim.

At the paper's mini-batch size (32) the sampling path is numpy-dispatch
bound, so :meth:`PrioritizedReplayBuffer.sample` amortises the per-step
overheads across training steps: the stratified uniforms of several future
steps are pre-drawn in one ``Generator.random`` call (raw doubles are
stream-position-exact: ``uniform(low, high)`` is ``low + (high - low) *
next_double`` per element, and each step's bounds are applied to its slice
of the pool when the step actually happens, with whatever tree total is
current then), transitions are gathered from parallel array-backed storage
instead of restacked object by object, and the sum-tree descent dispatches
to the optional compiled kernel (:mod:`repro.core.kernels`).  The pre-wrap
fallback rewinds the generator to the pool's checkpoint, fast-forwards the
doubles consumed by earlier steps, and replays the scalar loop verbatim —
then discards the rest of the pool, whose stream positions it invalidated.

The equivalence is pinned by ``tests/core/test_replay_vectorized.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.mdp import Transition
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive

#: Training steps' worth of stratified uniforms pre-drawn per RNG call by
#: :meth:`PrioritizedReplayBuffer.sample` (see the module docstring).
PER_PREDRAW_STEPS = 8


class SumTree:
    """A complete binary tree whose internal nodes store the sum of leaves.

    Supports O(log n) priority updates and O(log n) sampling proportional to
    the stored priorities.  Leaves are allocated in ring-buffer order by the
    replay memory.
    """

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._tree = np.zeros(2 * self.capacity - 1, dtype=np.float64)
        #: Upper bound on the root-to-leaf path length; the batched descent
        #: runs exactly this many levels (parked rows are no-ops), which
        #: avoids a per-level any() termination check.
        self._depth_bound = (
            int(np.ceil(np.log2(self.capacity))) + 1 if self.capacity > 1 else 0
        )

    @property
    def total(self) -> float:
        """Sum of all leaf priorities."""
        return float(self._tree[0])

    def _leaf_index(self, data_index: int) -> int:
        return data_index + self.capacity - 1

    def update(self, data_index: int, priority: float) -> None:
        """Set the priority of leaf ``data_index``."""
        if not (0 <= data_index < self.capacity):
            raise IndexError(f"leaf index {data_index} out of range")
        if priority < 0:
            raise ValueError("priorities must be non-negative")
        idx = self._leaf_index(data_index)
        change = priority - self._tree[idx]
        self._tree[idx] = priority
        while idx > 0:
            idx = (idx - 1) // 2
            self._tree[idx] += change

    def update_many(self, data_indices: np.ndarray, priorities: np.ndarray) -> None:
        """Apply a batch of :meth:`update` calls, bit-identical to the loop.

        Repeated indices behave exactly like sequential scalar updates: each
        occurrence's propagated change is measured against the value the
        previous occurrence left behind, and all ancestor additions are
        applied in update order (``np.add.at`` folds repeated indices
        sequentially), so internal-node rounding matches the scalar path.
        """
        indices = np.asarray(data_indices, dtype=np.int64).ravel()
        priorities = np.asarray(priorities, dtype=np.float64).ravel()
        if indices.size != priorities.size:
            raise ValueError("indices and priorities must be equally long")
        if indices.size == 0:
            return
        if int(indices.min()) < 0 or int(indices.max()) >= self.capacity:
            raise IndexError("leaf index out of range")
        if (priorities < 0).any():
            raise ValueError("priorities must be non-negative")

        leaves = indices + (self.capacity - 1)
        # The change each update propagates is (new - value at its turn);
        # duplicates therefore read the previous occurrence's priority.
        order = np.argsort(leaves, kind="stable")
        sorted_leaves = leaves[order]
        sorted_priorities = priorities[order]
        first = np.ones(leaves.size, dtype=bool)
        first[1:] = sorted_leaves[1:] != sorted_leaves[:-1]
        previous = np.empty(leaves.size, dtype=np.float64)
        previous[first] = self._tree[sorted_leaves[first]]
        previous[~first] = sorted_priorities[:-1][~first[1:]]
        changes_sorted = sorted_priorities - previous
        changes = np.empty(leaves.size, dtype=np.float64)
        changes[order] = changes_sorted

        # Leaf values are assignments, not additions: the last update of
        # each leaf wins, exactly like sequential overwrites.
        last = np.ones(leaves.size, dtype=bool)
        last[:-1] = sorted_leaves[:-1] != sorted_leaves[1:]
        self._tree[sorted_leaves[last]] = sorted_priorities[last]

        # Ancestor chains (leaf excluded, root included), padded with -1;
        # flattened row-major so a node shared by several updates receives
        # its additions in update order — np.add.at applies repeated
        # indices as an ordered fold, matching the scalar propagation.
        # Floor division makes -1 a fixed point ((-1 - 1) // 2 == -1), so
        # exhausted chains pad themselves without per-level masking.
        chains: List[np.ndarray] = []
        cursor = leaves
        for _ in range(self._depth_bound):
            cursor = (cursor - 1) // 2
            chains.append(cursor)
        if not chains:
            return
        paths = np.stack(chains, axis=1)
        valid = paths >= 0
        flat_nodes = paths.ravel()[valid.ravel()]
        flat_changes = np.broadcast_to(
            changes[:, None], paths.shape
        ).ravel()[valid.ravel()]
        np.add.at(self._tree, flat_nodes, flat_changes)

    def get(self, data_index: int) -> float:
        """Priority currently stored at leaf ``data_index``."""
        return float(self._tree[self._leaf_index(data_index)])

    def sample(self, value: float) -> Tuple[int, float]:
        """Find the leaf such that the prefix sum of priorities covers ``value``.

        Returns ``(data_index, priority)``.
        """
        if self.total <= 0:
            raise ValueError("cannot sample from an empty tree")
        value = float(np.clip(value, 0.0, np.nextafter(self.total, 0.0)))
        idx = 0
        while idx < self.capacity - 1:
            left = 2 * idx + 1
            right = left + 1
            if value <= self._tree[left] or self._tree[right] <= 0.0:
                idx = left
            else:
                value -= self._tree[left]
                idx = right
        data_index = idx - (self.capacity - 1)
        return data_index, float(self._tree[idx])

    def sample_many(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`sample` over an array of values.

        All values descend the tree level by level; the per-element
        comparisons and subtractions are the same operations the scalar
        walk performs, so the returned ``(data_indices, priorities)`` are
        bit-identical to calling :meth:`sample` once per value.
        """
        if self.total <= 0:
            raise ValueError("cannot sample from an empty tree")
        values = np.asarray(values, dtype=np.float64).ravel().copy()
        np.clip(values, 0.0, np.nextafter(self.total, 0.0), out=values)
        compiled = kernels.active()
        if compiled is not None:
            leaf = compiled.sumtree_descend(self._tree, values, self.capacity - 1)
            return leaf - (self.capacity - 1), self._tree[leaf].copy()
        idx = np.zeros(values.shape, dtype=np.int64)
        n_internal = self.capacity - 1
        top = 2 * self.capacity - 2
        for _ in range(self._depth_bound):
            active = idx < n_internal
            left = 2 * idx + 1
            right = left + 1
            # Leaf rows gather out-of-range children; clip the gather (their
            # results are discarded by the np.where below).
            left_c = np.minimum(left, top)
            right_c = np.minimum(right, top)
            go_left = (values <= self._tree[left_c]) | (self._tree[right_c] <= 0.0)
            next_idx = np.where(go_left, left, right)
            next_values = np.where(go_left, values, values - self._tree[left_c])
            idx = np.where(active, next_idx, idx)
            values = np.where(active, next_values, values)
        return idx - n_internal, self._tree[idx].copy()


@dataclass
class ReplayBatch:
    """A sampled mini-batch in array form, ready for the Q-network."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    weights: np.ndarray
    indices: np.ndarray

    def __len__(self) -> int:
        return int(self.states.shape[0])


def _stack_batch(
    transitions: Sequence[Transition],
    weights: np.ndarray,
    indices: np.ndarray,
) -> ReplayBatch:
    state_dim = transitions[0].state.shape[0]
    states = np.stack([t.state for t in transitions])
    actions = np.array([t.action for t in transitions], dtype=np.int64)
    rewards = np.array([t.reward for t in transitions], dtype=np.float64)
    dones = np.array([t.done for t in transitions], dtype=np.float64)
    next_states = np.stack(
        [
            t.next_state if t.next_state is not None else np.zeros(state_dim)
            for t in transitions
        ]
    )
    return ReplayBatch(
        states=states,
        actions=actions,
        rewards=rewards,
        next_states=next_states,
        dones=dones,
        weights=np.asarray(weights, dtype=np.float64),
        indices=np.asarray(indices, dtype=np.int64),
    )


class UniformReplayBuffer:
    """Plain ring-buffer replay memory with uniform sampling (ablation)."""

    def __init__(self, capacity: int, seed=0) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._storage: List[Optional[Transition]] = [None] * self.capacity
        self._next = 0
        self._size = 0
        self._rng = as_generator(seed, "replay")

    def __len__(self) -> int:
        return self._size

    def push(self, transition: Transition) -> None:
        """Store one transition, evicting the oldest when full."""
        self._storage[self._next] = transition
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def push_many(self, transitions: Iterable[Transition]) -> None:
        """Bulk insert; identical to calling :meth:`push` repeatedly."""
        for transition in transitions:
            self.push(transition)

    def sample(self, batch_size: int) -> ReplayBatch:
        """Sample a batch uniformly at random (importance weights are 1)."""
        check_positive("batch_size", batch_size)
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = self._rng.integers(0, self._size, size=batch_size)
        transitions = [self._storage[i] for i in indices]
        weights = np.ones(batch_size)
        return _stack_batch(transitions, weights, indices)

    def update_priorities(self, indices: np.ndarray, td_errors: np.ndarray) -> None:
        """No-op: uniform replay does not track priorities."""

    def anneal(self, fraction: float) -> None:
        """No-op: uniform replay has no importance-sampling correction."""


class PrioritizedReplayBuffer:
    """Proportional prioritized experience replay (Schaul et al., 2015).

    Parameters
    ----------
    capacity:
        Maximum number of stored transitions.
    alpha:
        Priority exponent (0 = uniform, 1 = fully proportional).
    beta0:
        Initial importance-sampling exponent, annealed towards 1 by
        :meth:`anneal`.
    epsilon:
        Small constant added to |TD error| so no transition starves.
    """

    def __init__(
        self,
        capacity: int,
        alpha: float = 0.6,
        beta0: float = 0.4,
        epsilon: float = 1e-3,
        seed=0,
    ) -> None:
        check_positive("capacity", capacity)
        check_fraction("alpha", alpha)
        check_fraction("beta0", beta0)
        check_positive("epsilon", epsilon)
        self.capacity = int(capacity)
        self.alpha = float(alpha)
        self.beta = float(beta0)
        self.beta0 = float(beta0)
        self.epsilon = float(epsilon)
        self._tree = SumTree(self.capacity)
        self._storage: List[Optional[Transition]] = [None] * self.capacity
        self._next = 0
        self._size = 0
        self._max_priority = 1.0
        self._rng = as_generator(seed, "per")
        #: Pre-drawn raw uniform doubles for multi-step stratified sampling
        #: (see the module docstring), plus the generator checkpoint taken
        #: when the pool was drawn and the number of doubles consumed since.
        self._pool_values: Optional[np.ndarray] = None
        self._pool_cursor = 0
        self._pool_checkpoint = None
        #: Parallel array-backed transition storage: batch assembly becomes
        #: five fancy-index gathers instead of a Python restacking loop.
        #: Disabled (``_arrays_ok = False``) on the first transition whose
        #: arrays are not plain 1-D float64 vectors of a fixed dimension —
        #: ``_stack_batch`` then remains the (bit-identical) assembly path.
        self._arr_states: Optional[np.ndarray] = None
        self._arr_next_states: Optional[np.ndarray] = None
        self._arr_actions: Optional[np.ndarray] = None
        self._arr_rewards: Optional[np.ndarray] = None
        self._arr_dones: Optional[np.ndarray] = None
        self._arrays_ok = True

    def __len__(self) -> int:
        return self._size

    def _store_row(self, slot: int, transition: Transition) -> None:
        """Mirror one transition into the parallel arrays (exact copies)."""
        if not self._arrays_ok:
            return
        state = transition.state
        if not isinstance(state, np.ndarray) or state.dtype != np.float64:
            self._arrays_ok = False
            return
        if self._arr_states is None:
            if state.ndim != 1:
                self._arrays_ok = False
                return
            dim = state.shape[0]
            self._arr_states = np.zeros((self.capacity, dim))
            self._arr_next_states = np.zeros((self.capacity, dim))
            self._arr_actions = np.zeros(self.capacity, dtype=np.int64)
            self._arr_rewards = np.zeros(self.capacity)
            self._arr_dones = np.zeros(self.capacity)
        if state.shape != (self._arr_states.shape[1],):
            self._arrays_ok = False
            return
        next_state = transition.next_state
        if next_state is None:
            self._arr_next_states[slot] = 0.0
        elif (
            isinstance(next_state, np.ndarray)
            and next_state.dtype == np.float64
            and next_state.shape == state.shape
        ):
            self._arr_next_states[slot] = next_state
        else:
            self._arrays_ok = False
            return
        self._arr_states[slot] = state
        self._arr_actions[slot] = int(transition.action)
        self._arr_rewards[slot] = float(transition.reward)
        self._arr_dones[slot] = float(transition.done)

    def _gather_batch(
        self, indices: np.ndarray, weights: np.ndarray
    ) -> ReplayBatch:
        """Assemble a batch; array gathers when possible, else restacking.

        Both paths produce bitwise-identical batches: the parallel arrays
        hold exact copies of what ``_stack_batch`` would restack.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if self._arrays_ok and self._arr_states is not None:
            return ReplayBatch(
                states=self._arr_states[indices],
                actions=self._arr_actions[indices],
                rewards=self._arr_rewards[indices],
                next_states=self._arr_next_states[indices],
                dones=self._arr_dones[indices],
                weights=np.asarray(weights, dtype=np.float64),
                indices=indices,
            )
        transitions = [self._storage[i] for i in indices]
        return _stack_batch(transitions, weights, indices)

    def push(self, transition: Transition) -> None:
        """Store a transition with the maximum priority seen so far."""
        self._storage[self._next] = transition
        self._store_row(self._next, transition)
        self._tree.update(self._next, self._max_priority**self.alpha)
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def push_many(self, transitions: Iterable[Transition]) -> None:
        """Bulk insert; identical to calling :meth:`push` per transition.

        Every transition receives the same ``max_priority ** alpha`` leaf
        value a sequence of pushes would have assigned (pushes never raise
        the maximum), and the tree update folds the ring-buffer slots —
        including wrap-around overwrites — in insertion order.
        """
        transitions = list(transitions)
        if not transitions:
            return
        count = len(transitions)
        priority = self._max_priority**self.alpha
        slots = (self._next + np.arange(count, dtype=np.int64)) % self.capacity
        for slot, transition in zip(slots, transitions):
            slot = int(slot)
            self._storage[slot] = transition
            self._store_row(slot, transition)
        self._tree.update_many(slots, np.full(count, priority, dtype=np.float64))
        self._next = int((self._next + count) % self.capacity)
        self._size = min(self._size + count, self.capacity)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalized_weights(
        priorities: np.ndarray, total: float, size: int, beta: float
    ) -> np.ndarray:
        """Importance-sampling weights, normalised by their maximum.

        Guards the normalisation against a zero (or non-finite) maximum:
        all-zero sampled priorities with β > 0 make every raw weight
        infinite — ``inf / inf`` would poison the whole batch with NaNs —
        so the correction degenerates to uniform weights instead.
        """
        probabilities = priorities / max(total, 1e-12)
        with np.errstate(divide="ignore"):
            weights = (size * probabilities) ** (-beta)
        max_weight = float(np.max(weights))
        if max_weight > 0.0 and np.isfinite(max_weight):
            return weights / max_weight
        return np.ones(len(weights))

    def _next_doubles(self, count: int) -> np.ndarray:
        """The next ``count`` raw uniform doubles of the stream, pooled.

        Pre-draws ``PER_PREDRAW_STEPS`` steps' worth in one generator call;
        ``Generator.random`` consumes one ``next_double`` per element, so
        slicing the pool step by step yields exactly the doubles a sequence
        of per-step ``uniform`` calls would have drawn.  A call that drains
        the pool consumes its tail and draws the shortfall directly (the
        tail came first in the stream); the next call starts a fresh pool.
        """
        pool = self._pool_values
        if pool is None:
            self._pool_checkpoint = self._rng.bit_generator.state
            self._pool_values = pool = self._rng.random(PER_PREDRAW_STEPS * count)
            self._pool_cursor = 0
        start = self._pool_cursor
        available = pool.size - start
        if available >= count:
            self._pool_cursor = start + count
            return pool[start : start + count]
        raw = np.empty(count)
        raw[:available] = pool[start:]
        raw[available:] = self._rng.random(count - available)
        # Mark the whole pool consumed; the *rewind* checkpoint still covers
        # this call (checkpoint + ``start`` skipped doubles), but the next
        # call must start a fresh pool from the advanced generator.
        self._pool_cursor = pool.size
        self._pool_values = None
        return raw

    def _abandon_pool(self) -> None:
        """Rewind the generator to the first unconsumed pooled double.

        Restores the exact stream position a pool-free implementation would
        be at, so direct generator draws (the scalar reference path, the
        pre-wrap fallback) stay stream-identical.
        """
        if self._pool_values is None:
            return
        self._rng.bit_generator.state = self._pool_checkpoint
        if self._pool_cursor:
            self._rng.random(self._pool_cursor)
        self._pool_values = None

    def sample(self, batch_size: int) -> ReplayBatch:
        """Sample proportionally to priority, with importance weights.

        The common path takes this step's stratified uniforms from the
        pre-drawn pool (``uniform(low, high)`` is ``low + (high - low) *
        next_double`` element by element, applied here to the pooled raw
        doubles with this step's current segment bounds — bit- and
        stream-identical to per-step ``uniform`` calls) and walks the sum
        tree for the whole batch at once.  Only when a draw lands on a
        not-yet-filled slot (possible before the buffer wraps for the first
        time) does the generator rewind to the pool checkpoint, fast-forward
        the doubles earlier steps consumed, and replay the scalar loop,
        whose fallback interleaves an extra ``integers`` draw mid-stream —
        invalidating (and therefore discarding) the rest of the pool.
        """
        check_positive("batch_size", batch_size)
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        total = self._tree.total
        segment = total / batch_size
        checkpoint = self._pool_checkpoint if self._pool_values is not None else None
        skip = self._pool_cursor if checkpoint is not None else 0
        if checkpoint is None:
            checkpoint = self._rng.bit_generator.state
        raw = self._next_doubles(batch_size)
        steps = np.arange(batch_size, dtype=np.float64)
        low = steps * segment
        values = low + ((steps + 1.0) * segment - low) * raw
        indices, priorities = self._tree.sample_many(values)
        if bool((indices >= self._size).any()):
            # A slot is unfilled iff its index is >= the current size; redo
            # the draws scalar-style from the checkpoint so the uniform and
            # fallback-integer draws interleave as they historically did.
            self._rng.bit_generator.state = checkpoint
            if skip:
                self._rng.random(skip)
            self._pool_values = None
            indices, priorities = self._sample_indices_scalar(batch_size, segment)
        weights = self._normalized_weights(priorities, total, self._size, self.beta)
        return self._gather_batch(indices, weights)

    def _sample_indices_scalar(
        self, batch_size: int, segment: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Reference scalar stratified draw (also the pre-wrap fallback path)."""
        indices = np.empty(batch_size, dtype=np.int64)
        priorities = np.empty(batch_size, dtype=np.float64)
        for i in range(batch_size):
            value = self._rng.uniform(i * segment, (i + 1) * segment)
            idx, priority = self._tree.sample(value)
            # Guard against sampling a not-yet-filled slot (only possible
            # before the buffer wraps for the first time).
            if self._storage[idx] is None:
                idx = int(self._rng.integers(0, self._size))
                priority = max(self._tree.get(idx), self.epsilon**self.alpha)
            indices[i] = idx
            priorities[i] = priority
        return indices, priorities

    def _sample_scalar(self, batch_size: int) -> ReplayBatch:
        """Reference implementation of :meth:`sample` (per-draw tree walks).

        Kept for the equivalence tests and the decision-core benchmark;
        produces bit-identical batches and consumes the RNG stream exactly
        like :meth:`sample` (any multi-step pool is rewound first, so mixing
        the two entry points on one buffer stays stream-exact).
        """
        check_positive("batch_size", batch_size)
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        self._abandon_pool()
        total = self._tree.total
        segment = total / batch_size
        indices, priorities = self._sample_indices_scalar(batch_size, segment)
        weights = self._normalized_weights(priorities, total, self._size, self.beta)
        transitions = [self._storage[i] for i in indices]
        return _stack_batch(transitions, weights, indices)

    # ------------------------------------------------------------------ #
    # Priority maintenance
    # ------------------------------------------------------------------ #
    def update_priorities(self, indices: np.ndarray, td_errors: np.ndarray) -> None:
        """Refresh priorities with the latest |TD errors| (batched).

        The α-exponentiation stays per-element (NumPy's SIMD ``pow`` is not
        bitwise-identical to Python's ``**`` on large arrays) and the tree
        refresh goes through :meth:`SumTree.update_many`, so the stored
        priorities match the scalar reference exactly.
        """
        td_errors = np.abs(np.asarray(td_errors, dtype=float)).ravel()
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if indices.size == 0:
            return
        priorities = td_errors + self.epsilon
        self._max_priority = max(self._max_priority, float(priorities.max()))
        powered = np.array(
            [float(priority) ** self.alpha for priority in priorities]
        )
        self._tree.update_many(indices, powered)

    def _update_priorities_scalar(
        self, indices: np.ndarray, td_errors: np.ndarray
    ) -> None:
        """Reference per-element priority refresh (equivalence tests/bench)."""
        td_errors = np.abs(np.asarray(td_errors, dtype=float))
        for idx, err in zip(np.asarray(indices, dtype=int), td_errors):
            priority = float(err) + self.epsilon
            self._max_priority = max(self._max_priority, priority)
            self._tree.update(int(idx), priority**self.alpha)

    def anneal(self, fraction: float) -> None:
        """Anneal the importance-sampling exponent β from β₀ to 1."""
        fraction = float(np.clip(fraction, 0.0, 1.0))
        self.beta = self.beta0 + (1.0 - self.beta0) * fraction
