"""Experience replay memories: uniform and prioritized (Schaul et al., 2015).

Prioritized experience replay (PER) is the mechanism the paper relies on to
cope with the extreme class imbalance between ordinary telemetry events and
uncorrected errors (Section 3.3.4): transitions with a large temporal-
difference error — typically the rare terminal UE transitions — are replayed
far more often than the abundant uneventful ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mdp import Transition
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive


class SumTree:
    """A complete binary tree whose internal nodes store the sum of leaves.

    Supports O(log n) priority updates and O(log n) sampling proportional to
    the stored priorities.  Leaves are allocated in ring-buffer order by the
    replay memory.
    """

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._tree = np.zeros(2 * self.capacity - 1, dtype=np.float64)

    @property
    def total(self) -> float:
        """Sum of all leaf priorities."""
        return float(self._tree[0])

    def _leaf_index(self, data_index: int) -> int:
        return data_index + self.capacity - 1

    def update(self, data_index: int, priority: float) -> None:
        """Set the priority of leaf ``data_index``."""
        if not (0 <= data_index < self.capacity):
            raise IndexError(f"leaf index {data_index} out of range")
        if priority < 0:
            raise ValueError("priorities must be non-negative")
        idx = self._leaf_index(data_index)
        change = priority - self._tree[idx]
        self._tree[idx] = priority
        while idx > 0:
            idx = (idx - 1) // 2
            self._tree[idx] += change

    def get(self, data_index: int) -> float:
        """Priority currently stored at leaf ``data_index``."""
        return float(self._tree[self._leaf_index(data_index)])

    def sample(self, value: float) -> Tuple[int, float]:
        """Find the leaf such that the prefix sum of priorities covers ``value``.

        Returns ``(data_index, priority)``.
        """
        if self.total <= 0:
            raise ValueError("cannot sample from an empty tree")
        value = float(np.clip(value, 0.0, np.nextafter(self.total, 0.0)))
        idx = 0
        while idx < self.capacity - 1:
            left = 2 * idx + 1
            right = left + 1
            if value <= self._tree[left] or self._tree[right] <= 0.0:
                idx = left
            else:
                value -= self._tree[left]
                idx = right
        data_index = idx - (self.capacity - 1)
        return data_index, float(self._tree[idx])


@dataclass
class ReplayBatch:
    """A sampled mini-batch in array form, ready for the Q-network."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    weights: np.ndarray
    indices: np.ndarray

    def __len__(self) -> int:
        return int(self.states.shape[0])


def _stack_batch(
    transitions: Sequence[Transition],
    weights: np.ndarray,
    indices: np.ndarray,
) -> ReplayBatch:
    state_dim = transitions[0].state.shape[0]
    states = np.stack([t.state for t in transitions])
    actions = np.array([t.action for t in transitions], dtype=np.int64)
    rewards = np.array([t.reward for t in transitions], dtype=np.float64)
    dones = np.array([t.done for t in transitions], dtype=np.float64)
    next_states = np.stack(
        [
            t.next_state if t.next_state is not None else np.zeros(state_dim)
            for t in transitions
        ]
    )
    return ReplayBatch(
        states=states,
        actions=actions,
        rewards=rewards,
        next_states=next_states,
        dones=dones,
        weights=np.asarray(weights, dtype=np.float64),
        indices=np.asarray(indices, dtype=np.int64),
    )


class UniformReplayBuffer:
    """Plain ring-buffer replay memory with uniform sampling (ablation)."""

    def __init__(self, capacity: int, seed=0) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._storage: List[Optional[Transition]] = [None] * self.capacity
        self._next = 0
        self._size = 0
        self._rng = as_generator(seed, "replay")

    def __len__(self) -> int:
        return self._size

    def push(self, transition: Transition) -> None:
        """Store one transition, evicting the oldest when full."""
        self._storage[self._next] = transition
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> ReplayBatch:
        """Sample a batch uniformly at random (importance weights are 1)."""
        check_positive("batch_size", batch_size)
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        indices = self._rng.integers(0, self._size, size=batch_size)
        transitions = [self._storage[i] for i in indices]
        weights = np.ones(batch_size)
        return _stack_batch(transitions, weights, indices)

    def update_priorities(self, indices: np.ndarray, td_errors: np.ndarray) -> None:
        """No-op: uniform replay does not track priorities."""

    def anneal(self, fraction: float) -> None:
        """No-op: uniform replay has no importance-sampling correction."""


class PrioritizedReplayBuffer:
    """Proportional prioritized experience replay (Schaul et al., 2015).

    Parameters
    ----------
    capacity:
        Maximum number of stored transitions.
    alpha:
        Priority exponent (0 = uniform, 1 = fully proportional).
    beta0:
        Initial importance-sampling exponent, annealed towards 1 by
        :meth:`anneal`.
    epsilon:
        Small constant added to |TD error| so no transition starves.
    """

    def __init__(
        self,
        capacity: int,
        alpha: float = 0.6,
        beta0: float = 0.4,
        epsilon: float = 1e-3,
        seed=0,
    ) -> None:
        check_positive("capacity", capacity)
        check_fraction("alpha", alpha)
        check_fraction("beta0", beta0)
        check_positive("epsilon", epsilon)
        self.capacity = int(capacity)
        self.alpha = float(alpha)
        self.beta = float(beta0)
        self.beta0 = float(beta0)
        self.epsilon = float(epsilon)
        self._tree = SumTree(self.capacity)
        self._storage: List[Optional[Transition]] = [None] * self.capacity
        self._next = 0
        self._size = 0
        self._max_priority = 1.0
        self._rng = as_generator(seed, "per")

    def __len__(self) -> int:
        return self._size

    def push(self, transition: Transition) -> None:
        """Store a transition with the maximum priority seen so far."""
        self._storage[self._next] = transition
        self._tree.update(self._next, self._max_priority**self.alpha)
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> ReplayBatch:
        """Sample proportionally to priority, with importance weights."""
        check_positive("batch_size", batch_size)
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        total = self._tree.total
        segment = total / batch_size
        indices = np.empty(batch_size, dtype=np.int64)
        priorities = np.empty(batch_size, dtype=np.float64)
        for i in range(batch_size):
            value = self._rng.uniform(i * segment, (i + 1) * segment)
            idx, priority = self._tree.sample(value)
            # Guard against sampling a not-yet-filled slot (only possible
            # before the buffer wraps for the first time).
            if self._storage[idx] is None:
                idx = int(self._rng.integers(0, self._size))
                priority = max(self._tree.get(idx), self.epsilon**self.alpha)
            indices[i] = idx
            priorities[i] = priority
        probabilities = priorities / max(total, 1e-12)
        weights = (self._size * probabilities) ** (-self.beta)
        weights = weights / weights.max()
        transitions = [self._storage[i] for i in indices]
        return _stack_batch(transitions, weights, indices)

    def update_priorities(self, indices: np.ndarray, td_errors: np.ndarray) -> None:
        """Refresh priorities with the latest |TD errors|."""
        td_errors = np.abs(np.asarray(td_errors, dtype=float))
        for idx, err in zip(np.asarray(indices, dtype=int), td_errors):
            priority = float(err) + self.epsilon
            self._max_priority = max(self._max_priority, priority)
            self._tree.update(int(idx), priority**self.alpha)

    def anneal(self, fraction: float) -> None:
        """Anneal the importance-sampling exponent β from β₀ to 1."""
        fraction = float(np.clip(fraction, 0.0, 1.0))
        self.beta = self.beta0 + (1.0 - self.beta0) * fraction
