"""Log-replay environment for training the mitigation agent (Section 3.3).

An episode is a "run" of the agent on a single node: the node is chosen at
random, a random sequence of jobs (node-count weighted) is assigned to it,
and the agent is invoked at every merged telemetry event between the start
and the end of the training range.  The telemetry features do not depend on
the agent's actions (they come from the historical log); the potential UE
cost does — it resets whenever a mitigation is performed (if the mitigation
allows restart) and keeps accumulating otherwise.  If the next event is a UE
the episode terminates and the reward includes the full UE cost at the UE's
timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import NodeFeatureTrack, StateNormalizer
from repro.core.mdp import Action, EpisodeSummary, compute_reward
from repro.utils.rng import as_generator
from repro.utils.validation import check_non_negative
from repro.workload.sampling import JobSequenceSampler, NodeJobTimeline


@dataclass
class _EpisodeState:
    """Mutable per-episode bookkeeping."""

    node: int
    track: NodeFeatureTrack
    timeline: NodeJobTimeline
    index: int
    last_mitigation: Optional[float]
    n_mitigations: int
    n_decisions: int
    total_reward: float
    mitigation_cost_paid: float
    ue_cost_paid: float


class MitigationEnv:
    """Replay environment exposing the MDP of Section 3.2.

    Parameters
    ----------
    tracks:
        Per-node feature tracks (see :func:`repro.core.features.build_feature_tracks`),
        already restricted to the time range to train on.
    job_sampler:
        Source of node-count-weighted job sequences (Section 3.3.3).
    mitigation_cost:
        Cost of one mitigation action in node–hours.
    restartable:
        Whether the job restarts from the mitigation point (checkpointing);
        if False the potential UE cost never resets (Section 3.2.1).
    t_start, t_end:
        Time range of the episodes.  Defaults to the range spanned by the
        tracks.
    normalizer:
        State normaliser shared with the policy wrapper.
    seed:
        RNG seed (episode node choice and job sequences).
    """

    def __init__(
        self,
        tracks: Dict[int, NodeFeatureTrack],
        job_sampler: JobSequenceSampler,
        mitigation_cost: float,
        restartable: bool = True,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
        normalizer: Optional[StateNormalizer] = None,
        seed=0,
    ) -> None:
        check_non_negative("mitigation_cost", mitigation_cost)
        usable = {
            node: track
            for node, track in tracks.items()
            if len(track) and track.n_decision_points > 0
        }
        if not usable:
            raise ValueError("no node has any decision point in the given tracks")
        self.tracks = usable
        self.job_sampler = job_sampler
        self.mitigation_cost = float(mitigation_cost)
        self.restartable = bool(restartable)
        self.normalizer = normalizer or StateNormalizer()
        self._rng = as_generator(seed, "environment")

        all_times = np.concatenate([t.times for t in usable.values()])
        self.t_start = float(t_start) if t_start is not None else float(all_times.min())
        self.t_end = float(t_end) if t_end is not None else float(all_times.max()) + 1.0
        self._nodes = np.asarray(sorted(usable.keys()))
        self._episode: Optional[_EpisodeState] = None

    # ------------------------------------------------------------------ #
    @property
    def state_dim(self) -> int:
        """Dimensionality of the (normalised) state vector."""
        return self.normalizer.state_dim

    @property
    def n_actions(self) -> int:
        return len(Action)

    @property
    def nodes(self) -> np.ndarray:
        """Nodes available for episodes."""
        return self._nodes.copy()

    # ------------------------------------------------------------------ #
    def reset(self, node: Optional[int] = None) -> np.ndarray:
        """Start a new episode and return the initial (normalised) state."""
        if node is None:
            node = int(self._rng.choice(self._nodes))
        elif node not in self.tracks:
            raise ValueError(f"node {node} has no events in this environment")
        track = self.tracks[node]
        timeline = self.job_sampler.sample_timeline(
            self.t_start, self.t_end, rng=self._rng
        )
        self._episode = _EpisodeState(
            node=int(node),
            track=track,
            timeline=timeline,
            index=0,
            last_mitigation=None,
            n_mitigations=0,
            n_decisions=0,
            total_reward=0.0,
            mitigation_cost_paid=0.0,
            ue_cost_paid=0.0,
        )
        # Skip any leading UE events (the agent is never invoked on them).
        self._skip_ue_events()
        if self._episode.index >= len(track):
            # Degenerate track (UE only); restart on another node.
            return self.reset(None if node is None else None)
        return self._current_state()

    def _skip_ue_events(self) -> None:
        ep = self._episode
        assert ep is not None
        while ep.index < len(ep.track) and bool(ep.track.is_ue[ep.index]):
            ep.index += 1

    def _current_state(self) -> np.ndarray:
        ep = self._episode
        assert ep is not None
        t = float(ep.track.times[ep.index])
        ue_cost = ep.timeline.potential_ue_cost(
            t, ep.last_mitigation, self.restartable
        )
        return self.normalizer.state_vector(ep.track.features[ep.index], ue_cost)

    # ------------------------------------------------------------------ #
    def step(self, action: int) -> Tuple[Optional[np.ndarray], float, bool, dict]:
        """Apply ``action`` at the current event and advance to the next one.

        Returns ``(next_state, reward, done, info)``.  ``next_state`` is
        ``None`` when ``done`` is True.
        """
        ep = self._episode
        if ep is None:
            raise RuntimeError("call reset() before step()")
        action = int(action)
        if action not in (0, 1):
            raise ValueError(f"action must be 0 or 1, got {action!r}")

        t_now = float(ep.track.times[ep.index])
        ep.n_decisions += 1
        if action == Action.MITIGATE:
            ep.last_mitigation = t_now
            ep.n_mitigations += 1
            ep.mitigation_cost_paid += self.mitigation_cost

        # Advance to the next event.
        ep.index += 1
        done = False
        ue_occurred = False
        ue_cost = 0.0
        next_state: Optional[np.ndarray] = None

        if ep.index >= len(ep.track):
            done = True
        elif bool(ep.track.is_ue[ep.index]):
            ue_occurred = True
            done = True
            t_ue = float(ep.track.times[ep.index])
            ue_cost = ep.timeline.potential_ue_cost(
                t_ue, ep.last_mitigation, self.restartable
            )
            ep.ue_cost_paid += ue_cost
        else:
            next_state = self._current_state()

        reward = compute_reward(action, self.mitigation_cost, ue_occurred, ue_cost)
        # The mitigation cost of the action just taken is part of the reward;
        # avoid double counting it in the paid-cost bookkeeping above.
        ep.total_reward += reward

        info = {
            "node": ep.node,
            "time": t_now,
            "ue_occurred": ue_occurred,
            "ue_cost": ue_cost,
            "n_mitigations": ep.n_mitigations,
        }
        if done:
            info["episode"] = self.episode_summary()
            self._episode = None if False else ep  # keep for summary access
        return next_state, reward, done, info

    # ------------------------------------------------------------------ #
    def episode_summary(self) -> EpisodeSummary:
        """Summary of the current (or just finished) episode."""
        ep = self._episode
        if ep is None:
            raise RuntimeError("no episode has been started")
        return EpisodeSummary(
            node=ep.node,
            n_steps=ep.n_decisions,
            n_mitigations=ep.n_mitigations,
            ue_occurred=ep.ue_cost_paid > 0,
            total_reward=ep.total_reward,
            mitigation_cost=ep.mitigation_cost_paid,
            ue_cost=ep.ue_cost_paid,
        )
