"""Opt-in compiled kernels for the decision core's hottest scalar loops.

The vectorized decision core is numpy-dispatch-bound in three places that
resist further batching: the :class:`~repro.core.replay.SumTree` descent
(a data-dependent walk per sampled value), the level-synchronous CART
forest walk (a gather chain per tree level), and the segmented cost fold
of the replay accounting (a sequential last-mitigation/last-UE recurrence).
This module compiles those loops with numba when — and only when — the
feature flag asks for it:

* ``ExperimentConfig.compiled`` (CLI: ``--compiled``) enables the kernels
  for one experiment;
* the ``REPRO_COMPILED`` environment variable (``1``/``true``/``on``)
  enables them process-wide, including in executor worker processes.

With the flag off this module never imports numba — the import lives
inside :func:`_build` — so the default configuration is bit-for-bit the
pure-numpy code path with zero new dependencies.  With the flag on but
numba missing, a single :class:`RuntimeWarning` is emitted and the numpy
path is used; results are identical either way, because every kernel
performs exactly the element-wise operations (same order, same IEEE-754
semantics, no fastmath) of the numpy implementation it replaces.  The
scalar-vs-vector equivalence suites run under both settings in CI.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

import numpy as np

__all__ = [
    "set_compiled",
    "apply_config",
    "compiled_requested",
    "compiled_available",
    "active",
]

#: Explicit override of the feature flag (None → consult ``REPRO_COMPILED``).
_REQUESTED: Optional[bool] = None
#: Resolved kernel namespace: None = not resolved yet, False = numba missing.
_IMPL = None
#: Compiled functions survive flag toggles (compilation is expensive).
_COMPILED_CACHE = None
_WARNED = False

_ENV_TRUE = ("1", "true", "on", "yes")


def set_compiled(enabled: Optional[bool]) -> None:
    """Set the process-wide compiled-kernel flag.

    ``True``/``False`` override the environment; ``None`` restores the
    ``REPRO_COMPILED`` environment default.  Toggling never recompiles:
    already-built kernels are cached for the life of the process.
    """
    global _REQUESTED, _IMPL
    _REQUESTED = None if enabled is None else bool(enabled)
    _IMPL = None


def apply_config(compiled: bool) -> None:
    """Enable the kernels when an experiment config asks for them.

    Called at the start of the driver run and of every executor task body
    (worker processes start from the environment default, so the config
    flag must travel with the task).  Only ever *enables*: a config with
    the flag off leaves the process default (``REPRO_COMPILED``) in place.
    The flag is pure performance — results are identical either way — so a
    worker that served a compiled sweep point keeping its kernels warm for
    later points is safe.
    """
    if compiled:
        set_compiled(True)


def compiled_requested() -> bool:
    """Whether the feature flag (config override or environment) is on."""
    if _REQUESTED is not None:
        return _REQUESTED
    return os.environ.get("REPRO_COMPILED", "").strip().lower() in _ENV_TRUE


def compiled_available() -> bool:
    """Whether the flag is on *and* numba produced working kernels."""
    return active() is not None


def active():
    """The kernel namespace when enabled and available, else ``None``.

    Hot-path callers use this as their dispatch:
    ``k = kernels.active();  k.sumtree_descend(...) if k else <numpy path>``.
    """
    global _IMPL, _WARNED
    if not compiled_requested():
        return None
    if _IMPL is None:
        _IMPL = _build()
        if _IMPL is False and not _WARNED:
            _WARNED = True
            warnings.warn(
                "REPRO_COMPILED / ExperimentConfig.compiled is set but numba "
                "is not installed; falling back to the pure-numpy kernels "
                "(results are identical, only slower).  Install the "
                "'compiled' extra (pip install repro-dram-mitigation"
                "[compiled]) to enable the compiled decision kernels.",
                RuntimeWarning,
                stacklevel=2,
            )
    return _IMPL or None


def _build():
    """Compile the kernel namespace, or ``False`` when numba is missing."""
    global _COMPILED_CACHE
    if _COMPILED_CACHE is not None:
        return _COMPILED_CACHE
    try:
        import numba
    except ImportError:
        return False

    # No fastmath, no parallel: the loops below must perform the same
    # IEEE-754 operations, in the same order, as their numpy counterparts.
    njit = numba.njit(cache=False, fastmath=False)

    @njit
    def sumtree_descend(tree, values, n_internal):
        """Per-value root-to-leaf descent; mirrors ``SumTree.sample``.

        ``values`` must already be clipped to ``[0, nextafter(total, 0)]``.
        Returns the leaf node indices (tree coordinates, not data indices).
        """
        out = np.empty(values.size, dtype=np.int64)
        for k in range(values.size):
            value = values[k]
            idx = 0
            while idx < n_internal:
                left = 2 * idx + 1
                right = left + 1
                if value <= tree[left] or tree[right] <= 0.0:
                    idx = left
                else:
                    value -= tree[left]
                    idx = right
            out[k] = idx
        return out

    @njit
    def forest_walk(flat_x, row_base, start_nodes, feature, threshold,
                    left, right, depth):
        """Route every (tree, row) pair to its leaf; mirrors the
        level-synchronous walk of ``RandomForestClassifier.predict_proba``
        (leaf self-loops make the fixed ``depth`` iterations no-ops)."""
        node = np.empty(start_nodes.size, dtype=np.int64)
        for i in range(start_nodes.size):
            current = start_nodes[i]
            base = row_base[i]
            for _ in range(depth):
                if flat_x[base + feature[current]] <= threshold[current]:
                    current = left[current]
                else:
                    current = right[current]
            node[i] = current
        return node

    @njit
    def account_costs(times, is_ue, mask, job_start, job_nodes, hour):
        """Segmented cost fold of the replay accounting: the per-event
        potential-UE cost under the last surviving mitigation (forgotten at
        each UE), element-wise identical to the forward-filled numpy scan
        in ``repro.evaluation.runner._account_panel``."""
        n = times.size
        costs = np.empty(n, dtype=np.float64)
        last_mit = -1
        last_ue = -1
        for i in range(n):
            if last_mit >= 0 and last_mit > last_ue:
                reference = max(job_start[i], times[last_mit])
            else:
                reference = job_start[i]
            costs[i] = job_nodes[i] * max(0.0, times[i] - reference) / hour
            if mask[i]:
                last_mit = i
            if is_ue[i]:
                last_ue = i
        return costs

    class _Kernels:
        pass

    namespace = _Kernels()
    namespace.sumtree_descend = sumtree_descend
    namespace.forest_walk = forest_walk
    namespace.account_costs = account_costs
    _COMPILED_CACHE = namespace
    return namespace
