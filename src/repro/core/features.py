"""Per-node feature extraction (Table 1 of the paper).

For every merged decision point (one per node per minute with events, see
:mod:`repro.telemetry.merging`) the agent observes:

* corrected-error features: CEs since the last event, CEs since the beginning
  of operation, the number of distinct ranks / banks / rows / columns with
  CEs, and the number of DIMMs with CEs;
* uncorrected-error features: the number of UE warnings since the beginning
  of operation;
* system-state features: time since the last node boot and the number of
  node boots;
* the *feature variation over time* (Equation 2) of the cumulative CE count
  and boot count, for Δt of one minute and one hour;
* the potential UE cost (Equation 3) — supplied by the environment, not by
  this module, because it depends on the workload and the mitigation history.

Counts are cumulative from the beginning of the extracted range, which in
training/evaluation corresponds to the beginning of the cross-validation
split — the same information the production monitoring daemon would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.merging import MergedEvent, merge_node_events
from repro.telemetry.records import EventKind
from repro.utils.timeutils import HOUR, MINUTE

#: Names of the telemetry-derived state features, in vector order.
FEATURE_NAMES: Tuple[str, ...] = (
    "ces_since_last_event",
    "ces_total",
    "ranks_with_ce",
    "banks_with_ce",
    "rows_with_ce",
    "cols_with_ce",
    "dimms_with_ce",
    "ue_warnings_total",
    "time_since_boot",
    "boots_total",
    "ces_total_var_1min",
    "ces_total_var_1hour",
    "boots_var_1min",
    "boots_var_1hour",
)

#: Number of telemetry-derived features (the full state adds the UE cost).
N_FEATURES: int = len(FEATURE_NAMES)

#: Index of each feature name in the feature vector.
FEATURE_INDEX: Dict[str, int] = {name: i for i, name in enumerate(FEATURE_NAMES)}

#: Δt values for the feature-variation-over-time calculation (Equation 2).
VARIATION_DELTAS: Tuple[float, ...] = (MINUTE, HOUR)


def feature_variation(
    history_times: Sequence[float],
    history_values: Sequence[float],
    now: float,
    value_now: float,
    delta: float,
) -> float:
    """Equation 2: value(now) / value(now - Δt), 0 when the denominator is 0.

    ``history_times``/``history_values`` record the cumulative feature value
    after each past event; the value at ``now - Δt`` is the value after the
    last event at or before that instant.
    """
    t_ref = now - delta
    idx = int(np.searchsorted(history_times, t_ref, side="right")) - 1
    past = history_values[idx] if idx >= 0 else 0.0
    if past == 0.0:
        return 0.0
    return float(value_now) / float(past)


@dataclass(frozen=True)
class NodeFeatureTrack:
    """Pre-computed feature snapshots for one node, one per merged event.

    Attributes
    ----------
    node:
        Node identifier.
    times:
        Time of each merged event (decision point), sorted.
    features:
        Array of shape ``(n_events, N_FEATURES)``, the telemetry features at
        each decision point.
    is_ue:
        True where the merged event contains an uncorrected error (a terminal
        transition; the agent is not invoked for these).
    """

    node: int
    times: np.ndarray
    features: np.ndarray
    is_ue: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.times) == len(self.features) == len(self.is_ue)):
            raise ValueError("track arrays must have the same length")
        if self.features.ndim != 2 or (
            len(self.features) and self.features.shape[1] != N_FEATURES
        ):
            raise ValueError(
                f"features must have shape (n, {N_FEATURES}), got {self.features.shape}"
            )

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def n_decision_points(self) -> int:
        """Number of events at which the agent is actually invoked."""
        return int(np.count_nonzero(~self.is_ue))

    @property
    def ue_times(self) -> np.ndarray:
        """Times of the UE events on this node."""
        return self.times[self.is_ue]

    def slice_time(self, t_start: float, t_end: float) -> "NodeFeatureTrack":
        """Sub-track with ``t_start <= time < t_end``."""
        mask = (self.times >= t_start) & (self.times < t_end)
        return NodeFeatureTrack(
            node=self.node,
            times=self.times[mask],
            features=self.features[mask],
            is_ue=self.is_ue[mask],
        )


def extract_node_features(
    log: ErrorLog,
    node: int,
    indices: Optional[np.ndarray] = None,
    merge_window_seconds: float = MINUTE,
) -> NodeFeatureTrack:
    """Compute the Table 1 feature track for one node.

    Parameters
    ----------
    log:
        The (preprocessed) error log.
    node:
        Node to extract.
    indices:
        Optional pre-computed indices of the node's events in ``log`` (from
        :meth:`ErrorLog.node_slices`); computed if omitted.
    merge_window_seconds:
        Per-minute merging window (Section 3.2.3).
    """
    if indices is None:
        indices = np.flatnonzero(log.node == node)
    merged = merge_node_events(log, indices, merge_window_seconds)

    times = np.empty(len(merged))
    features = np.zeros((len(merged), N_FEATURES))
    is_ue = np.zeros(len(merged), dtype=bool)

    ces_total = 0.0
    warnings_total = 0.0
    boots_total = 0.0
    last_boot_time: Optional[float] = None
    ranks: set = set()
    banks: set = set()
    rows: set = set()
    cols: set = set()
    dimms: set = set()

    # Histories of the cumulative features used by Equation 2.
    hist_times: List[float] = []
    hist_ces: List[float] = []
    hist_boots: List[float] = []

    track_start = float(log.time[indices[0]]) if len(merged) else 0.0

    for i, step in enumerate(merged):
        ces_in_step = 0.0
        for idx in step.indices:
            kind = EventKind(int(log.kind[idx]))
            if kind == EventKind.CE:
                count = float(log.ce_count[idx])
                ces_in_step += count
                ces_total += count
                dimm = int(log.dimm[idx])
                dimms.add(dimm)
                if log.rank[idx] >= 0:
                    ranks.add((dimm, int(log.rank[idx])))
                if log.bank[idx] >= 0:
                    banks.add((dimm, int(log.rank[idx]), int(log.bank[idx])))
                if log.row[idx] >= 0:
                    rows.add((dimm, int(log.rank[idx]), int(log.bank[idx]), int(log.row[idx])))
                if log.col[idx] >= 0:
                    cols.add((dimm, int(log.rank[idx]), int(log.bank[idx]), int(log.col[idx])))
            elif kind == EventKind.UE_WARNING:
                warnings_total += 1.0
            elif kind == EventKind.BOOT:
                boots_total += 1.0
                last_boot_time = float(log.time[idx])

        t = step.time
        times[i] = t
        is_ue[i] = step.is_ue

        if last_boot_time is None:
            time_since_boot = t - track_start
        else:
            time_since_boot = t - last_boot_time

        vec = features[i]
        vec[FEATURE_INDEX["ces_since_last_event"]] = ces_in_step
        vec[FEATURE_INDEX["ces_total"]] = ces_total
        vec[FEATURE_INDEX["ranks_with_ce"]] = len(ranks)
        vec[FEATURE_INDEX["banks_with_ce"]] = len(banks)
        vec[FEATURE_INDEX["rows_with_ce"]] = len(rows)
        vec[FEATURE_INDEX["cols_with_ce"]] = len(cols)
        vec[FEATURE_INDEX["dimms_with_ce"]] = len(dimms)
        vec[FEATURE_INDEX["ue_warnings_total"]] = warnings_total
        vec[FEATURE_INDEX["time_since_boot"]] = max(time_since_boot, 0.0)
        vec[FEATURE_INDEX["boots_total"]] = boots_total
        vec[FEATURE_INDEX["ces_total_var_1min"]] = feature_variation(
            hist_times, hist_ces, t, ces_total, MINUTE
        )
        vec[FEATURE_INDEX["ces_total_var_1hour"]] = feature_variation(
            hist_times, hist_ces, t, ces_total, HOUR
        )
        vec[FEATURE_INDEX["boots_var_1min"]] = feature_variation(
            hist_times, hist_boots, t, boots_total, MINUTE
        )
        vec[FEATURE_INDEX["boots_var_1hour"]] = feature_variation(
            hist_times, hist_boots, t, boots_total, HOUR
        )

        hist_times.append(t)
        hist_ces.append(ces_total)
        hist_boots.append(boots_total)

    return NodeFeatureTrack(node=int(node), times=times, features=features, is_ue=is_ue)


def build_feature_tracks(
    log: ErrorLog, merge_window_seconds: float = MINUTE
) -> Dict[int, NodeFeatureTrack]:
    """Compute feature tracks for every node present in ``log``."""
    return {
        node: extract_node_features(log, node, indices, merge_window_seconds)
        for node, indices in log.node_slices().items()
    }


class StateNormalizer:
    """Deterministic scaling of the state vector fed to the Q-network.

    Counts, times and costs span several orders of magnitude, so they are
    compressed with ``log1p``; the Equation 2 variation ratios are already
    dimensionless and are only clipped.  The transform is fixed (not fitted)
    so there is no risk of leaking test-set statistics into training.
    """

    #: Features passed through untransformed (only clipped).
    RATIO_FEATURES = (
        "ces_total_var_1min",
        "ces_total_var_1hour",
        "boots_var_1min",
        "boots_var_1hour",
    )

    def __init__(self, ratio_clip: float = 50.0) -> None:
        if ratio_clip <= 0:
            raise ValueError("ratio_clip must be > 0")
        self.ratio_clip = float(ratio_clip)
        self._log_mask = np.ones(N_FEATURES + 1, dtype=bool)
        for name in self.RATIO_FEATURES:
            self._log_mask[FEATURE_INDEX[name]] = False

    @property
    def state_dim(self) -> int:
        """Dimensionality of the normalised state (features + UE cost)."""
        return N_FEATURES + 1

    def state_vector(self, features: np.ndarray, ue_cost: float) -> np.ndarray:
        """Build and normalise the full state vector (features ‖ UE cost)."""
        features = np.asarray(features, dtype=float)
        if features.shape[-1] != N_FEATURES:
            raise ValueError(
                f"expected {N_FEATURES} telemetry features, got {features.shape[-1]}"
            )
        state = np.concatenate([features, [float(ue_cost)]])
        return self.transform(state)

    def transform(self, state: np.ndarray) -> np.ndarray:
        """Normalise a raw state vector (or batch of them)."""
        state = np.asarray(state, dtype=float)
        out = np.array(state, dtype=float, copy=True)
        log_part = out[..., self._log_mask]
        out[..., self._log_mask] = np.log1p(np.maximum(log_part, 0.0))
        ratio_part = out[..., ~self._log_mask]
        out[..., ~self._log_mask] = np.clip(ratio_part, 0.0, self.ratio_clip)
        return out
