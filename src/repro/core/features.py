"""Per-node feature extraction (Table 1 of the paper).

For every merged decision point (one per node per minute with events, see
:mod:`repro.telemetry.merging`) the agent observes:

* corrected-error features: CEs since the last event, CEs since the beginning
  of operation, the number of distinct ranks / banks / rows / columns with
  CEs, and the number of DIMMs with CEs;
* uncorrected-error features: the number of UE warnings since the beginning
  of operation;
* system-state features: time since the last node boot and the number of
  node boots;
* the *feature variation over time* (Equation 2) of the cumulative CE count
  and boot count, for Δt of one minute and one hour;
* the potential UE cost (Equation 3) — supplied by the environment, not by
  this module, because it depends on the workload and the mitigation history.

Counts are cumulative from the beginning of the extracted range, which in
training/evaluation corresponds to the beginning of the cross-validation
split — the same information the production monitoring daemon would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.merging import MergedEvent, merge_node_events
from repro.telemetry.records import EventKind, EventRecord
from repro.utils.timeutils import HOUR, MINUTE

#: Names of the telemetry-derived state features, in vector order.
FEATURE_NAMES: Tuple[str, ...] = (
    "ces_since_last_event",
    "ces_total",
    "ranks_with_ce",
    "banks_with_ce",
    "rows_with_ce",
    "cols_with_ce",
    "dimms_with_ce",
    "ue_warnings_total",
    "time_since_boot",
    "boots_total",
    "ces_total_var_1min",
    "ces_total_var_1hour",
    "boots_var_1min",
    "boots_var_1hour",
)

#: Number of telemetry-derived features (the full state adds the UE cost).
N_FEATURES: int = len(FEATURE_NAMES)

#: Index of each feature name in the feature vector.
FEATURE_INDEX: Dict[str, int] = {name: i for i, name in enumerate(FEATURE_NAMES)}

#: Δt values for the feature-variation-over-time calculation (Equation 2).
VARIATION_DELTAS: Tuple[float, ...] = (MINUTE, HOUR)


def feature_variation(
    history_times: Sequence[float],
    history_values: Sequence[float],
    now: float,
    value_now: float,
    delta: float,
) -> float:
    """Equation 2: value(now) / value(now - Δt), 0 when the denominator is 0.

    ``history_times``/``history_values`` record the cumulative feature value
    after each past event; the value at ``now - Δt`` is the value after the
    last event at or before that instant.
    """
    t_ref = now - delta
    idx = int(np.searchsorted(history_times, t_ref, side="right")) - 1
    past = history_values[idx] if idx >= 0 else 0.0
    if past == 0.0:
        return 0.0
    return float(value_now) / float(past)


@dataclass(frozen=True)
class NodeFeatureTrack:
    """Pre-computed feature snapshots for one node, one per merged event.

    Attributes
    ----------
    node:
        Node identifier.
    times:
        Time of each merged event (decision point), sorted.
    features:
        Array of shape ``(n_events, N_FEATURES)``, the telemetry features at
        each decision point.
    is_ue:
        True where the merged event contains an uncorrected error (a terminal
        transition; the agent is not invoked for these).
    """

    node: int
    times: np.ndarray
    features: np.ndarray
    is_ue: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.times) == len(self.features) == len(self.is_ue)):
            raise ValueError("track arrays must have the same length")
        if self.features.ndim != 2 or (
            len(self.features) and self.features.shape[1] != N_FEATURES
        ):
            raise ValueError(
                f"features must have shape (n, {N_FEATURES}), got {self.features.shape}"
            )

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def n_decision_points(self) -> int:
        """Number of events at which the agent is actually invoked."""
        return int(np.count_nonzero(~self.is_ue))

    @property
    def ue_times(self) -> np.ndarray:
        """Times of the UE events on this node."""
        return self.times[self.is_ue]

    def slice_time(self, t_start: float, t_end: float) -> "NodeFeatureTrack":
        """Sub-track with ``t_start <= time < t_end``."""
        mask = (self.times >= t_start) & (self.times < t_end)
        return NodeFeatureTrack(
            node=self.node,
            times=self.times[mask],
            features=self.features[mask],
            is_ue=self.is_ue[mask],
        )


def extract_node_features(
    log: ErrorLog,
    node: int,
    indices: Optional[np.ndarray] = None,
    merge_window_seconds: float = MINUTE,
) -> NodeFeatureTrack:
    """Compute the Table 1 feature track for one node (vectorized).

    Bit-identical to the per-event reference loop
    (:func:`_extract_node_features_loop`, pinned by the equivalence tests):
    cumulative counts fold with ``np.add.accumulate`` / ``np.add.at`` (exact
    ordered folds), distinct CE-location counting becomes a stable-sort
    first-occurrence scan, and the Equation 2 look-backs become one
    ``searchsorted`` per Δt.

    Parameters
    ----------
    log:
        The (preprocessed) error log.
    node:
        Node to extract.
    indices:
        Optional pre-computed indices of the node's events in ``log`` (from
        :meth:`ErrorLog.node_slices`); computed if omitted.
    merge_window_seconds:
        Per-minute merging window (Section 3.2.3).
    """
    if indices is None:
        indices = np.flatnonzero(log.node == node)
    merged = merge_node_events(log, indices, merge_window_seconds)
    n_steps = len(merged)

    times = np.array([step.time for step in merged], dtype=np.float64)
    is_ue = np.array([step.is_ue for step in merged], dtype=bool)
    features = np.zeros((n_steps, N_FEATURES))
    if n_steps == 0:
        return NodeFeatureTrack(
            node=int(node), times=times, features=features, is_ue=is_ue
        )

    # The merged steps partition ``indices`` in order; per-event arrays are
    # gathered once and reduced onto steps through the partition boundaries.
    event_indices = np.asarray(indices)
    step_sizes = np.array([step.n_raw_events for step in merged], dtype=np.int64)
    ends = np.add.accumulate(step_sizes)
    last_event = ends - 1
    step_of_event = np.repeat(np.arange(n_steps), step_sizes)

    ev_time = log.time[event_indices]
    kind = log.kind[event_indices]
    is_ce = kind == int(EventKind.CE)
    is_warning = kind == int(EventKind.UE_WARNING)
    is_boot = kind == int(EventKind.BOOT)
    ce_counts = np.where(is_ce, log.ce_count[event_indices].astype(np.float64), 0.0)

    # Cumulative totals are exact left folds of the per-event additions.
    cum_ces = np.add.accumulate(ce_counts)
    ces_total = cum_ces[last_event]
    ces_in_step = np.zeros(n_steps)
    np.add.at(ces_in_step, step_of_event, ce_counts)
    warnings_total = np.add.accumulate(np.where(is_warning, 1.0, 0.0))[last_event]
    boots_total = np.add.accumulate(np.where(is_boot, 1.0, 0.0))[last_event]

    # Time since the last node boot observed up to (and including) each
    # step; nodes without a boot yet measure from the track start.
    last_boot = np.maximum.accumulate(np.where(is_boot, ev_time, -np.inf))[last_event]
    track_start = float(log.time[event_indices[0]])
    time_since_boot = np.where(
        np.isneginf(last_boot), times - track_start, times - last_boot
    )

    dimm = log.dimm[event_indices].astype(np.int64)
    rank = log.rank[event_indices].astype(np.int64)
    bank = log.bank[event_indices].astype(np.int64)
    row = log.row[event_indices].astype(np.int64)
    col = log.col[event_indices].astype(np.int64)

    def distinct_counts(member: np.ndarray, *key_columns: np.ndarray) -> np.ndarray:
        """Per-step count of distinct key tuples among qualifying events."""
        if not member.any():
            return np.zeros(n_steps)
        positions = np.flatnonzero(member)
        keys = np.stack([column[member] for column in key_columns], axis=1)
        order = np.lexsort(keys.T[::-1])  # stable: ties keep event order
        sorted_keys = keys[order]
        new_group = np.ones(len(sorted_keys), dtype=bool)
        if len(sorted_keys) > 1:
            new_group[1:] = (sorted_keys[1:] != sorted_keys[:-1]).any(axis=1)
        first_seen = np.sort(positions[order[new_group]])
        return np.searchsorted(first_seen, last_event, side="right").astype(
            np.float64
        )

    dimms_count = distinct_counts(is_ce, dimm)
    ranks_count = distinct_counts(is_ce & (rank >= 0), dimm, rank)
    banks_count = distinct_counts(is_ce & (bank >= 0), dimm, rank, bank)
    rows_count = distinct_counts(is_ce & (row >= 0), dimm, rank, bank, row)
    cols_count = distinct_counts(is_ce & (col >= 0), dimm, rank, bank, col)

    def variation(values_at_step: np.ndarray, delta: float) -> np.ndarray:
        """Equation 2 over all steps: value(now) / value(now - Δt)."""
        reference = np.searchsorted(times, times - delta, side="right") - 1
        past = np.where(
            reference >= 0, values_at_step[np.maximum(reference, 0)], 0.0
        )
        out = np.zeros(n_steps)
        np.divide(values_at_step, past, out=out, where=past != 0.0)
        return out

    features[:, FEATURE_INDEX["ces_since_last_event"]] = ces_in_step
    features[:, FEATURE_INDEX["ces_total"]] = ces_total
    features[:, FEATURE_INDEX["ranks_with_ce"]] = ranks_count
    features[:, FEATURE_INDEX["banks_with_ce"]] = banks_count
    features[:, FEATURE_INDEX["rows_with_ce"]] = rows_count
    features[:, FEATURE_INDEX["cols_with_ce"]] = cols_count
    features[:, FEATURE_INDEX["dimms_with_ce"]] = dimms_count
    features[:, FEATURE_INDEX["ue_warnings_total"]] = warnings_total
    features[:, FEATURE_INDEX["time_since_boot"]] = np.maximum(time_since_boot, 0.0)
    features[:, FEATURE_INDEX["boots_total"]] = boots_total
    features[:, FEATURE_INDEX["ces_total_var_1min"]] = variation(ces_total, MINUTE)
    features[:, FEATURE_INDEX["ces_total_var_1hour"]] = variation(ces_total, HOUR)
    features[:, FEATURE_INDEX["boots_var_1min"]] = variation(boots_total, MINUTE)
    features[:, FEATURE_INDEX["boots_var_1hour"]] = variation(boots_total, HOUR)

    return NodeFeatureTrack(node=int(node), times=times, features=features, is_ue=is_ue)


def _extract_node_features_loop(
    log: ErrorLog,
    node: int,
    indices: Optional[np.ndarray] = None,
    merge_window_seconds: float = MINUTE,
) -> NodeFeatureTrack:
    """Per-event reference implementation of :func:`extract_node_features`.

    Kept as the behavioural specification of the vectorized path: the
    equivalence suite and the decision-core benchmark compare the two
    bit for bit on fuzzed logs.
    """
    if indices is None:
        indices = np.flatnonzero(log.node == node)
    merged = merge_node_events(log, indices, merge_window_seconds)

    times = np.empty(len(merged))
    features = np.zeros((len(merged), N_FEATURES))
    is_ue = np.zeros(len(merged), dtype=bool)

    ces_total = 0.0
    warnings_total = 0.0
    boots_total = 0.0
    last_boot_time: Optional[float] = None
    ranks: set = set()
    banks: set = set()
    rows: set = set()
    cols: set = set()
    dimms: set = set()

    # Histories of the cumulative features used by Equation 2.
    hist_times: List[float] = []
    hist_ces: List[float] = []
    hist_boots: List[float] = []

    track_start = float(log.time[indices[0]]) if len(merged) else 0.0

    for i, step in enumerate(merged):
        ces_in_step = 0.0
        for idx in step.indices:
            kind = EventKind(int(log.kind[idx]))
            if kind == EventKind.CE:
                count = float(log.ce_count[idx])
                ces_in_step += count
                ces_total += count
                dimm = int(log.dimm[idx])
                dimms.add(dimm)
                if log.rank[idx] >= 0:
                    ranks.add((dimm, int(log.rank[idx])))
                if log.bank[idx] >= 0:
                    banks.add((dimm, int(log.rank[idx]), int(log.bank[idx])))
                if log.row[idx] >= 0:
                    rows.add((dimm, int(log.rank[idx]), int(log.bank[idx]), int(log.row[idx])))
                if log.col[idx] >= 0:
                    cols.add((dimm, int(log.rank[idx]), int(log.bank[idx]), int(log.col[idx])))
            elif kind == EventKind.UE_WARNING:
                warnings_total += 1.0
            elif kind == EventKind.BOOT:
                boots_total += 1.0
                last_boot_time = float(log.time[idx])

        t = step.time
        times[i] = t
        is_ue[i] = step.is_ue

        if last_boot_time is None:
            time_since_boot = t - track_start
        else:
            time_since_boot = t - last_boot_time

        vec = features[i]
        vec[FEATURE_INDEX["ces_since_last_event"]] = ces_in_step
        vec[FEATURE_INDEX["ces_total"]] = ces_total
        vec[FEATURE_INDEX["ranks_with_ce"]] = len(ranks)
        vec[FEATURE_INDEX["banks_with_ce"]] = len(banks)
        vec[FEATURE_INDEX["rows_with_ce"]] = len(rows)
        vec[FEATURE_INDEX["cols_with_ce"]] = len(cols)
        vec[FEATURE_INDEX["dimms_with_ce"]] = len(dimms)
        vec[FEATURE_INDEX["ue_warnings_total"]] = warnings_total
        vec[FEATURE_INDEX["time_since_boot"]] = max(time_since_boot, 0.0)
        vec[FEATURE_INDEX["boots_total"]] = boots_total
        vec[FEATURE_INDEX["ces_total_var_1min"]] = feature_variation(
            hist_times, hist_ces, t, ces_total, MINUTE
        )
        vec[FEATURE_INDEX["ces_total_var_1hour"]] = feature_variation(
            hist_times, hist_ces, t, ces_total, HOUR
        )
        vec[FEATURE_INDEX["boots_var_1min"]] = feature_variation(
            hist_times, hist_boots, t, boots_total, MINUTE
        )
        vec[FEATURE_INDEX["boots_var_1hour"]] = feature_variation(
            hist_times, hist_boots, t, boots_total, HOUR
        )

        hist_times.append(t)
        hist_ces.append(ces_total)
        hist_boots.append(boots_total)

    return NodeFeatureTrack(node=int(node), times=times, features=features, is_ue=is_ue)


class _GrowableArray:
    """Append-only float64 buffer with amortised growth and a zero-copy view.

    The Equation 2 histories grow one entry per merged step for the lifetime
    of a node; a list would force ``np.searchsorted`` to re-copy it on every
    lookup, so the online state keeps real arrays.
    """

    __slots__ = ("_buf", "_n")

    def __init__(self) -> None:
        self._buf = np.empty(16, dtype=np.float64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append(self, value: float) -> None:
        if self._n == self._buf.shape[0]:
            grown = np.empty(self._buf.shape[0] * 2, dtype=np.float64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = value
        self._n += 1

    def view(self) -> np.ndarray:
        return self._buf[: self._n]

    def __deepcopy__(self, memo) -> "_GrowableArray":
        clone = _GrowableArray.__new__(_GrowableArray)
        clone._buf = self._buf.copy()
        clone._n = self._n
        return clone


@dataclass(frozen=True)
class OnlineStep:
    """One finalised merged decision step emitted by the online extractor.

    ``features`` is the same 14-vector a :class:`NodeFeatureTrack` row would
    carry for this step; ``is_ue`` marks terminal (UE / over-temperature)
    steps, for which the agent is not invoked.
    """

    node: int
    time: float
    features: np.ndarray
    is_ue: bool


class OnlineFeatureState:
    """Incremental, per-node equivalent of :func:`extract_node_features`.

    The offline extractors see a complete log and fold it in one pass; a
    serving daemon sees one event at a time and needs the Table 1 features
    of each merged step the moment the step closes.  This class replays the
    exact operation order of :func:`_extract_node_features_loop` — the same
    left-fold float additions, the same distinct-location sets, the same
    Equation 2 ``searchsorted`` look-backs — so a stream absorbed event by
    event produces rows bit-identical to the batch extractor run over any
    prefix of the same stream (pinned by the prefix-equivalence tests).

    Merge-group life cycle (mirrors :func:`merge_node_events`):

    * an event more than ``merge_window_seconds`` after the open group's
      first event closes that group and starts a new one;
    * a UE joins the open group and closes it immediately (no later event
      may share a group with a UE, so nothing can change the step anymore);
    * :meth:`advance_to` closes an open group once the *stream* clock passes
      ``window start + merge window`` — by then every unseen event is too
      late to join, so the step is final even though no node event arrived;
    * :meth:`flush` force-closes the open group at end of stream, matching
      how the batch extractor terminates the last group at the array end.

    Events must be absorbed in non-decreasing time order (the log is sorted;
    a live tail is too).
    """

    def __init__(self, node: int, merge_window_seconds: float = MINUTE) -> None:
        if merge_window_seconds <= 0:
            raise ValueError("merge_window_seconds must be > 0")
        self.node = int(node)
        self.merge_window_seconds = float(merge_window_seconds)

        self._ces_total = 0.0
        self._warnings_total = 0.0
        self._boots_total = 0.0
        self._last_boot_time: Optional[float] = None
        self._ranks: set = set()
        self._banks: set = set()
        self._rows: set = set()
        self._cols: set = set()
        self._dimms: set = set()

        self._hist_times = _GrowableArray()
        self._hist_ces = _GrowableArray()
        self._hist_boots = _GrowableArray()

        self._track_start: Optional[float] = None
        self._last_event_time: Optional[float] = None
        self._group: List[Tuple[float, int, int, int, int, int, int, int]] = []
        self._group_start = 0.0
        self._group_has_ue = False
        self._n_steps = 0

    @property
    def n_steps(self) -> int:
        """Number of merged steps finalised so far."""
        return self._n_steps

    @property
    def has_open_group(self) -> bool:
        """True while events are accumulating in an unfinalised step."""
        return bool(self._group)

    @property
    def open_group_deadline(self) -> Optional[float]:
        """Stream time at which the open group becomes final, or ``None``.

        Once the stream clock reaches this instant no future event can join
        the group, so :meth:`advance_to` will close it.
        """
        if not self._group:
            return None
        return self._group_start + self.merge_window_seconds

    def absorb(self, record: EventRecord) -> List[OnlineStep]:
        """Absorb one :class:`EventRecord`; return any steps it finalised."""
        return self.absorb_event(
            record.time,
            int(record.kind),
            ce_count=record.ce_count,
            dimm=record.dimm,
            rank=record.rank,
            bank=record.bank,
            row=record.row,
            col=record.col,
        )

    def absorb_event(
        self,
        time: float,
        kind: int,
        ce_count: int = 0,
        dimm: int = -1,
        rank: int = -1,
        bank: int = -1,
        row: int = -1,
        col: int = -1,
    ) -> List[OnlineStep]:
        """Absorb one raw event given as plain fields (the fast path)."""
        t = float(time)
        if self._last_event_time is not None and t < self._last_event_time:
            raise ValueError(
                f"node {self.node}: events must arrive in time order "
                f"(got {t!r} after {self._last_event_time!r})"
            )
        self._last_event_time = t
        if self._track_start is None:
            self._track_start = t

        out: List[OnlineStep] = []
        if self._group and t - self._group_start >= self.merge_window_seconds:
            out.append(self._finalize())
        if not self._group:
            self._group_start = t
        self._group.append(
            (t, int(kind), int(ce_count), int(dimm), int(rank), int(bank), int(row), int(col))
        )
        if EventKind(int(kind)).counts_as_ue:
            self._group_has_ue = True
            out.append(self._finalize())
        return out

    def absorb_log(
        self, log: ErrorLog, indices: Optional[np.ndarray] = None
    ) -> List[OnlineStep]:
        """Absorb one event batch (this node's slice of ``log``) at a time."""
        if indices is None:
            indices = np.flatnonzero(log.node == self.node)
        out: List[OnlineStep] = []
        time, kind, count = log.time, log.kind, log.ce_count
        dimm, rank, bank = log.dimm, log.rank, log.bank
        row, col = log.row, log.col
        for idx in np.asarray(indices):
            out.extend(
                self.absorb_event(
                    float(time[idx]),
                    int(kind[idx]),
                    ce_count=int(count[idx]),
                    dimm=int(dimm[idx]),
                    rank=int(rank[idx]),
                    bank=int(bank[idx]),
                    row=int(row[idx]),
                    col=int(col[idx]),
                )
            )
        return out

    def advance_to(self, stream_time: float) -> List[OnlineStep]:
        """Finalise the open group once the stream clock has passed it by.

        ``stream_time`` must not exceed the time of the next event this node
        will absorb (the global stream clock satisfies this: events arrive
        across nodes in non-decreasing time order).
        """
        if self._group and (
            float(stream_time) - self._group_start >= self.merge_window_seconds
        ):
            return [self._finalize()]
        return []

    def flush(self) -> List[OnlineStep]:
        """Force-close the open group (end of stream)."""
        if self._group:
            return [self._finalize()]
        return []

    def _finalize(self) -> OnlineStep:
        group = self._group
        ces_in_step = 0.0
        for t_ev, kind, count, dimm, rank, bank, row, col in group:
            if kind == int(EventKind.CE):
                count_f = float(count)
                ces_in_step += count_f
                self._ces_total += count_f
                self._dimms.add(dimm)
                if rank >= 0:
                    self._ranks.add((dimm, rank))
                if bank >= 0:
                    self._banks.add((dimm, rank, bank))
                if row >= 0:
                    self._rows.add((dimm, rank, bank, row))
                if col >= 0:
                    self._cols.add((dimm, rank, bank, col))
            elif kind == int(EventKind.UE_WARNING):
                self._warnings_total += 1.0
            elif kind == int(EventKind.BOOT):
                self._boots_total += 1.0
                self._last_boot_time = t_ev

        t = group[-1][0]
        is_ue = self._group_has_ue

        if self._last_boot_time is None:
            time_since_boot = t - float(self._track_start)
        else:
            time_since_boot = t - self._last_boot_time

        vec = np.zeros(N_FEATURES)
        vec[FEATURE_INDEX["ces_since_last_event"]] = ces_in_step
        vec[FEATURE_INDEX["ces_total"]] = self._ces_total
        vec[FEATURE_INDEX["ranks_with_ce"]] = len(self._ranks)
        vec[FEATURE_INDEX["banks_with_ce"]] = len(self._banks)
        vec[FEATURE_INDEX["rows_with_ce"]] = len(self._rows)
        vec[FEATURE_INDEX["cols_with_ce"]] = len(self._cols)
        vec[FEATURE_INDEX["dimms_with_ce"]] = len(self._dimms)
        vec[FEATURE_INDEX["ue_warnings_total"]] = self._warnings_total
        vec[FEATURE_INDEX["time_since_boot"]] = max(time_since_boot, 0.0)
        vec[FEATURE_INDEX["boots_total"]] = self._boots_total
        hist_times = self._hist_times.view()
        hist_ces = self._hist_ces.view()
        hist_boots = self._hist_boots.view()
        vec[FEATURE_INDEX["ces_total_var_1min"]] = feature_variation(
            hist_times, hist_ces, t, self._ces_total, MINUTE
        )
        vec[FEATURE_INDEX["ces_total_var_1hour"]] = feature_variation(
            hist_times, hist_ces, t, self._ces_total, HOUR
        )
        vec[FEATURE_INDEX["boots_var_1min"]] = feature_variation(
            hist_times, hist_boots, t, self._boots_total, MINUTE
        )
        vec[FEATURE_INDEX["boots_var_1hour"]] = feature_variation(
            hist_times, hist_boots, t, self._boots_total, HOUR
        )

        self._hist_times.append(t)
        self._hist_ces.append(self._ces_total)
        self._hist_boots.append(self._boots_total)

        self._group = []
        self._group_has_ue = False
        self._n_steps += 1
        return OnlineStep(node=self.node, time=t, features=vec, is_ue=is_ue)


def build_feature_tracks(
    log: ErrorLog, merge_window_seconds: float = MINUTE
) -> Dict[int, NodeFeatureTrack]:
    """Compute feature tracks for every node present in ``log``."""
    return {
        node: extract_node_features(log, node, indices, merge_window_seconds)
        for node, indices in log.node_slices().items()
    }


class StateNormalizer:
    """Deterministic scaling of the state vector fed to the Q-network.

    Counts, times and costs span several orders of magnitude, so they are
    compressed with ``log1p``; the Equation 2 variation ratios are already
    dimensionless and are only clipped.  The transform is fixed (not fitted)
    so there is no risk of leaking test-set statistics into training.
    """

    #: Features passed through untransformed (only clipped).
    RATIO_FEATURES = (
        "ces_total_var_1min",
        "ces_total_var_1hour",
        "boots_var_1min",
        "boots_var_1hour",
    )

    def __init__(self, ratio_clip: float = 50.0) -> None:
        if ratio_clip <= 0:
            raise ValueError("ratio_clip must be > 0")
        self.ratio_clip = float(ratio_clip)
        self._log_mask = np.ones(N_FEATURES + 1, dtype=bool)
        for name in self.RATIO_FEATURES:
            self._log_mask[FEATURE_INDEX[name]] = False

    @property
    def state_dim(self) -> int:
        """Dimensionality of the normalised state (features + UE cost)."""
        return N_FEATURES + 1

    def state_vector(self, features: np.ndarray, ue_cost: float) -> np.ndarray:
        """Build and normalise the full state vector (features ‖ UE cost)."""
        features = np.asarray(features, dtype=float)
        if features.shape[-1] != N_FEATURES:
            raise ValueError(
                f"expected {N_FEATURES} telemetry features, got {features.shape[-1]}"
            )
        state = np.concatenate([features, [float(ue_cost)]])
        return self.transform(state)

    def transform(self, state: np.ndarray) -> np.ndarray:
        """Normalise a raw state vector (or batch of them)."""
        state = np.asarray(state, dtype=float)
        out = np.array(state, dtype=float, copy=True)
        log_part = out[..., self._log_mask]
        out[..., self._log_mask] = np.log1p(np.maximum(log_part, 0.0))
        ratio_part = out[..., ~self._log_mask]
        out[..., ~self._log_mask] = np.clip(ratio_part, 0.0, self.ratio_clip)
        return out
