"""NumPy implementation of the dueling Q-network and its optimiser.

The paper approximates the Q-function with a fully connected network of four
hidden layers (256, 256, 128 and 64 neurons, Section 3.3.2) and a dueling
head that splits the estimate into a state-value and per-action advantages
(Wang et al., 2016).  No deep-learning framework is available in this
offline environment, so forward and backward passes are written directly
with NumPy; the network is small enough that this is fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


def huber_loss(errors: np.ndarray, delta: float = 1.0) -> np.ndarray:
    """Element-wise Huber loss of the TD errors."""
    errors = np.asarray(errors, dtype=float)
    abs_err = np.abs(errors)
    quadratic = np.minimum(abs_err, delta)
    linear = abs_err - quadratic
    return 0.5 * quadratic**2 + delta * linear


def huber_grad(errors: np.ndarray, delta: float = 1.0) -> np.ndarray:
    """Derivative of the Huber loss with respect to the errors."""
    errors = np.asarray(errors, dtype=float)
    return np.clip(errors, -delta, delta)


@dataclass
class _LayerCache:
    """Forward-pass intermediates needed by back-propagation."""

    inputs: np.ndarray
    pre_activations: List[np.ndarray]
    activations: List[np.ndarray]


class AdamOptimizer:
    """Adam optimiser over a flat list of parameter arrays."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        check_positive("learning_rate", learning_rate)
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Optional[List[np.ndarray]] = None
        self._v: Optional[List[np.ndarray]] = None
        self._t = 0

    def update(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """Apply one Adam step in place."""
        if len(params) != len(grads):
            raise ValueError("params and grads must have the same length")
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        lr_t = self.learning_rate * (
            np.sqrt(1 - self.beta2**self._t) / (1 - self.beta1**self._t)
        )
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            p -= lr_t * m / (np.sqrt(v) + self.epsilon)


class DuelingQNetwork:
    """Fully connected Q-network with an optional dueling head.

    Parameters
    ----------
    input_dim:
        Dimensionality of the state vector.
    hidden_sizes:
        Sizes of the hidden layers (paper: 256, 256, 128, 64).
    n_actions:
        Number of discrete actions (2: mitigate / do nothing).
    dueling:
        When True, the output is ``Q(s, a) = V(s) + A(s, a) − mean_a A(s, a)``;
        when False, the advantage head alone provides the Q-values
        (a vanilla deep Q-network, used for the ablation study).
    seed:
        Seed for He-initialised weights.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_sizes: Sequence[int] = (256, 256, 128, 64),
        n_actions: int = 2,
        dueling: bool = True,
        seed=0,
    ) -> None:
        check_positive("input_dim", input_dim)
        check_positive("n_actions", n_actions)
        if not hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        self.input_dim = int(input_dim)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.n_actions = int(n_actions)
        self.dueling = bool(dueling)

        rng = as_generator(seed, "qnetwork")
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        previous = self.input_dim
        for size in self.hidden_sizes:
            self.weights.append(self._he_init(rng, previous, size))
            self.biases.append(np.zeros(size))
            previous = size
        last_hidden = previous
        self.value_w = self._he_init(rng, last_hidden, 1)
        self.value_b = np.zeros(1)
        self.advantage_w = self._he_init(rng, last_hidden, self.n_actions)
        self.advantage_b = np.zeros(self.n_actions)
        self._cache: Optional[_LayerCache] = None

    @staticmethod
    def _he_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
        scale = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, scale, size=(fan_in, fan_out))

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[np.ndarray]:
        """All trainable arrays, in a stable order."""
        params = []
        for w, b in zip(self.weights, self.biases):
            params.extend([w, b])
        params.extend([self.value_w, self.value_b, self.advantage_w, self.advantage_b])
        return params

    def copy_from(self, other: "DuelingQNetwork") -> None:
        """Hard-copy another network's parameters (target-network sync)."""
        for mine, theirs in zip(self.parameters(), other.parameters()):
            if mine.shape != theirs.shape:
                raise ValueError("cannot copy parameters between different shapes")
            mine[...] = theirs

    def clone(self) -> "DuelingQNetwork":
        """Structural copy with identical parameters."""
        copy = DuelingQNetwork(
            self.input_dim, self.hidden_sizes, self.n_actions, self.dueling
        )
        copy.copy_from(self)
        return copy

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Serialisable mapping of parameter names to arrays (copies)."""
        out: Dict[str, np.ndarray] = {}
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            out[f"hidden_{i}_w"] = w.copy()
            out[f"hidden_{i}_b"] = b.copy()
        out["value_w"] = self.value_w.copy()
        out["value_b"] = self.value_b.copy()
        out["advantage_w"] = self.advantage_w.copy()
        out["advantage_b"] = self.advantage_b.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`state_dict`."""
        for i in range(len(self.weights)):
            self.weights[i][...] = state[f"hidden_{i}_w"]
            self.biases[i][...] = state[f"hidden_{i}_b"]
        self.value_w[...] = state["value_w"]
        self.value_b[...] = state["value_b"]
        self.advantage_w[...] = state["advantage_w"]
        self.advantage_b[...] = state["advantage_b"]

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, states: np.ndarray, cache: bool = False) -> np.ndarray:
        """Q-values for a batch of states, shape ``(batch, n_actions)``."""
        x = np.atleast_2d(np.asarray(states, dtype=float))
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"expected states of dimension {self.input_dim}, got {x.shape[1]}"
            )
        h = x
        pre_activations: List[np.ndarray] = []
        activations: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            z = h @ w + b
            h = np.maximum(z, 0.0)
            pre_activations.append(z)
            activations.append(h)
        advantage = h @ self.advantage_w + self.advantage_b
        if self.dueling:
            value = h @ self.value_w + self.value_b
            q = value + advantage - advantage.mean(axis=1, keepdims=True)
        else:
            q = advantage
        if cache:
            self._cache = _LayerCache(
                inputs=x, pre_activations=pre_activations, activations=activations
            )
        return q

    def backward(self, d_q: np.ndarray) -> List[np.ndarray]:
        """Gradients of the loss w.r.t. every parameter.

        ``d_q`` is the gradient of the scalar loss with respect to the
        Q-value outputs of the last :meth:`forward` call with ``cache=True``.
        The returned list matches the order of :meth:`parameters`.
        """
        if self._cache is None:
            raise RuntimeError("forward(..., cache=True) must be called first")
        cache = self._cache
        d_q = np.atleast_2d(np.asarray(d_q, dtype=float))
        h_last = cache.activations[-1]

        if self.dueling:
            d_value = d_q.sum(axis=1, keepdims=True)
            d_advantage = d_q - d_q.mean(axis=1, keepdims=True)
        else:
            d_value = np.zeros((d_q.shape[0], 1))
            d_advantage = d_q

        grad_value_w = h_last.T @ d_value
        grad_value_b = d_value.sum(axis=0)
        grad_advantage_w = h_last.T @ d_advantage
        grad_advantage_b = d_advantage.sum(axis=0)

        d_h = d_advantage @ self.advantage_w.T
        if self.dueling:
            d_h = d_h + d_value @ self.value_w.T

        grads_hidden: List[Tuple[np.ndarray, np.ndarray]] = []
        for layer in range(len(self.weights) - 1, -1, -1):
            z = cache.pre_activations[layer]
            d_z = d_h * (z > 0.0)
            h_prev = (
                cache.activations[layer - 1] if layer > 0 else cache.inputs
            )
            grads_hidden.append((h_prev.T @ d_z, d_z.sum(axis=0)))
            d_h = d_z @ self.weights[layer].T

        grads: List[np.ndarray] = []
        for grad_w, grad_b in reversed(grads_hidden):
            grads.extend([grad_w, grad_b])
        grads.extend(
            [grad_value_w, grad_value_b, grad_advantage_w, grad_advantage_b]
        )
        return grads
