#!/usr/bin/env python
"""Quickstart: generate a small cluster's telemetry, train the RL mitigation
agent, and compare its cost–benefit against the static baselines.

This walks through the whole public API in one file:

1. describe the cluster and generate a synthetic error log (the substitute
   for the MareNostrum 3 production logs);
2. preprocess it (DIMM-retirement bias removal + UE burst reduction);
3. generate a Slurm-like job log and build the node-count-weighted sampler;
4. extract the Table 1 feature tracks and train a dueling double deep
   Q-network on the first 60 % of the period;
5. evaluate the trained policy, Never-mitigate, Always-mitigate and the
   Oracle on the remaining 40 % and print the lost node–hours of each.

Run time: well under a minute on a laptop.
"""

from __future__ import annotations

from repro.baselines import AlwaysMitigatePolicy, NeverMitigatePolicy, OraclePolicy
from repro.config import ScenarioConfig
from repro.core import (
    DDDQNAgent,
    DQNConfig,
    MitigationEnv,
    RLPolicy,
    StateNormalizer,
    build_feature_tracks,
    train_agent,
)
from repro.evaluation import build_traces, evaluate_policies, format_cost_table
from repro.telemetry import TelemetryGenerator, prepare_log
from repro.workload import JobSequenceSampler, WorkloadGenerator


def main() -> None:
    # 1. A small, fully synthetic scenario (48 nodes, 4 months of production).
    scenario = ScenarioConfig.small(seed=7)

    print("Generating telemetry ...")
    error_log = TelemetryGenerator(
        scenario.topology,
        scenario.fault_model,
        scenario.duration_seconds,
        seed=scenario.seed,
    ).generate()

    # 2. Preprocessing: remove retired DIMMs, keep only the first UE per burst.
    reduced_log, report = prepare_log(error_log)
    print(
        f"  raw UEs: {report.raw_ues}, first-of-burst UEs: {report.reduced_ues}, "
        f"corrected errors: {reduced_log.total_corrected_errors():,}"
    )

    # 3. Workload: Slurm-like job log and per-node job sequences.
    job_log = WorkloadGenerator(
        scenario.workload,
        n_cluster_nodes=scenario.topology.n_nodes,
        duration_seconds=scenario.duration_seconds,
        seed=scenario.seed,
    ).generate()
    sampler = JobSequenceSampler(job_log, seed=1)
    print(f"  jobs: {len(job_log):,}, delivered node-hours: {job_log.total_node_hours():,.0f}")

    # 4. Feature extraction and RL training on the first 60 % of the period.
    tracks = build_feature_tracks(reduced_log)
    t_split = 0.6 * scenario.duration_seconds
    train_tracks = {
        node: track.slice_time(0.0, t_split) for node, track in tracks.items()
    }
    train_tracks = {
        node: track
        for node, track in train_tracks.items()
        if len(track) and track.n_decision_points > 0
    }

    normalizer = StateNormalizer()
    mitigation_cost = scenario.evaluation.mitigation_cost_node_hours
    env = MitigationEnv(
        train_tracks,
        sampler,
        mitigation_cost=mitigation_cost,
        restartable=scenario.evaluation.restartable,
        t_start=0.0,
        t_end=t_split,
        normalizer=normalizer,
        seed=11,
    )
    agent = DDDQNAgent(
        env.state_dim,
        DQNConfig(hidden_sizes=(64, 48), epsilon_decay_steps=4000, seed=3),
    )
    print("Training the RL agent (300 episodes) ...")
    result = train_agent(env, agent, n_episodes=300)
    print(
        f"  {result.env_steps} environment steps, mean episode reward "
        f"{result.mean_reward:.1f} node-hours, wall-clock {result.wallclock_seconds:.1f}s"
    )

    # 5. Evaluation on the held-out 40 % of the period.
    test_traces = build_traces(tracks, sampler, t_split, scenario.duration_seconds, seed=5)
    policies = [
        NeverMitigatePolicy(),
        AlwaysMitigatePolicy(),
        RLPolicy(agent, normalizer, training_cost_node_hours=result.training_cost_node_hours),
        OraclePolicy(),
    ]
    results = evaluate_policies(test_traces, policies, mitigation_cost)
    print()
    print(
        format_cost_table(
            {name: evaluation.costs for name, evaluation in results.items()},
            title="Lost node-hours over the held-out period",
        )
    )


if __name__ == "__main__":
    main()
