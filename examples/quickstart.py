#!/usr/bin/env python
"""Quickstart: the stable top-level API in three moves.

1. ``Study.from_scenario(...)`` + ``.run(config)`` — the whole nested
   cross-validation evaluation of a synthetic cluster (telemetry generation,
   preprocessing, workload sampling, RF/RL training, cost-benefit replay) in
   one call, with every approach of the paper's Section 4.2 comparison.
2. ``.report()`` — the Figure 3-style lost-node-hours table (and the
   Table 2 classical-ML metrics via ``report("metrics")``).
3. ``ArtifactStore`` + ``.resume()`` — persist the result to disk and get it
   back in a later session without recomputing anything.

The same flow scales from this laptop-sized scenario to
``ScenarioConfig.paper()`` and to multi-point sweeps
(``Study.from_sweep`` — see ``manufacturer_fleet_study.py``).  For the
step-by-step internals the facade drives (generators, feature tracks, the
DQN training loop), see ``online_daemon_simulation.py`` and
``checkpoint_vs_migration.py``.

Run time: well under a minute on a laptop.

Equivalent CLI::

    python -m repro run --preset small --fast --store runs/quickstart
"""

from __future__ import annotations

from repro import ArtifactStore, ExperimentConfig, ScenarioConfig, Study


def main(store_dir: str = "runs/quickstart") -> None:
    # 1. One call: a small, fully synthetic scenario (48 nodes, 4 months of
    #    production), evaluated end to end with a reduced training budget.
    #    The store directory persists across invocations: delete it to
    #    recompute from scratch, keep it to make re-runs instant.
    scenario = ScenarioConfig.small(seed=7)
    config = ExperimentConfig.fast()

    study = Study.from_scenario(scenario, store=ArtifactStore(store_dir))

    print("Running the full nested-CV evaluation (one call) ...")
    result = study.run(config)
    print(
        f"  {len(result.approach_names)} approaches x {len(result.splits)} splits, "
        f"{result.n_test_events:,} test events, "
        f"{result.wallclock_seconds:.1f}s wall-clock"
    )

    # 2. The paper's tables, rendered from the result.
    print()
    print(study.report())
    print()
    print(study.report(which="metrics"))

    # 3. Everything is already on disk: a new Study over the same scenario
    #    resumes from the store instead of recomputing (in a real workflow
    #    this happens in a different process, days later).
    resumed = Study.from_scenario(scenario, store=ArtifactStore(store_dir))
    reloaded = resumed.resume(config)
    assert reloaded.to_json() == result.to_json()
    print()
    print(f"Resumed byte-identical result from {store_dir} without recomputing.")
    print(
        "Savings vs Never-mitigate: "
        + ", ".join(
            f"{name}: {100 * reloaded.saving_vs_never(name):+.0f}%"
            for name in ("SC20-RF", "RL", "Oracle")
            if name in reloaded.approaches
        )
    )


if __name__ == "__main__":
    main()
