#!/usr/bin/env python
"""Checkpointing versus live-migration deployments.

The method's only user-supplied parameters are the mitigation cost and whether
the job can restart from the mitigation point (Section 3.2).  This example
contrasts the two deployment modes the paper discusses:

* **checkpointing** — the mitigation writes a checkpoint, so a later UE only
  loses the work since that checkpoint (restartable = True), at 2, 5 and 10
  node-minutes per checkpoint;
* **live migration / node cloning without restart semantics** — the mitigation
  moves the job away from the suspect node, but if the UE still strikes the
  original job context nothing was saved (restartable = False): only UEs that
  were *correctly anticipated and moved* are avoided.

It trains one agent per deployment mode and reports the resulting lost
node-hours, illustrating how the same code covers both.
"""

from __future__ import annotations

from repro.config import ScenarioConfig
from repro.evaluation import ExperimentConfig, format_series, run_experiment


def main() -> None:
    config = ExperimentConfig.fast()
    rows = {}
    labels = []

    for mitigation_cost in (2.0, 5.0, 10.0):
        for restartable in (True, False):
            mode = "checkpoint" if restartable else "no-restart"
            label = f"{mitigation_cost:g} node-min / {mode}"
            labels.append(label)
            print(f"Running experiment: {label} ...")
            scenario = (
                ScenarioConfig.small(seed=7)
                .with_mitigation_cost(mitigation_cost)
                .with_restartable(restartable)
            )
            result = run_experiment(scenario, config)
            costs = result.total_costs()
            for name in ("Never-mitigate", "Always-mitigate", "SC20-RF", "RL", "Oracle"):
                rows.setdefault(name, []).append(costs[name].total)

    print()
    print(
        format_series(
            rows,
            labels,
            title="Total lost node-hours by mitigation cost and restart semantics",
        )
    )
    print(
        "\nWith restartable mitigations (checkpointing) every anticipated UE only "
        "costs the time since the last checkpoint; without restart semantics the "
        "benefit comes purely from moving work off nodes that were about to fail, "
        "so all approaches save less and the gap between them narrows."
    )


if __name__ == "__main__":
    main()
