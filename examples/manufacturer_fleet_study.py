#!/usr/bin/env python
"""Per-manufacturer fleet study (the scenario behind Figure 5).

A site operator rarely buys DIMMs from a single vendor.  This example
partitions the synthetic cluster by DRAM manufacturer, characterises each
sub-fleet (error rates, burstiness, silent-UE fraction) and then runs the
full nested-cross-validation experiment separately per manufacturer to answer
the operational question: *is one model for the whole machine enough, or
should each vendor's DIMMs get their own mitigation policy?*

The per-manufacturer experiments run as one
:meth:`Study.from_sweep <repro.study.Study.from_sweep>` over the
manufacturer axis: one task graph, shared raw telemetry, four scenario
points — and, through the study's :class:`~repro.store.ArtifactStore`, a
restartable artifact: re-running this script loads every completed point
from ``runs/fleet-study`` and only computes what is missing.

Run time: a few minutes (four experiments with a reduced RL budget) on the
first run; seconds on a re-run.

Equivalent CLI::

    python -m repro sweep --manufacturer all,A,B,C --fast --store runs/fleet-study
"""

from __future__ import annotations

from repro import ArtifactStore, ExperimentConfig, ScenarioConfig, Study
from repro.analysis import manufacturer_breakdown, summarize_log, ue_burst_statistics
from repro.evaluation import format_cost_table
from repro.telemetry import MANUFACTURER_NAMES, TelemetryGenerator, prepare_log
from repro.utils.rng import RngFactory


def main() -> None:
    scenario = ScenarioConfig.small(seed=7)
    config = ExperimentConfig.fast()

    # Characterise the fleet first: who produces the errors?  The seed
    # derivation matches the pipeline's prepare_data stage, so these
    # statistics describe exactly the telemetry the sweep below evaluates.
    # (A cold run therefore generates this log twice — once here, once
    # inside the pipeline; pass error_log= to the low-level run_sweep to
    # share one generation at the price of bypassing the store.)
    error_log = TelemetryGenerator(
        scenario.topology,
        scenario.fault_model,
        scenario.duration_seconds,
        seed=RngFactory(scenario.seed).child("telemetry"),
    ).generate()
    reduced, _ = prepare_log(error_log)
    summary = summarize_log(reduced)
    print("Fleet-wide telemetry summary")
    print(f"  corrected errors : {summary.n_corrected_errors:,}")
    print(f"  uncorrected errors (first of burst): {summary.n_uncorrected_errors}")
    print(f"  silent-UE fraction: {summary.silent_ue_fraction:.2f}")
    print(f"  UE burst factor   : {ue_burst_statistics(error_log).reduction_factor:.1f}x")
    print()
    print("Per-manufacturer breakdown (CEs / UEs / DIMMs with events):")
    for name, stats in manufacturer_breakdown(reduced).items():
        print(
            f"  Manufacturer {name}: CEs={stats['corrected_errors']:.0f}, "
            f"UEs={stats['uncorrected_errors']:.0f}, DIMMs={stats['dimms_with_events']:.0f}"
        )

    # Whole-machine experiment versus one experiment per manufacturer — one
    # Study over the manufacturer axis (None = the whole fleet).  All four
    # points run through a single executor task graph, share the raw
    # telemetry through the study's prepared-data cache, and persist into
    # the store: each point's result is identical to an independent
    # run_experiment call, and a re-run of this script loads them from disk.
    study = Study.from_sweep(
        scenario,
        manufacturers=(None,) + tuple(range(len(MANUFACTURER_NAMES))),
        store=ArtifactStore("runs/fleet-study"),
    )
    print(f"\nRunning the {study.spec.n_points}-point manufacturer sweep ...")
    sweep = study.run(config)
    print(
        f"(loaded {len(study.points_loaded)} point(s) from the store, "
        f"computed {len(study.points_computed)}, "
        f"{sweep.wallclock_seconds:.1f}s)\n"
    )

    all_result = sweep["mfr=all"]
    print(format_cost_table(all_result.total_costs(), title="MN/All"))

    per_manufacturer_totals = {}
    for index, letter in enumerate(MANUFACTURER_NAMES):
        result = sweep[f"mfr={letter}"]
        per_manufacturer_totals[letter] = result.total_costs()
        print()
        print(format_cost_table(result.total_costs(), title=f"MN/{letter}"))

    # MN/ABC: the sum of the three separately trained sub-fleets.
    approaches = list(all_result.total_costs().keys())
    abc = {
        name: sum(per_manufacturer_totals[m][name] for m in MANUFACTURER_NAMES[1:])
        + per_manufacturer_totals[MANUFACTURER_NAMES[0]][name]
        for name in approaches
        if all(name in per_manufacturer_totals[m] for m in MANUFACTURER_NAMES)
    }
    print()
    print(format_cost_table(abc, title="MN/ABC (sum of separately trained models)"))
    print(
        "\nInterpretation: if MN/ABC is noticeably worse than MN/All, a single "
        "fleet-wide model generalises across vendors and is the better deployment."
    )


if __name__ == "__main__":
    main()
