#!/usr/bin/env python
"""Simulated online deployment of the mitigation daemon (``repro.serve``).

The paper's evaluation replays historical logs, but the intended deployment is
an online daemon (Figure 1): the monitoring infrastructure feeds it mcelog /
firmware events, the workload manager reports the running job, and the daemon
decides — within the minute — whether to trigger a mitigation.

This example wires exactly that loop, entirely from the public API:

1. a trained agent is loaded (trained on a first "historical" period);
2. new telemetry is spooled to disk in mcelog text form and *tailed* by the
   service, exactly as a production daemon would consume the mcelog spool;
3. :class:`repro.serve.DecisionService` maintains the per-node feature state
   incrementally, micro-batches the nodes with pending decisions (one DQN
   forward serves a whole tick), and records every decision it would have
   handed to the workload manager;
4. at the end it reports what it spent, what the UEs cost, and how the
   micro-batcher performed (batch sizes, tick latency, decisions/s).

The same loop is available from the command line::

    python -m repro serve --policy rl --source preset:small --replay-at-speed 100000

Run time: well under a minute.
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.config import ScenarioConfig
from repro.core import (
    DDDQNAgent,
    DQNConfig,
    MitigationEnv,
    RLPolicy,
    StateNormalizer,
    build_feature_tracks,
    train_agent,
)
from repro.serve import DecisionService, SampledJobProvider, ServeConfig, TailSource
from repro.telemetry import TelemetryGenerator, prepare_log
from repro.telemetry.mcelog import format_full_log
from repro.workload import JobSequenceSampler, WorkloadGenerator


def main() -> None:
    scenario = ScenarioConfig.small(seed=7)
    mitigation_cost = scenario.evaluation.mitigation_cost_node_hours

    # ------------------------------------------------------------------ #
    # Offline phase: train the agent on the first 70 % of history.
    # ------------------------------------------------------------------ #
    error_log = TelemetryGenerator(
        scenario.topology, scenario.fault_model, scenario.duration_seconds,
        seed=scenario.seed,
    ).generate()
    reduced, _ = prepare_log(error_log)
    job_log = WorkloadGenerator(
        scenario.workload,
        n_cluster_nodes=scenario.topology.n_nodes,
        duration_seconds=scenario.duration_seconds,
        seed=scenario.seed,
    ).generate()
    sampler = JobSequenceSampler(job_log, seed=2)

    t_split = 0.7 * scenario.duration_seconds
    tracks = build_feature_tracks(reduced)
    train_tracks = {
        node: track.slice_time(0.0, t_split) for node, track in tracks.items()
    }
    train_tracks = {
        node: track for node, track in train_tracks.items()
        if len(track) and track.n_decision_points > 0
    }
    normalizer = StateNormalizer()
    env = MitigationEnv(
        train_tracks, sampler, mitigation_cost=mitigation_cost,
        t_start=0.0, t_end=t_split, normalizer=normalizer, seed=4,
    )
    agent = DDDQNAgent(env.state_dim, DQNConfig(hidden_sizes=(48, 32), seed=1))
    print("Training the agent on the historical period ...")
    train_agent(env, agent, n_episodes=200)
    policy = RLPolicy(agent, normalizer)

    # ------------------------------------------------------------------ #
    # Online phase: tail the remaining telemetry as an mcelog spool.
    # ------------------------------------------------------------------ #
    live_log = reduced.filter_time(t_split, scenario.duration_seconds)
    print(
        f"Streaming {len(live_log)} live events "
        f"({live_log.count_ues()} of them uncorrected errors) through the daemon ..."
    )

    service = DecisionService(
        policy,
        # The workload manager's view of what each node is running: here the
        # job sequences are sampled from the historical job log.
        SampledJobProvider(sampler, t_split, scenario.duration_seconds, seed=2),
        ServeConfig(
            mitigation_cost_node_hours=mitigation_cost,
            restartable=scenario.evaluation.restartable,
            merge_window_seconds=scenario.evaluation.merge_window_seconds,
        ),
    )
    with tempfile.NamedTemporaryFile("w", suffix=".log") as spool:
        spool.write(format_full_log(live_log) + "\n")
        spool.flush()
        report = asyncio.run(service.run(TailSource(spool.name)))

    total = report.mitigation_cost_node_hours + report.ue_cost_node_hours
    print()
    print(f"Mitigations requested            : {report.n_mitigations}")
    print(f"Mitigation overhead (node-hours) : {report.mitigation_cost_node_hours:,.1f}")
    print(f"UE cost paid (node-hours)        : {report.ue_cost_node_hours:,.1f}")
    print(f"Total lost node-hours            : {total:,.1f}")
    print()
    print(report.summary())
    print(
        "\nIn production the service above runs inside the monitoring daemon: "
        "the features come from the tailed mcelog/firmware spool, the "
        "potential UE cost from the workload manager, and each positive "
        "decision in the report's log triggers the site's checkpoint / "
        "migration machinery.  The served decisions are bit-identical to an "
        "offline evaluate_policy replay of the same stream."
    )


if __name__ == "__main__":
    main()
