#!/usr/bin/env python
"""Simulated online deployment of the mitigation daemon.

The paper's evaluation replays historical logs, but the intended deployment is
an online daemon (Figure 1): the monitoring infrastructure feeds it mcelog /
firmware events, the workload manager reports the running job, and the daemon
decides — within the minute — whether to trigger a mitigation.

This example wires exactly that loop, entirely from the public API:

1. a trained agent is loaded (trained on a first "historical" period);
2. new telemetry is streamed event by event, in mcelog text form, exactly as
   a production daemon would consume it;
3. the daemon maintains the per-node feature state incrementally, asks the
   policy for a decision at every merged event, and records the mitigations
   it would have requested from the workload manager;
4. at the end it reports what it spent and what the UEs cost.

Run time: well under a minute.
"""

from __future__ import annotations

from repro.config import ScenarioConfig
from repro.core import (
    DDDQNAgent,
    DQNConfig,
    MitigationEnv,
    RLPolicy,
    StateNormalizer,
    build_feature_tracks,
    extract_node_features,
    train_agent,
)
from repro.core.policies import DecisionContext
from repro.telemetry import TelemetryGenerator, parse_mcelog, prepare_log
from repro.telemetry.mcelog import format_full_log
from repro.utils.timeutils import HOUR
from repro.workload import JobSequenceSampler, WorkloadGenerator


def main() -> None:
    scenario = ScenarioConfig.small(seed=7)
    mitigation_cost = scenario.evaluation.mitigation_cost_node_hours

    # ------------------------------------------------------------------ #
    # Offline phase: train the agent on the first 70 % of history.
    # ------------------------------------------------------------------ #
    error_log = TelemetryGenerator(
        scenario.topology, scenario.fault_model, scenario.duration_seconds,
        seed=scenario.seed,
    ).generate()
    reduced, _ = prepare_log(error_log)
    job_log = WorkloadGenerator(
        scenario.workload,
        n_cluster_nodes=scenario.topology.n_nodes,
        duration_seconds=scenario.duration_seconds,
        seed=scenario.seed,
    ).generate()
    sampler = JobSequenceSampler(job_log, seed=2)

    t_split = 0.7 * scenario.duration_seconds
    tracks = build_feature_tracks(reduced)
    train_tracks = {
        node: track.slice_time(0.0, t_split) for node, track in tracks.items()
    }
    train_tracks = {
        node: track for node, track in train_tracks.items()
        if len(track) and track.n_decision_points > 0
    }
    normalizer = StateNormalizer()
    env = MitigationEnv(
        train_tracks, sampler, mitigation_cost=mitigation_cost,
        t_start=0.0, t_end=t_split, normalizer=normalizer, seed=4,
    )
    agent = DDDQNAgent(env.state_dim, DQNConfig(hidden_sizes=(48, 32), seed=1))
    print("Training the agent on the historical period ...")
    train_agent(env, agent, n_episodes=200)
    policy = RLPolicy(agent, normalizer)

    # ------------------------------------------------------------------ #
    # Online phase: stream the remaining telemetry as mcelog text.
    # ------------------------------------------------------------------ #
    live_log_text = format_full_log(reduced.filter_time(t_split, scenario.duration_seconds))
    live_log = parse_mcelog(live_log_text)
    print(
        f"Streaming {len(live_log)} live events "
        f"({live_log.count_ues()} of them uncorrected errors) through the daemon ..."
    )

    mitigations = 0
    ue_cost_paid = 0.0
    for node, indices in live_log.node_slices().items():
        # The daemon keeps one feature extractor per node; here the helper
        # recomputes the per-node track once, then the decision loop walks it
        # exactly as the daemon would, minute by minute.
        track = extract_node_features(live_log, node, indices)
        timeline = sampler.sample_timeline(
            t_split, scenario.duration_seconds, rng=None
        )
        last_mitigation = None
        for i in range(len(track)):
            t = float(track.times[i])
            cost_now = timeline.potential_ue_cost(
                t, last_mitigation, scenario.evaluation.restartable
            )
            if track.is_ue[i]:
                ue_cost_paid += cost_now
                last_mitigation = None
                continue
            decision = policy.decide(
                DecisionContext(
                    time=t, node=node, features=track.features[i], ue_cost=cost_now,
                    event_index=i,
                )
            )
            if decision:
                mitigations += 1
                last_mitigation = t

    print()
    print(f"Mitigations requested            : {mitigations}")
    print(f"Mitigation overhead (node-hours) : {mitigations * mitigation_cost:,.1f}")
    print(f"UE cost paid (node-hours)        : {ue_cost_paid:,.1f}")
    print(f"Total lost node-hours            : {mitigations * mitigation_cost + ue_cost_paid:,.1f}")
    print(
        "\nIn production the decision loop above runs inside the monitoring "
        "daemon: the features come from mcelog/firmware events, the potential "
        "UE cost from the workload manager, and a positive decision triggers "
        "the site's checkpoint / migration machinery."
    )


if __name__ == "__main__":
    main()
