#!/usr/bin/env python
"""Distributed sweep: N workers, one shared store, bit-identical results.

The paper's evaluation grids (Figures 3/5/7) are embarrassingly parallel —
every sweep point is an independent experiment.  :mod:`repro.distributed`
scales :func:`run_sweep` across processes and machines with **no cluster
dependency**: workers share nothing but an :class:`ArtifactStore`
directory, and coordinate through atomic store leases (claim → heartbeat →
publish → release; a killed worker's lease expires and any peer reclaims
its point).

This example runs a three-seed sweep three ways in one process —

1. the plain single-process ``run_sweep`` baseline,
2. two *claim-mode* workers (dynamic work stealing), launched here as
   threads to keep the example self-contained; in production each would be
   a ``python -m repro sweep ... --store DIR --claim`` process on its own
   machine,
3. two *shard-mode* workers (``--shard 0/2`` / ``--shard 1/2`` — a static
   partition, no leases),

and verifies all three produce bit-identical scientific results
(``charge_training_time=False``; per-point wall-clock, a diagnostic of
whichever process ran the point, is excluded by ``results_equivalent``).

The same flow from the command line, one worker per machine on a shared
filesystem::

    machine-a$ python -m repro sweep --seeds 7,8,9 --fast \
                   --no-charge-training-time --store /shared/runs --claim
    machine-b$ python -m repro sweep --seeds 7,8,9 --fast \
                   --no-charge-training-time --store /shared/runs --claim
    anywhere$  python -m repro sweep --seeds 7,8,9 --fast \
                   --no-charge-training-time --store /shared/runs --status
"""

from __future__ import annotations

import tempfile
import threading

from repro.config import ScenarioConfig
from repro.distributed import (
    reduce_sweep,
    results_equivalent,
    run_sweep_worker,
    sweep_status,
)
from repro.evaluation import ExperimentConfig, SweepSpec, run_sweep
from repro.store import ArtifactStore

# Small enough for a laptop minute; deterministic so "bit-identical" is a
# meaningful claim (the default charges measured training wall-clock).
CONFIG = ExperimentConfig(
    rl_episodes=10,
    rl_hyperparam_trials=1,
    rl_hidden_sizes=(16, 8),
    rf_n_estimators=5,
    rf_max_depth=5,
    threshold_grid_size=5,
    charge_training_time=False,
)
SPEC = SweepSpec(base=ScenarioConfig.small(), seeds=(7, 8, 9))


def run_workers(store: ArtifactStore, mode: str) -> list:
    """Two concurrent workers against one store; returns their outcomes."""
    outcomes = [None, None]

    def work(i: int) -> None:
        kwargs = (
            {"claim": True, "worker_id": f"{mode}-w{i}", "lease_ttl": 30.0}
            if mode == "claim"
            else {"shard": (i, 2)}
        )
        outcomes[i] = run_sweep_worker(SPEC, CONFIG, store, **kwargs)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def main() -> None:
    print("single-process baseline ...")
    baseline = run_sweep(SPEC, CONFIG)

    for mode in ("claim", "shard"):
        with tempfile.TemporaryDirectory() as scratch:
            store = ArtifactStore(f"{scratch}/runs")
            print(f"\n{mode}-mode: two workers, one store ...")
            for outcome in run_workers(store, mode):
                print(f"  {outcome.summary()}")
            for status in sweep_status(SPEC, CONFIG, store):
                print(f"  {status.describe()}")
            result = reduce_sweep(SPEC, CONFIG, store)
            assert result is not None, "sweep incomplete"
            identical = results_equivalent(result, baseline)
            print(f"  bit-identical to single-process run_sweep: {identical}")
            assert identical

    print("\nreduced sweep table (identical for every execution mode):")
    print(baseline.table())


if __name__ == "__main__":
    main()
