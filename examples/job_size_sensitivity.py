#!/usr/bin/env python
"""Job-size sensitivity study (the scenario behind Figure 7).

HPC job sizes differ by orders of magnitude between systems: the paper argues
that the RL mitigation policy adapts automatically, so that deploying it on a
machine with 10× larger (or smaller) jobs keeps it ahead of the static
policies without retuning.  This example sweeps the scaling factor, reruns the
experiment for each value and prints the total and mitigation costs, i.e. the
data behind Figures 7a and 7b.

Run time: a few minutes (five reduced-budget experiments).
"""

from __future__ import annotations

from repro.config import ScenarioConfig
from repro.evaluation import ExperimentConfig, format_series, run_experiment
from repro.workload.scaling import PAPER_SCALING_FACTORS


def main() -> None:
    scenario = ScenarioConfig.small(seed=7)
    config = ExperimentConfig.fast()

    results = {}
    for factor in PAPER_SCALING_FACTORS:
        print(f"Running experiment with job sizes scaled by x{factor:g} ...")
        results[factor] = run_experiment(
            scenario, config.with_overrides(job_scaling_factor=factor)
        )

    labels = [f"x{factor:g}" for factor in PAPER_SCALING_FACTORS]
    approaches = results[1.0].approach_names

    total = {
        name: [results[f].total_costs()[name].total for f in PAPER_SCALING_FACTORS]
        for name in approaches
    }
    mitigation = {
        name: [results[f].total_costs()[name].mitigation_cost for f in PAPER_SCALING_FACTORS]
        for name in approaches
    }

    print()
    print(format_series(total, labels, title="Total cost (node-hours) vs job-size scaling (Fig. 7a)"))
    print()
    print(
        format_series(
            mitigation, labels,
            title="Mitigation cost (node-hours) vs job-size scaling (Fig. 7b)",
            value_format="{:>12,.1f}",
        )
    )

    never = total["Never-mitigate"]
    always = total["Always-mitigate"]
    crossover = [
        label for label, n, a in zip(labels, never, always) if a >= n
    ]
    print()
    if crossover:
        print(
            "Always-mitigate is no better than Never-mitigate at scaling factors: "
            + ", ".join(crossover)
            + " — a static policy must be re-tuned per system, the adaptive ones need not."
        )
    else:
        print(
            "Always-mitigate still beats Never-mitigate at every factor in this "
            "scaled-down scenario; on the paper's full-size logs the crossover "
            "appears below one third of the MareNostrum job sizes."
        )


if __name__ == "__main__":
    main()
