"""Legacy setup shim.

The execution environment ships an older setuptools without the ``wheel``
package, so PEP-517 editable installs fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``python setup.py develop``) work offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
