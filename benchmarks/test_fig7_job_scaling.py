"""Figure 7 — job-size sensitivity analysis (total cost, 7a, and mitigation
cost, 7b) for scaling factors of 0.1×, 0.3×, 1×, 3× and 10×, at a fixed
2 node–minute mitigation cost.

Paper result: the UE cost — and therefore the benefit of mitigation — grows
proportionally with the job size; Always-mitigate's fixed mitigation overhead
makes Never-mitigate the better static policy below roughly one third of the
MareNostrum job sizes; the prediction-based approaches beat both static
policies across the whole range, adapt their mitigation cost to the job size
(SC20-RF through its externally tuned threshold, Myopic-RF and RL
automatically), and the RL agent keeps the lowest mitigation cost of the
realistic approaches.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_sweep, sweep_experiment_config
from repro.evaluation.report import format_series
from repro.evaluation.sweep import SweepSpec
from repro.workload.scaling import PAPER_SCALING_FACTORS


@pytest.fixture(scope="module")
def scaling_results(scenario):
    """All five Figure 7 scaling points as one sweep: the raw telemetry and
    workload logs are generated once and only re-scaled per point."""
    spec = SweepSpec(base=scenario, job_scales=PAPER_SCALING_FACTORS)
    sweep = cached_sweep(spec, sweep_experiment_config())
    return {
        factor: sweep[f"scale=x{factor:g}"] for factor in PAPER_SCALING_FACTORS
    }


@pytest.mark.benchmark(group="fig7")
def test_fig7a_total_cost_vs_job_scaling(benchmark, scaling_results):
    results = benchmark.pedantic(lambda: scaling_results, rounds=1, iterations=1)

    labels = [f"x{factor:g}" for factor in PAPER_SCALING_FACTORS]
    approaches = results[1.0].approach_names
    series = {
        name: [results[factor].total_costs()[name].total for factor in PAPER_SCALING_FACTORS]
        for name in approaches
    }
    print()
    print(format_series(series, labels, title="Figure 7a — total cost vs job-size scaling"))

    never = series["Never-mitigate"]
    always = series["Always-mitigate"]
    sc20 = series["SC20-RF"]
    rl = series["RL"]
    oracle = series["Oracle"]

    # Never-mitigate's cost is proportional to the scaling factor.
    assert never[-1] == pytest.approx(never[2] * 10.0, rel=0.05)
    assert never[0] == pytest.approx(never[2] * 0.1, rel=0.05)
    # At large job sizes mitigation wins big; at the smallest size the fixed
    # overhead of Always-mitigate erodes (or reverses) its advantage, so the
    # ratio Always/Never grows as jobs shrink.
    assert always[-1] < 0.8 * never[-1]
    assert (always[0] / never[0]) > (always[-1] / never[-1])
    # Prediction-based approaches track the Oracle across the whole range
    # (the Oracle's total can only exceed theirs by its negligible
    # mitigation overhead).
    oracle_overhead = [
        results[factor].total_costs()["Oracle"].mitigation_cost
        for factor in PAPER_SCALING_FACTORS
    ]
    sc20_overhead = [
        results[factor].total_costs()["SC20-RF"].overhead_cost
        for factor in PAPER_SCALING_FACTORS
    ]
    for i in range(len(labels)):
        assert oracle[i] <= min(always[i], sc20[i], rl[i]) + oracle_overhead[i] + 1e-6
        assert sc20[i] <= never[i] + sc20_overhead[i] + 1e-6


@pytest.mark.benchmark(group="fig7")
def test_fig7b_mitigation_cost_vs_job_scaling(benchmark, scaling_results):
    results = benchmark.pedantic(lambda: scaling_results, rounds=1, iterations=1)

    labels = [f"x{factor:g}" for factor in PAPER_SCALING_FACTORS]
    approaches = results[1.0].approach_names
    series = {
        name: [
            results[factor].total_costs()[name].mitigation_cost
            for factor in PAPER_SCALING_FACTORS
        ]
        for name in approaches
    }
    print()
    print(
        format_series(
            series, labels,
            title="Figure 7b — mitigation cost vs job-size scaling",
            value_format="{:>12,.1f}",
        )
    )

    never = series["Never-mitigate"]
    always = series["Always-mitigate"]
    oracle = series["Oracle"]
    rl = series["RL"]
    sc20 = series["SC20-RF"]

    # Static policies have job-size-independent mitigation costs.
    assert all(v == 0.0 for v in never)
    assert max(always) - min(always) <= 0.05 * max(always) + 1e-6
    assert max(oracle) <= min(always) + 1e-6
    # The adaptive approaches never spend more on mitigations than
    # Always-mitigate, and the RL agent stays below the SC20 baseline's
    # overhead at the reference scale.
    for i in range(len(labels)):
        assert rl[i] <= always[i] + 1e-6
        assert sc20[i] <= always[i] + 1e-6
