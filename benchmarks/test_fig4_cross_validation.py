"""Figure 4 — per-split total cost over the time-series nested cross-validation
(2 node–minute mitigation cost, starting from untrained models).

Paper result: the relative ordering of the approaches is stable over time;
Never-mitigate has the highest cost in every period except the first, SC20-RF
beats Always-mitigate in all six periods, and RL is the best realistic
approach in four of the six periods.
"""

from __future__ import annotations

import pytest

from repro.evaluation.report import format_series


@pytest.mark.benchmark(group="fig4")
def test_fig4_per_split_costs(benchmark, headline_experiment):
    result = benchmark.pedantic(lambda: headline_experiment, rounds=1, iterations=1)

    labels = result.split_labels()
    total = result.per_split_series("total")
    print()
    print(format_series(total, labels, title="Figure 4 — per-split total cost (node-hours)"))
    print()
    print(
        format_series(
            result.per_split_series("mitigation"),
            labels,
            title="Figure 4 — per-split mitigation + training cost (node-hours)",
        )
    )

    never_ue = result.per_split_series("ue")["Never-mitigate"]
    oracle_ue = result.per_split_series("ue")["Oracle"]
    never = total["Never-mitigate"]
    sc20 = total["SC20-RF"]

    # The Oracle never loses more node-hours to UEs than Never-mitigate in
    # any period (its total can exceed Never's only by its tiny mitigation
    # overhead, in periods where no UE is avoidable).
    assert all(n >= o - 1e-6 for n, o in zip(never_ue, oracle_ue))
    # Never-mitigate is the most expensive approach in at least half of the
    # periods that contain any avoidable UE cost.
    worst_count = sum(
        1
        for i in range(len(labels))
        if never[i] >= max(series[i] for series in total.values()) - 1e-6
    )
    neutral_periods = sum(
        1 for n, o in zip(never_ue, oracle_ue) if n - o < 1.0
    )
    assert worst_count + neutral_periods >= len(labels) // 2

    # SC20-RF (optimal threshold) never does worse than Never-mitigate on any
    # split by more than its own overhead.
    assert all(
        s <= n + overhead + 1e-6
        for s, n, overhead in zip(
            sc20, never, result.per_split_series("mitigation")["SC20-RF"]
        )
    )
