"""Section 2 — properties of the telemetry substrate.

The paper's environment description (Section 2.1) quantifies the MareNostrum 3
logs: 4.5 M corrected errors and 333 raw UEs over two years, reduced to 67
first-of-burst UEs (a ~5× burst factor); 259,270 merged decision events, i.e.
a class imbalance of ~3.5 orders of magnitude; and 25 of the 67 UEs without a
single event in the preceding day.  This benchmark regenerates the same
statistics for the synthetic substrate so the substitution can be judged.
"""

from __future__ import annotations

import pytest

from repro.analysis.burst import burstiness_coefficient, inter_arrival_times, ue_burst_statistics
from repro.analysis.stats import manufacturer_breakdown, summarize_log
from repro.telemetry.generator import TelemetryGenerator
from repro.telemetry.records import EventKind
from repro.telemetry.reduction import prepare_log


@pytest.mark.benchmark(group="sec2")
def test_sec2_log_statistics(benchmark, scenario):
    def run():
        generator = TelemetryGenerator(
            scenario.topology,
            scenario.fault_model,
            scenario.duration_seconds,
            seed=scenario.seed,
        )
        raw = generator.generate()
        reduced, report = prepare_log(raw)
        return raw, reduced, report

    raw, reduced, report = benchmark.pedantic(run, rounds=1, iterations=1)

    summary = summarize_log(reduced)
    bursts = ue_burst_statistics(raw)
    ce_gaps = inter_arrival_times(reduced, reduced.kind == int(EventKind.CE))

    print()
    print("Section 2 statistics (synthetic substrate vs paper):")
    print(f"  corrected errors            : {summary.n_corrected_errors:>10,}   (paper: 4,500,000)")
    print(f"  raw uncorrected errors      : {report.raw_ues:>10,}   (paper: 333)")
    print(f"  first-of-burst UEs          : {report.reduced_ues:>10,}   (paper: 67)")
    print(f"  UE burst reduction factor   : {bursts.reduction_factor:>10.1f}   (paper: ~5.0)")
    print(f"  merged decision events      : {summary.n_merged_events:>10,}   (paper: 259,270)")
    print(
        f"  events-per-UE imbalance     : {summary.class_imbalance_orders_of_magnitude:>10.2f}"
        "   orders of magnitude (paper: ~3.5)"
    )
    print(f"  silent-UE fraction (1 day)  : {summary.silent_ue_fraction:>10.2f}   (paper: 25/67 = 0.37)")
    print(f"  CE inter-arrival burstiness : {burstiness_coefficient(ce_gaps):>10.1f}   (>1 means bursty)")
    print(f"  retired DIMMs removed       : {report.retired_dimms:>10,}   (paper: 51)")
    print("  per-manufacturer breakdown  :", manufacturer_breakdown(reduced))

    # The properties the mitigation study depends on must hold.
    assert report.raw_ues > 1.5 * report.reduced_ues
    assert summary.class_imbalance_orders_of_magnitude > 1.0
    assert 0.05 < summary.silent_ue_fraction < 0.7
    assert burstiness_coefficient(ce_gaps) > 1.0
    assert len(manufacturer_breakdown(reduced)) == 3
