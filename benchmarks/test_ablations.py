"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not figures from the paper; they quantify the contribution of the
individual ingredients the paper credits for the RL agent's behaviour:

* prioritized experience replay (Section 3.3.4 — claimed to be what makes the
  extreme class imbalance tractable);
* the dueling double architecture (Section 3.1 — claimed to converge faster);
* the potential-UE-cost state feature (Section 3.2.1 — the adaptivity claim);
* the deep function approximator versus a coarse tabular agent.

Each ablation trains two agents on the same training range with the same
budget and compares their evaluation cost on the same held-out traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import pytest

from repro.baselines.static import AlwaysMitigatePolicy, NeverMitigatePolicy
from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.environment import MitigationEnv
from repro.core.features import StateNormalizer, build_feature_tracks
from repro.core.policies import DecisionContext, RLPolicy
from repro.core.qlearning import TabularQAgent
from repro.core.trainer import train_agent
from repro.evaluation.runner import build_traces, evaluate_policy
from repro.telemetry.generator import TelemetryGenerator
from repro.telemetry.reduction import prepare_log
from repro.workload.generator import WorkloadGenerator
from repro.workload.sampling import JobSequenceSampler


@dataclass
class _AblationData:
    train_tracks: dict
    test_traces: list
    sampler: JobSequenceSampler
    t_split: float
    mitigation_cost: float


@pytest.fixture(scope="module")
def ablation_data(scenario) -> _AblationData:
    error_log = TelemetryGenerator(
        scenario.topology, scenario.fault_model, scenario.duration_seconds,
        seed=scenario.seed,
    ).generate()
    reduced, _ = prepare_log(error_log)
    tracks = build_feature_tracks(reduced)
    job_log = WorkloadGenerator(
        scenario.workload,
        n_cluster_nodes=scenario.topology.n_nodes,
        duration_seconds=scenario.duration_seconds,
        seed=scenario.seed,
    ).generate()
    sampler = JobSequenceSampler(job_log, seed=21)
    t_split = 0.6 * scenario.duration_seconds
    train_tracks = {
        node: track.slice_time(0.0, t_split) for node, track in tracks.items()
    }
    train_tracks = {
        node: track for node, track in train_tracks.items()
        if len(track) and track.n_decision_points > 0
    }
    test_traces = build_traces(tracks, sampler, t_split, scenario.duration_seconds, seed=5)
    return _AblationData(
        train_tracks=train_tracks,
        test_traces=test_traces,
        sampler=sampler,
        t_split=t_split,
        mitigation_cost=scenario.evaluation.mitigation_cost_node_hours,
    )


def _train_and_evaluate(data: _AblationData, config: DQNConfig, episodes: int = 300):
    normalizer = StateNormalizer()
    env = MitigationEnv(
        data.train_tracks,
        data.sampler,
        mitigation_cost=data.mitigation_cost,
        t_start=0.0,
        t_end=data.t_split,
        normalizer=normalizer,
        seed=17,
    )
    agent = DDDQNAgent(env.state_dim, config)
    train_agent(env, agent, n_episodes=episodes)
    policy = RLPolicy(agent, normalizer)
    return evaluate_policy(
        data.test_traces, policy, data.mitigation_cost, include_training_cost=False
    )


def _base_config(**overrides) -> DQNConfig:
    defaults = dict(
        hidden_sizes=(48, 32), epsilon_decay_steps=4000, warmup_transitions=128,
        buffer_capacity=20000, seed=31,
    )
    defaults.update(overrides)
    return DQNConfig(**defaults)


def _reference_costs(data: _AblationData):
    never = evaluate_policy(data.test_traces, NeverMitigatePolicy(), data.mitigation_cost)
    always = evaluate_policy(data.test_traces, AlwaysMitigatePolicy(), data.mitigation_cost)
    return never.costs, always.costs


@pytest.mark.benchmark(group="ablation")
def test_ablation_prioritized_replay(benchmark, ablation_data):
    """PER versus uniform replay under the same training budget."""

    def run():
        with_per = _train_and_evaluate(ablation_data, _base_config(prioritized=True))
        without = _train_and_evaluate(ablation_data, _base_config(prioritized=False))
        return with_per, without

    with_per, without = benchmark.pedantic(run, rounds=1, iterations=1)
    never, always = _reference_costs(ablation_data)
    print(
        f"\nPER: total={with_per.costs.total:,.0f}  uniform: total={without.costs.total:,.0f}"
        f"  (Never={never.total:,.0f}, Always={always.total:,.0f})"
    )
    # Both agents must stay inside the static envelope; PER should not be
    # dramatically worse than uniform replay on the rare-UE workload (the
    # printed totals carry the quantitative comparison).
    assert with_per.costs.total <= never.total * 1.1
    assert with_per.costs.total <= without.costs.total * 1.5


@pytest.mark.benchmark(group="ablation")
def test_ablation_dueling_double(benchmark, ablation_data):
    """Dueling double DQN versus a vanilla DQN."""

    def run():
        dddqn = _train_and_evaluate(ablation_data, _base_config(dueling=True, double=True))
        vanilla = _train_and_evaluate(ablation_data, _base_config(dueling=False, double=False))
        return dddqn, vanilla

    dddqn, vanilla = benchmark.pedantic(run, rounds=1, iterations=1)
    never, always = _reference_costs(ablation_data)
    print(
        f"\nDDDQN: total={dddqn.costs.total:,.0f}  vanilla: total={vanilla.costs.total:,.0f}"
        f"  (Never={never.total:,.0f}, Always={always.total:,.0f})"
    )
    assert dddqn.costs.total <= never.total * 1.1
    assert dddqn.costs.total <= vanilla.costs.total * 1.5


@pytest.mark.benchmark(group="ablation")
def test_ablation_ue_cost_feature(benchmark, ablation_data):
    """Blind the trained agent to the potential UE cost at decision time.

    The adaptivity claim of the paper rests on this input: replacing it with a
    constant must not *reduce* the number of mitigations triggered on the
    highest-cost decisions.
    """

    def run():
        normalizer = StateNormalizer()
        env = MitigationEnv(
            ablation_data.train_tracks,
            ablation_data.sampler,
            mitigation_cost=ablation_data.mitigation_cost,
            t_start=0.0,
            t_end=ablation_data.t_split,
            normalizer=normalizer,
            seed=17,
        )
        agent = DDDQNAgent(env.state_dim, _base_config())
        train_agent(env, agent, n_episodes=300)
        policy = RLPolicy(agent, normalizer)

        features = np.concatenate(
            [trace.features[~trace.is_ue] for trace in ablation_data.test_traces]
        )[:200]
        costs = (10.0, 5000.0)
        rates = []
        for cost in costs:
            decisions = [
                policy.decide(
                    DecisionContext(time=0.0, node=0, features=row, ue_cost=cost)
                )
                for row in features
            ]
            rates.append(float(np.mean(decisions)))
        return rates

    low_rate, high_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmitigation rate at 10 node-h: {low_rate:.2f}, at 5000 node-h: {high_rate:.2f}")
    # The agent must mitigate at least as often when a UE would be expensive
    # (small tolerance for decision noise near the boundary).
    assert high_rate >= low_rate - 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_tabular_agent(benchmark, ablation_data):
    """Deep function approximation versus a coarse tabular Q-learner."""

    def run():
        normalizer = StateNormalizer()
        env = MitigationEnv(
            ablation_data.train_tracks,
            ablation_data.sampler,
            mitigation_cost=ablation_data.mitigation_cost,
            t_start=0.0,
            t_end=ablation_data.t_split,
            normalizer=normalizer,
            seed=17,
        )
        agent = TabularQAgent(env.state_dim)
        train_agent(env, agent, n_episodes=300)
        policy = RLPolicy(agent, normalizer, name="Tabular-Q")
        return evaluate_policy(
            ablation_data.test_traces, policy, ablation_data.mitigation_cost,
            include_training_cost=False,
        )

    tabular = benchmark.pedantic(run, rounds=1, iterations=1)
    never, always = _reference_costs(ablation_data)
    print(
        f"\nTabular-Q: total={tabular.costs.total:,.0f}"
        f"  (Never={never.total:,.0f}, Always={always.total:,.0f})"
    )
    # The tabular agent is a sanity baseline: it must at least not exceed the
    # cost of never mitigating by more than its own mitigation spending.
    assert tabular.costs.ue_cost <= never.ue_cost + 1e-6
