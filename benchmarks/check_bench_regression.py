"""Gate a freshly measured ``BENCH_*.json`` against a committed baseline.

Usage::

    python benchmarks/check_bench_regression.py \
        BENCH_rl_parallel.json benchmarks/baselines/BENCH_rl_parallel.json \
        [--tolerance 0.25]

Exit status 0 when the current measurements are within tolerance of the
baseline, 1 with a line per violation otherwise.  The file's ``benchmark``
field selects the rule set.

``rl_parallel`` (executor-schedule benchmark):

* ``results_identical`` must be true — a benchmark that changed the numbers
  is a correctness failure, not a performance data point.
* Cache-behaviour counters (``prepare_calls``) are deterministic: more
  prepare calls than the baseline means a caching layer regressed.
* Speed *ratios* (``fan_vs_chain_speedup``, ``parallel_speedup``) are only
  compared when both runs had more than one core, shielding the gate from
  single-core laptops and throttled containers; a multi-core run must also
  clear the structural bound ``fan_vs_chain_speedup >= --min-fan-speedup``
  (default 1.0) — the per-trial fan-out beating the chained shape is the
  property the benchmark exists to protect — even when the baseline was
  recorded on one core.  **A single-core baseline leaves only that
  structural bound active** (the checker says so in its output); refresh
  the baseline from a multi-core run — CI uploads one per push as the
  ``bench-rl-parallel-*`` artifact — to arm the full ratio gate.
* Absolute seconds are never compared across machines: the recorded
  ``cpu_count`` travels with the JSON so readers can interpret them.

``decision_core`` (vectorized replay/PER/features benchmark):

* ``results_identical`` must be true, as above.
* The vector-vs-scalar speedups (``replay_speedup``, ``per_speedup``,
  ``feature_speedup``) are single-process, schedule-independent ratios, so
  they are gated on **every** runner — core count does not matter.
  ``replay_speedup`` and ``feature_speedup`` must stay >= 1.0 and within
  ``--tolerance`` of the committed baseline; ``per_speedup`` hovers at the
  parity boundary by design (dispatch-bound at mini-batch size), so only a
  structural >= 0.85 floor is armed for it.
* The restart=on cost-feedback policies (RL, Myopic-RF) are additionally
  gated *individually* on their ``replay_speedup_by_policy`` entries: each
  must stay >= 1.0 and within ``--tolerance`` of its baseline ratio.  These
  are the policies resolved through the lockstep renewal walk — the
  slowest replay path — so a walk regression cannot hide behind the panel
  average.

``serve`` (online micro-batched decision-service benchmark):

* ``results_identical`` must be true — served decisions are bit-identical
  to the offline replay (forest and RL), and the scalar-fallback serving
  run reproduced the batched masks.
* ``mean_batch_size`` and ``storm_mean_batch_size`` must stay > 1.0: the
  micro-batcher must actually coalesce concurrent nodes, both on the
  unthrottled firehose and under the replayed-at-speed UE storm.  These
  are structural floors, armed on every runner.
* ``batched_vs_scalar_speedup`` (one ``decide_nodes`` call per tick vs the
  base-class per-row ``decide`` loop) is a single-process,
  schedule-independent ratio: it must stay >= 1.0 and within
  ``--tolerance`` of the committed baseline on any runner.
* Absolute decisions/s and tick-latency milliseconds are recorded for the
  perf trajectory but never compared across machines.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


#: Speedup ratios recorded by the decision-core benchmark, with their
#: structural floors.  All are vector-vs-scalar comparisons within one
#: process, valid on any runner.  ``per_speedup`` sits at the parity
#: boundary by design (mini-batch-32 sampling is numpy-dispatch-bound, see
#: ROADMAP), so its floor only guards against a real loss to the scalar
#: path, not measurement noise — and it is excluded from the
#: baseline-ratio comparison, where a 25% band around ~1.3 would be pure
#: noise gating.
DECISION_CORE_RATIOS = {
    "replay_speedup": 1.0,
    "per_speedup": 0.85,
    "feature_speedup": 1.0,
}
_RATIO_COMPARED_TO_BASELINE = ("replay_speedup", "feature_speedup")

#: Per-policy replay-speedup gates: the restart=on cost-feedback policies
#: are the ones resolved through the lockstep renewal walk, the panel-wide
#: speedup's weakest link (every other policy's replay is a single batched
#: call).  Each must stay >= its structural floor and within the
#: ``--tolerance`` band of its committed baseline ratio, so a regression in
#: the walk cannot hide behind the panel average.
COST_FEEDBACK_POLICY_FLOORS = {
    "RL/restart=on": 1.0,
    "Myopic-RF/restart=on": 1.0,
}


def check_decision_core(
    current: dict,
    baseline: dict,
    tolerance: float,
) -> List[str]:
    """Regression findings of a ``decision_core`` run against its baseline."""
    findings: List[str] = []
    if not current.get("results_identical", False):
        findings.append(
            "results_identical is false: the vectorized decision core "
            "changed the replay/PER/feature numbers"
        )
    for metric, floor in DECISION_CORE_RATIOS.items():
        got = current.get(metric)
        if got is None:
            findings.append(f"{metric} is missing from the current run")
            continue
        if got < floor:
            findings.append(
                f"{metric} {got:.2f} < {floor:.2f}: the vectorized "
                "path no longer clears its structural floor over the "
                "scalar reference"
            )
        if metric not in _RATIO_COMPARED_TO_BASELINE:
            continue
        base = baseline.get(metric)
        if base is not None:
            baseline_floor = base * (1.0 - tolerance)
            if got < baseline_floor:
                findings.append(
                    f"{metric} regressed by more than {tolerance:.0%}: "
                    f"{got:.2f} < {baseline_floor:.2f} (baseline {base:.2f})"
                )
    current_by_policy = current.get("replay_speedup_by_policy") or {}
    baseline_by_policy = baseline.get("replay_speedup_by_policy") or {}
    for key, floor in COST_FEEDBACK_POLICY_FLOORS.items():
        got = current_by_policy.get(key)
        if got is None:
            findings.append(
                f"replay_speedup_by_policy[{key!r}] is missing from the "
                "current run"
            )
            continue
        if got < floor:
            findings.append(
                f"replay speedup of {key} {got:.2f} < {floor:.2f}: the "
                "lockstep renewal walk no longer clears its structural "
                "floor over the scalar reference"
            )
        base = baseline_by_policy.get(key)
        if base is not None:
            baseline_floor = base * (1.0 - tolerance)
            if got < baseline_floor:
                findings.append(
                    f"replay speedup of {key} regressed by more than "
                    f"{tolerance:.0%}: {got:.2f} < {baseline_floor:.2f} "
                    f"(baseline {base:.2f})"
                )
    return findings


#: Mean decision-batch floors of the serve benchmark: the micro-batcher
#: must coalesce more than one node per tick on the unthrottled firehose
#: and under the replayed-at-speed UE storm alike.  Structural bounds,
#: valid on any runner (batching is driven by the replayed stream, not by
#: machine speed).
SERVE_BATCH_FLOORS = {
    "mean_batch_size": 1.0,
    "storm_mean_batch_size": 1.0,
}


def check_serve(
    current: dict,
    baseline: dict,
    tolerance: float,
) -> List[str]:
    """Regression findings of a ``serve`` run against its baseline."""
    findings: List[str] = []
    if not current.get("results_identical", False):
        findings.append(
            "results_identical is false: the served decisions diverged from "
            "the offline replay (or the scalar-fallback serving run)"
        )
    for metric, floor in SERVE_BATCH_FLOORS.items():
        got = current.get(metric)
        if got is None:
            findings.append(f"{metric} is missing from the current run")
        elif got <= floor:
            findings.append(
                f"{metric} {got:.2f} <= {floor:.2f}: the micro-batcher no "
                "longer coalesces concurrent nodes"
            )
    speedup = current.get("batched_vs_scalar_speedup")
    if speedup is None:
        findings.append("batched_vs_scalar_speedup is missing from the current run")
        return findings
    if speedup < 1.0:
        findings.append(
            f"batched_vs_scalar_speedup {speedup:.2f} < 1.00: one decide_nodes "
            "call per tick no longer beats the per-row decide loop"
        )
    base = baseline.get("batched_vs_scalar_speedup")
    if base is not None:
        floor = base * (1.0 - tolerance)
        if speedup < floor:
            findings.append(
                f"batched_vs_scalar_speedup regressed by more than "
                f"{tolerance:.0%}: {speedup:.2f} < {floor:.2f} "
                f"(baseline {base:.2f})"
            )
    return findings


def check(
    current: dict,
    baseline: dict,
    tolerance: float,
    min_fan_speedup: float = 1.0,
) -> List[str]:
    """All regression findings of ``current`` against ``baseline``."""
    if current.get("benchmark") == "decision_core":
        return check_decision_core(current, baseline, tolerance)
    if current.get("benchmark") == "serve":
        return check_serve(current, baseline, tolerance)
    findings: List[str] = []

    if not current.get("results_identical", False):
        findings.append(
            "results_identical is false: the parallel/fan schedules changed "
            "the experiment numbers"
        )

    base_calls = baseline.get("prepare_calls")
    if base_calls is not None and current.get("prepare_calls", 0) > base_calls:
        findings.append(
            f"prepare_calls regressed: {current['prepare_calls']} > "
            f"baseline {base_calls} (a prepared-data cache stopped sharing)"
        )

    current_cores = current.get("cpu_count") or 1
    baseline_cores = baseline.get("cpu_count") or 1
    if current_cores < 2:
        # Single-core runs can only measure pool overhead; every speed-ratio
        # gate below would be noise there.
        return findings

    fan_vs_chain = current.get("fan_vs_chain_speedup", 0.0)
    if fan_vs_chain < min_fan_speedup:
        findings.append(
            f"fan_vs_chain_speedup {fan_vs_chain:.2f} < {min_fan_speedup:.2f}: "
            f"the per-trial fan-out no longer clears the structural bound "
            f"over the chained RL shape on {current_cores} cores"
        )

    if baseline_cores >= 2:
        for metric in ("fan_vs_chain_speedup", "parallel_speedup"):
            base = baseline.get(metric)
            got = current.get(metric)
            if base is None or got is None:
                continue
            floor = base * (1.0 - tolerance)
            if got < floor:
                findings.append(
                    f"{metric} regressed by more than {tolerance:.0%}: "
                    f"{got:.2f} < {floor:.2f} (baseline {base:.2f})"
                )
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression of speed ratios (default: 0.25)",
    )
    parser.add_argument(
        "--min-fan-speedup",
        type=float,
        default=1.0,
        help="structural floor on fan_vs_chain_speedup for multi-core runs, "
        "enforced even against a single-core baseline (default: 1.0)",
    )
    args = parser.parse_args(argv)

    with open(args.current) as handle:
        current = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    findings = check(current, baseline, args.tolerance, args.min_fan_speedup)
    if findings:
        print(f"benchmark regression gate FAILED ({len(findings)} finding(s)):")
        for finding in findings:
            print(f"  - {finding}")
        return 1
    if current.get("benchmark") == "serve":
        print(
            "benchmark regression gate passed (serve floors armed on any "
            f"runner; batched_vs_scalar={current.get('batched_vs_scalar_speedup')}x, "
            f"mean batch {current.get('mean_batch_size')} firehose / "
            f"{current.get('storm_mean_batch_size')} storm, "
            f"{current.get('decisions_per_sec')} decisions/s recorded)"
        )
        return 0
    if current.get("benchmark") == "decision_core":
        ratios = ", ".join(
            f"{metric}={current.get(metric)}x" for metric in DECISION_CORE_RATIOS
        )
        by_policy = current.get("replay_speedup_by_policy") or {}
        walk = ", ".join(
            f"{key}={by_policy.get(key)}x" for key in COST_FEEDBACK_POLICY_FLOORS
        )
        print(
            "benchmark regression gate passed (decision-core ratios armed "
            f"on any runner; {ratios}; lockstep walk: {walk})"
        )
        return 0
    cores = current.get("cpu_count") or 1
    baseline_cores = baseline.get("cpu_count") or 1
    if cores < 2:
        gated = "single-core run: ratio gates skipped"
    elif baseline_cores < 2:
        gated = (
            "single-core BASELINE: only the structural fan-vs-chain floor is "
            "armed — refresh benchmarks/baselines/ from a multi-core run"
        )
    else:
        gated = "ratio gates armed"
    print(
        f"benchmark regression gate passed ({gated}; "
        f"fan_vs_chain={current.get('fan_vs_chain_speedup')}x on {cores} "
        f"core(s), baseline {baseline.get('fan_vs_chain_speedup')}x on "
        f"{baseline_cores} core(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
