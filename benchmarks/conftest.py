"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on a scaled-down
synthetic scenario (see ``DESIGN.md`` for the per-experiment index and
``EXPERIMENTS.md`` for the paper-vs-measured comparison).  Experiments are
expensive, so results are cached per (scenario, config) key and shared across
benchmarks within one pytest session: the first benchmark that needs a given
experiment pays for it, the others reuse the result.

Environment knobs:

``REPRO_BENCH_SCENARIO``  — ``small`` (default) or ``benchmark`` / ``paper``.
``REPRO_BENCH_EPISODES``  — override the RL episode budget per split.
``REPRO_BENCH_STORE``     — ArtifactStore directory: the fig3/fig5/fig7
                            sweeps then warm-start from disk (completed
                            points load, prepared data is not regenerated)
                            and persist whatever this session computes.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Optional, Tuple

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.config import ScenarioConfig
from repro.evaluation.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.evaluation.pipeline import PreparedDataCache
from repro.evaluation.sweep import SweepResult, SweepSpec, run_sweep
from repro.store import ArtifactStore

_CACHE: Dict[Tuple, ExperimentResult] = {}
_SWEEP_CACHE: Dict[Tuple, SweepResult] = {}
_STORE_STATE: Dict[str, object] = {}


def bench_store() -> Optional[ArtifactStore]:
    """The ArtifactStore named by ``REPRO_BENCH_STORE`` (``None`` when unset)."""
    directory = os.environ.get("REPRO_BENCH_STORE")
    if not directory:
        return None
    if _STORE_STATE.get("dir") != directory:
        store = ArtifactStore(directory)
        _STORE_STATE.update(
            # One spilling cache per store: prepared products written by
            # earlier benchmark sessions are read back instead of rebuilt.
            {"dir": directory, "store": store, "cache": PreparedDataCache(spill=store)}
        )
    return _STORE_STATE["store"]  # type: ignore[return-value]


def bench_scenario() -> ScenarioConfig:
    """The scenario used by the benchmark harness."""
    name = os.environ.get("REPRO_BENCH_SCENARIO", "small")
    return getattr(ScenarioConfig, name)()


def default_experiment_config() -> ExperimentConfig:
    """Full-quality config used for the headline cost–benefit benchmark."""
    config = ExperimentConfig()
    episodes = os.environ.get("REPRO_BENCH_EPISODES")
    if episodes:
        config = config.with_overrides(rl_episodes=int(episodes))
    return config


def sweep_experiment_config() -> ExperimentConfig:
    """Cheaper config used for the parameter sweeps (Figures 5 and 7)."""
    config = ExperimentConfig.fast()
    episodes = os.environ.get("REPRO_BENCH_EPISODES")
    if episodes:
        config = config.with_overrides(rl_episodes=int(episodes))
    return config


def cached_experiment(
    scenario: ScenarioConfig, config: ExperimentConfig, key_extra: str = ""
) -> ExperimentResult:
    """Run (or reuse) an experiment for the given scenario/config pair."""
    key = (
        scenario.name,
        scenario.seed,
        scenario.evaluation.mitigation_cost_node_minutes,
        scenario.evaluation.restartable,
        config.rl_episodes,
        config.rl_hyperparam_trials,
        config.job_scaling_factor,
        config.manufacturer,
        config.include_rl,
        key_extra,
    )
    if key not in _CACHE:
        _CACHE[key] = run_experiment(scenario, config)
    return _CACHE[key]


def _axis_key(values) -> Tuple:
    return None if values is None else tuple(values)


def cached_sweep(spec: SweepSpec, config: ExperimentConfig) -> SweepResult:
    """Run (or reuse) a sweep; the first benchmark that needs it pays.

    Sweeps additionally share prepared data *across* calls through the
    process-wide :func:`repro.evaluation.default_prepared_cache`, so e.g.
    the Figure 3 cost sweep and the Figure 7 scaling sweep regenerate the
    base telemetry only once per pytest session.

    With ``REPRO_BENCH_STORE`` set, the sweep runs against that
    :class:`~repro.store.ArtifactStore`: fig3/fig5/fig7 reruns warm-start
    from disk — completed points load instead of executing and prepared
    data spills to (and reloads from) the store — so a second benchmark
    session recomputes nothing that the first one already paid for.
    """
    # Key on the full frozen dataclasses: any base-scenario or config field
    # difference yields a distinct sweep (axes are normalised to tuples
    # because SweepSpec accepts any sequence).
    key = (
        spec.base,
        _axis_key(spec.mitigation_costs),
        _axis_key(spec.restartable),
        _axis_key(spec.manufacturers),
        _axis_key(spec.job_scales),
        _axis_key(spec.seeds),
        config,
    )
    if key not in _SWEEP_CACHE:
        store = bench_store()
        if store is None:
            _SWEEP_CACHE[key] = run_sweep(spec, config)
        else:
            _SWEEP_CACHE[key] = run_sweep(
                spec, config, cache=_STORE_STATE["cache"], store=store
            )
    return _SWEEP_CACHE[key]


@pytest.fixture(scope="session")
def scenario() -> ScenarioConfig:
    return bench_scenario()


@pytest.fixture(scope="session")
def headline_experiment(scenario) -> ExperimentResult:
    """The 2-node-minute experiment shared by Figures 3, 4, 6 and Table 2."""
    return cached_experiment(scenario, default_experiment_config())
