"""Benchmark: the online micro-batched decision service (``repro.serve``).

Opt-in (marked ``slow``): run with

    python -m pytest benchmarks/test_serve.py -m slow -s

One service benchmark over ``ScenarioConfig.benchmark()``, asserting
*bit-identical results* before recording any timing:

``equivalence``
    The served decision masks and cost totals must equal the offline
    ``replay_decision_masks`` / ``evaluate_policy`` of the same stream —
    for the SC20 forest AND the RL policy (the ISSUE acceptance bar).
``firehose``
    The whole reduced log replayed unthrottled through the forest policy:
    steady-state decision throughput (decisions/s), tick-latency
    percentiles, and the batch-size histogram of the micro-batcher.
``storm``
    The same log replayed *at speed* — the entire multi-month stream
    compressed into ~``REPRO_BENCH_STORM_SECONDS`` of wall time — so UE
    bursts arrive as concurrent per-node backlogs.  The mean decision
    batch must stay > 1: the batcher must actually coalesce the storm.
``batched vs scalar``
    The same service run with the policy's vectorized ``decide_nodes``
    vs a wrapper forcing the base-class per-row ``decide`` loop.  Masks
    must be identical; the decision-time ratio is the micro-batching
    speedup (one forest gather per tick vs one tree walk per node).

The JSON lands in ``BENCH_serve.json`` in the repository root (override
the directory with ``REPRO_BENCH_OUTPUT_DIR``).  CI uploads it and gates
with ``benchmarks/check_bench_regression.py`` against the committed
baseline: ``results_identical`` and the mean-batch floors are structural,
the batched-vs-scalar speedup is a schedule-independent single-process
ratio gated on any runner, and absolute decisions/s / latency numbers are
recorded for the perf trajectory but never compared across machines.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.baselines.dataset import build_prediction_dataset
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.config import ScenarioConfig
from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.features import StateNormalizer, build_feature_tracks
from repro.core.policies import DecisionContext, MitigationPolicy, RLPolicy
from repro.evaluation.runner import (
    build_traces,
    evaluate_policy,
    replay_decision_masks,
)
from repro.serve import ServeConfig, TimelineJobProvider, serve_log
from repro.telemetry.generator import TelemetryGenerator
from repro.telemetry.reduction import prepare_log
from repro.utils.rng import RngFactory
from repro.utils.timeutils import DAY
from repro.workload.generator import WorkloadGenerator
from repro.workload.sampling import JobSequenceSampler

pytestmark = pytest.mark.slow

REPS = int(os.environ.get("REPRO_BENCH_SERVE_REPS", "3"))
STORM_SECONDS = float(os.environ.get("REPRO_BENCH_STORM_SECONDS", "1.0"))
MITIGATION_COST = 2 / 60.0  # node-hours (the paper's 2 node-minute point)


def _output_path() -> str:
    directory = os.environ.get(
        "REPRO_BENCH_OUTPUT_DIR",
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    return os.path.join(directory, "BENCH_serve.json")


class _ScalarServing(MitigationPolicy):
    """Forces the base-class per-row ``decide`` loop at serving time."""

    name = "scalar-fallback"
    cost_dependent = True

    def __init__(self, inner: MitigationPolicy) -> None:
        self._inner = inner

    def decide(self, context: DecisionContext) -> bool:
        return self._inner.decide(context)


def _setup():
    """The benchmark stream: reduced log, traces, jobs, trained policies."""
    scenario = ScenarioConfig.benchmark(seed=2024)
    factory = RngFactory(scenario.seed)
    raw = TelemetryGenerator(
        scenario.topology,
        scenario.fault_model,
        scenario.duration_seconds,
        seed=factory.child("telemetry"),
    ).generate()
    log, _ = prepare_log(raw, scenario.evaluation.ue_burst_window_seconds)
    merge_window = scenario.evaluation.merge_window_seconds
    tracks = build_feature_tracks(log, merge_window)
    job_log = WorkloadGenerator(
        scenario.workload,
        n_cluster_nodes=scenario.topology.n_nodes,
        duration_seconds=scenario.duration_seconds,
        seed=factory.stream("workload"),
    ).generate()
    sampler = JobSequenceSampler(job_log, seed=factory.stream("sampler"))
    t_max = float(log.time[-1])
    traces = build_traces(tracks, sampler, 0.0, t_max + 1.0, seed=97)
    jobs = TimelineJobProvider({trace.node: trace.timeline for trace in traces})

    dataset = build_prediction_dataset(
        tracks,
        prediction_window_seconds=DAY,
        t_start=0.0,
        t_end=0.25 * scenario.duration_seconds,
    )
    forest_model, _ = train_sc20_forest(dataset, n_estimators=16, max_depth=8, seed=3)
    forest = SC20RandomForestPolicy(forest_model, threshold=0.4)
    normalizer = StateNormalizer()
    agent = DDDQNAgent(
        normalizer.state_dim, DQNConfig(hidden_sizes=(32, 16), seed=17)
    )
    rl = RLPolicy(agent, normalizer)
    return log, traces, jobs, merge_window, forest, rl


def _config(merge_window, **overrides) -> ServeConfig:
    settings = dict(
        mitigation_cost_node_hours=MITIGATION_COST,
        restartable=True,
        merge_window_seconds=merge_window,
        keep_decisions=False,
    )
    settings.update(overrides)
    return ServeConfig(**settings)


def _masks_equal(a, b) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[n], b[n]) for n in a)


def _serve_matches_offline(log, traces, jobs, policy, config) -> bool:
    """Bit-identity of one served run against the offline replay."""
    report = serve_log(log, policy, jobs, config)
    offline = {
        trace.node: mask
        for trace, mask in zip(
            traces, replay_decision_masks(traces, policy, restartable=True)
        )
    }
    evaluation = evaluate_policy(
        traces,
        policy,
        MITIGATION_COST,
        restartable=True,
        include_training_cost=False,
    )
    return (
        _masks_equal(report.masks, offline)
        and report.ue_cost_node_hours == evaluation.costs.ue_cost
        and report.mitigation_cost_node_hours == evaluation.costs.mitigation_cost
        and report.n_decision_points == evaluation.n_decision_points
    )


def _best_report(log, policy, jobs, config, speed=None, reps=REPS):
    """The rep with the best wall clock (warm caches, steady state)."""
    best = None
    for _ in range(reps):
        report = serve_log(log, policy, jobs, config, speed=speed)
        if best is None or report.wall_seconds < best.wall_seconds:
            best = report
    return best


@pytest.mark.slow
def test_serve_throughput_and_equivalence():
    log, traces, jobs, merge_window, forest, rl = _setup()
    record = {
        "benchmark": "serve",
        "cpu_count": os.cpu_count(),
        "reps": REPS,
        "n_nodes": len(traces),
        "n_events": len(log),
    }

    # -- equivalence: serve == offline replay, forest AND RL ------------- #
    config = _config(merge_window)
    identical = _serve_matches_offline(log, traces, jobs, forest, config)
    identical = _serve_matches_offline(log, traces, jobs, rl, config) and identical

    # -- firehose: unthrottled replay through the forest ----------------- #
    firehose = _best_report(log, forest, jobs, config)
    record.update(
        {
            "n_steps": firehose.n_steps,
            "n_decision_points": firehose.n_decision_points,
            "n_ticks": firehose.n_ticks,
            "wall_seconds": round(firehose.wall_seconds, 4),
            "decisions_per_sec": round(firehose.decisions_per_second),
            "tick_p50_ms": round(firehose.latency_seconds(50) * 1e3, 4),
            "tick_p99_ms": round(firehose.latency_seconds(99) * 1e3, 4),
            "mean_batch_size": round(firehose.mean_batch_size, 2),
            "batch_size_histogram": {
                str(size): count
                for size, count in firehose.batch_size_histogram().items()
            },
        }
    )
    rl_firehose = _best_report(log, rl, jobs, config)
    record["rl_decisions_per_sec"] = round(rl_firehose.decisions_per_second)
    record["rl_tick_p99_ms"] = round(rl_firehose.latency_seconds(99) * 1e3, 4)

    # -- storm: the whole stream replayed at speed ----------------------- #
    span = float(log.time[-1] - log.time[0])
    storm_speed = span / STORM_SECONDS
    storm = _best_report(
        log, forest, jobs, config, speed=storm_speed, reps=1
    )
    identical = _masks_equal(storm.masks, firehose.masks) and identical
    record.update(
        {
            "storm_speed": round(storm_speed),
            "storm_wall_seconds": round(storm.wall_seconds, 4),
            "storm_decisions_per_sec": round(storm.decisions_per_second),
            "storm_tick_p99_ms": round(storm.latency_seconds(99) * 1e3, 4),
            "storm_mean_batch_size": round(storm.mean_batch_size, 2),
        }
    )

    # -- batched vs scalar serving: same masks, decision-time ratio ------ #
    scalar_best = None
    for _ in range(REPS):
        report = serve_log(log, _ScalarServing(forest), jobs, config)
        seconds = float(report.tick_latencies.sum())
        if scalar_best is None or seconds < scalar_best[0]:
            scalar_best = (seconds, report)
    scalar_seconds, scalar_report = scalar_best
    batched_seconds = float(firehose.tick_latencies.sum())
    identical = _masks_equal(scalar_report.masks, firehose.masks) and identical
    record.update(
        {
            "batched_decision_seconds": round(batched_seconds, 4),
            "scalar_decision_seconds": round(scalar_seconds, 4),
            "batched_vs_scalar_speedup": round(scalar_seconds / batched_seconds, 3),
        }
    )
    record["results_identical"] = identical

    path = _output_path()
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"\nfirehose: {record['decisions_per_sec']:,} decisions/s, "
        f"tick p50 {record['tick_p50_ms']:.2f} ms / "
        f"p99 {record['tick_p99_ms']:.2f} ms, "
        f"mean batch {record['mean_batch_size']:.1f}"
        f"\nstorm:    {record['storm_decisions_per_sec']:,} decisions/s at "
        f"{record['storm_speed']:,}x, p99 {record['storm_tick_p99_ms']:.2f} ms, "
        f"mean batch {record['storm_mean_batch_size']:.1f}"
        f"\nbatched:  {record['scalar_decision_seconds']:.2f}s -> "
        f"{record['batched_decision_seconds']:.2f}s  "
        f"({record['batched_vs_scalar_speedup']:.1f}x over the scalar loop)"
        f"\nwritten: {path}"
    )

    # Correctness is non-negotiable: the served decisions must reproduce
    # the offline replay exactly before any throughput number matters.
    assert identical

    # The micro-batcher must actually coalesce: under the firehose and the
    # at-speed storm alike, the mean decision batch must exceed one node.
    assert record["mean_batch_size"] > 1.0
    assert record["storm_mean_batch_size"] > 1.0

    # Batched serving is a schedule-independent single-process ratio, so
    # even a throttled single-core runner must keep it at or above parity.
    assert record["batched_vs_scalar_speedup"] >= 1.0
