"""Table 2 — classical machine-learning metrics (TP / FN / FP / TN,
mitigations, recall, precision) for every approach, plus the RL policy under
three uniformly distributed potential-UE-cost regimes.

Paper result: Always-mitigate and the Oracle reach the maximum recall (63 %)
achievable by event-triggered policies because 25 of the 67 UEs have no event
in the preceding day; SC20-RF trades a little recall for far fewer false
positives; the RL policy is the only approach whose operating point moves with
the potential UE cost — low recall when UEs would be cheap, Always-mitigate-
like behaviour when they would cost more than 1000 node–hours.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.report import format_metrics_table
from repro.evaluation.runner import build_traces, evaluate_policy
from repro.core.features import build_feature_tracks


UE_COST_RANGES = {
    "RL (UE cost < 100 node-h)": (1.0, 100.0),
    "RL (100 <= UE cost < 1000)": (100.0, 1000.0),
    "RL (UE cost >= 1000 node-h)": (1000.0, 32000.0),
}


@pytest.mark.benchmark(group="table2")
def test_table2_ml_metrics(benchmark, headline_experiment, scenario):
    result = headline_experiment

    def run():
        metrics = dict(result.confusions())
        # Re-evaluate the trained RL policy of the final split under synthetic
        # uniformly-distributed potential-UE-cost regimes (last three rows of
        # Table 2).  The same trained policy and the same telemetry are used;
        # only the cost presented to the agent changes.
        if result.final_rl_policy is not None:
            from repro.telemetry.generator import TelemetryGenerator
            from repro.telemetry.reduction import prepare_log
            from repro.workload.generator import WorkloadGenerator
            from repro.workload.sampling import JobSequenceSampler

            error_log = TelemetryGenerator(
                scenario.topology,
                scenario.fault_model,
                scenario.duration_seconds,
                seed=scenario.seed,
            ).generate()
            reduced, _ = prepare_log(error_log)
            tracks = build_feature_tracks(reduced)
            job_log = WorkloadGenerator(
                scenario.workload,
                n_cluster_nodes=scenario.topology.n_nodes,
                duration_seconds=scenario.duration_seconds,
                seed=scenario.seed,
            ).generate()
            sampler = JobSequenceSampler(job_log, seed=1)
            last_split = result.splits[-1]
            traces = build_traces(
                tracks, sampler, *last_split.test_range, seed=99
            )
            for label, (low, high) in UE_COST_RANGES.items():
                rng = np.random.default_rng(hash(label) % (2**31))
                costs = {}

                def cost_fn(trace, index, time, default, _rng=rng, _costs=costs, _low=low, _high=high):
                    key = (trace.node, index)
                    if key not in _costs:
                        _costs[key] = float(_rng.uniform(_low, _high))
                    return _costs[key]

                evaluation = evaluate_policy(
                    traces,
                    result.final_rl_policy,
                    scenario.evaluation.mitigation_cost_node_hours,
                    ue_cost_fn=cost_fn,
                    include_training_cost=False,
                )
                metrics[label] = evaluation.confusion
        return metrics

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_metrics_table(metrics))

    never = metrics["Never-mitigate"]
    always = metrics["Always-mitigate"]
    oracle = metrics["Oracle"]
    sc20 = metrics["SC20-RF"]

    # Never-mitigate: zero recall, undefined precision.
    assert never.recall == 0.0 and never.precision is None
    # Always-mitigate and the Oracle share the maximum achievable recall.
    assert always.recall == pytest.approx(oracle.recall, abs=1e-9)
    assert always.recall > 0.3
    # The Oracle has (near-)perfect precision; Always-mitigate the worst.
    assert (oracle.precision or 0) > 0.7
    assert (always.precision or 0) <= (sc20.precision or 0) + 1e-9
    # SC20-RF performs no more mitigations than Always-mitigate (and usually
    # far fewer, unless its optimal threshold degenerates to zero).
    assert sc20.n_mitigations <= always.n_mitigations

    # The RL agent's mitigation rate grows with the potential UE cost
    # (adaptivity); a small tolerance absorbs sampling noise.
    low = metrics.get("RL (UE cost < 100 node-h)")
    high = metrics.get("RL (UE cost >= 1000 node-h)")
    if low is not None and high is not None and high.n_ues:
        assert high.n_mitigations >= 0.8 * low.n_mitigations
