"""Figure 3 — total cost per approach for mitigation costs of 2, 5 and 10
node–minutes (MN/All).

Paper result (absolute node–hours are testbed-specific; the *shape* is what
matters): Never-mitigate costs 74,035 node–hours; at 2 node–minutes
Always-mitigate cuts it by 46 %, SC20-RF by 52 %, RL by 54 % and the Oracle by
58 %; as the mitigation cost rises to 10 node–minutes Always-mitigate becomes
slightly worse than Never-mitigate while the prediction-based approaches keep
most of their advantage.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_sweep, sweep_experiment_config
from repro.evaluation.report import format_cost_table
from repro.evaluation.sweep import SweepSpec

MITIGATION_COSTS = (2.0, 5.0, 10.0)
SWEPT_COSTS = (5.0, 10.0)


@pytest.fixture(scope="module")
def cost_sweep(scenario):
    """The 5/10 node–minute points as one sweep sharing prepared data.

    The 2 node–minute point is the headline experiment (full-quality
    config, shared with Figures 4, 6 and Table 2), so it stays a separate
    ``cached_experiment`` rather than joining the reduced-budget sweep.
    """
    spec = SweepSpec(base=scenario, mitigation_costs=SWEPT_COSTS)
    return cached_sweep(spec, sweep_experiment_config())


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("mitigation_cost", MITIGATION_COSTS)
def test_fig3_total_cost(benchmark, scenario, mitigation_cost, cost_sweep,
                         headline_experiment):
    """Regenerate one bar group of Figure 3."""

    def run():
        if mitigation_cost == 2.0:
            return headline_experiment
        return cost_sweep[f"cost={mitigation_cost:g}"]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    costs = result.total_costs()

    print()
    print(
        format_cost_table(
            costs,
            title=f"Figure 3 — total cost, mitigation cost = {mitigation_cost:g} node-minutes",
        )
    )

    never = costs["Never-mitigate"]
    always = costs["Always-mitigate"]
    oracle = costs["Oracle"]
    sc20 = costs["SC20-RF"]
    rl = costs["RL"]

    # Shape checks mirroring the paper's headline observations.
    assert never.mitigation_cost == 0.0
    assert oracle.ue_cost <= min(c.ue_cost for c in costs.values()) + 1e-6
    assert oracle.total <= min(c.total for c in costs.values()) + oracle.mitigation_cost + 1e-6
    assert sc20.total < never.total
    assert rl.total < never.total
    # The RL agent's advantage is a much lower mitigation overhead than the
    # event-triggered baseline.
    assert rl.mitigation_cost < always.mitigation_cost
    if mitigation_cost == 2.0:
        # At the cheapest mitigation cost, every mitigating approach wins big.
        assert always.total < 0.8 * never.total
    if mitigation_cost == 10.0:
        # Expensive mitigations erode the advantage of indiscriminate
        # mitigation far more than that of the predictive approaches.
        assert (always.total / never.total) > (sc20.total / never.total)
