"""Benchmark: the vectorized decision core vs the scalar reference path.

Opt-in (marked ``slow``): run with

    python -m pytest benchmarks/test_decision_core.py -m slow -s

Three microbenchmarks over ``ScenarioConfig.benchmark()``, all asserting
*identical results* between the scalar and vectorized implementations
before recording any timing:

``replay``
    The Section 4.2 approach panel (Never/Always, the SC20-RF family,
    Myopic-RF, a briefly trained RL agent, Oracle) replayed over the test
    traces with ``evaluate_policy`` under both checkpointing settings
    (``restartable`` on/off — the Figure 3 axis), scalar
    (``vectorized=False``) vs the batched decision core.  Timings are
    best-of-``REPRO_BENCH_DECISION_REPS`` with warm caches, matching the
    steady state of the per-split replay loop.
``per``
    Prioritized-replay sample + priority-update rounds: the historical
    per-draw sum-tree walks vs the vectorized batch path.
``features``
    Table 1 feature-track extraction over the benchmark error log: the
    reference per-event loop vs the cumulative-array implementation.

The JSON lands in ``BENCH_decision_core.json`` in the repository root
(override the directory with ``REPRO_BENCH_OUTPUT_DIR``).  CI uploads it
and gates with ``benchmarks/check_bench_regression.py`` against the
committed baseline: the vector-vs-scalar speedups are schedule-independent
ratios, so they must stay >= 1 on *any* runner, and must not regress by
more than the tolerance against the baseline.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.baselines.dataset import build_prediction_dataset
from repro.baselines.myopic import MyopicRFPolicy
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.baselines.static import (
    AlwaysMitigatePolicy,
    NeverMitigatePolicy,
    OraclePolicy,
)
from repro.config import ScenarioConfig
from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.environment import MitigationEnv
from repro.core.features import (
    StateNormalizer,
    _extract_node_features_loop,
    extract_node_features,
)
from repro.core.mdp import Transition
from repro.core.policies import RLPolicy
from repro.core.replay import PrioritizedReplayBuffer
from repro.core.trainer import train_agent
from repro.evaluation.pipeline import ExperimentConfig, prepare_data
from repro.evaluation.runner import (
    build_traces,
    evaluate_policy,
    renewal_walk_stats,
    reset_renewal_walk_stats,
)

pytestmark = pytest.mark.slow

REPS = int(os.environ.get("REPRO_BENCH_DECISION_REPS", "3"))
MITIGATION_COST = 2 / 60.0  # node-hours (the paper's 2 node-minute point)


def _output_path() -> str:
    directory = os.environ.get(
        "REPRO_BENCH_OUTPUT_DIR",
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    return os.path.join(directory, "BENCH_decision_core.json")


def _best_of(fn, reps=REPS):
    timings = []
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - started)
    return min(timings), result


def _identical(a, b) -> bool:
    return (
        a.costs == b.costs
        and a.confusion == b.confusion
        and a.n_decision_points == b.n_decision_points
    )


def _build_panel(prepared, duration):
    """The Section 4.2 approach set, with realistically trained models."""
    split_point = 0.25 * duration
    dataset = build_prediction_dataset(
        prepared.tracks,
        prediction_window_seconds=86400.0,
        t_start=0.0,
        t_end=split_point,
    )
    forest, _ = train_sc20_forest(dataset, n_estimators=25, max_depth=10, seed=3)
    sc20 = SC20RandomForestPolicy(forest, threshold=0.8)

    normalizer = StateNormalizer()
    train_tracks = {
        node: track.slice_time(0.0, split_point)
        for node, track in prepared.tracks.items()
    }
    train_tracks = {
        node: track
        for node, track in train_tracks.items()
        if len(track) and track.n_decision_points > 0
    }
    agent = DDDQNAgent(
        normalizer.state_dim,
        DQNConfig(
            hidden_sizes=(64, 48),
            seed=5,
            epsilon_decay_steps=2000,
            warmup_transitions=128,
            buffer_capacity=20000,
        ),
    )
    env = MitigationEnv(
        train_tracks,
        prepared.sampler,
        mitigation_cost=MITIGATION_COST,
        restartable=True,
        t_start=0.0,
        t_end=split_point,
        normalizer=normalizer,
        seed=11,
    )
    train_agent(env, agent, n_episodes=60)

    return [
        NeverMitigatePolicy(),
        AlwaysMitigatePolicy(),
        sc20,
        sc20.with_threshold(0.8, offset=0.02, name="SC20-RF-2%"),
        sc20.with_threshold(0.8, offset=0.05, name="SC20-RF-5%"),
        MyopicRFPolicy(sc20, MITIGATION_COST),
        RLPolicy(agent, normalizer),
        OraclePolicy(),
    ]


def _bench_replay(record):
    scenario = ScenarioConfig.benchmark(seed=2024)
    prepared = prepare_data(scenario, ExperimentConfig())
    duration = scenario.duration_seconds
    traces = build_traces(
        prepared.tracks, prepared.sampler, 0.25 * duration, duration, seed=42
    )
    n_events = sum(len(trace) for trace in traces)
    panel = _build_panel(prepared, duration)

    identical = True
    total_scalar = 0.0
    total_vector = 0.0
    per_policy = {}
    per_policy_seconds = {}
    walk_stats = {}
    for restartable in (True, False):
        for policy in panel:
            scalar_seconds, scalar_result = _best_of(
                lambda: evaluate_policy(
                    traces,
                    policy,
                    MITIGATION_COST,
                    restartable=restartable,
                    vectorized=False,
                )
            )
            reset_renewal_walk_stats()
            vector_seconds, vector_result = _best_of(
                lambda: evaluate_policy(
                    traces,
                    policy,
                    MITIGATION_COST,
                    restartable=restartable,
                    vectorized=True,
                )
            )
            stats = renewal_walk_stats()
            identical = identical and _identical(scalar_result, vector_result)
            total_scalar += scalar_seconds
            total_vector += vector_seconds
            key = f"{policy.name}/restart={'on' if restartable else 'off'}"
            per_policy[key] = round(scalar_seconds / vector_seconds, 2)
            per_policy_seconds[key] = {
                "scalar": round(scalar_seconds, 4),
                "vector": round(vector_seconds, 4),
            }
            if stats["rounds"]:
                # Renewal-walk round/window/retry counts of one replay (the
                # counters accumulate across the best-of reps).
                walk_stats[key] = {
                    name: count // REPS for name, count in stats.items()
                }

    evaluations = 2 * len(panel)
    record.update(
        {
            "replay_n_traces": len(traces),
            "replay_n_events": n_events,
            "replay_evaluations": evaluations,
            "replay_scalar_seconds": round(total_scalar, 3),
            "replay_vector_seconds": round(total_vector, 3),
            "replay_events_per_sec_scalar": round(
                evaluations * n_events / total_scalar
            ),
            "replay_events_per_sec_vector": round(
                evaluations * n_events / total_vector
            ),
            "replay_speedup": round(total_scalar / total_vector, 3),
            "replay_speedup_by_policy": per_policy,
            "replay_seconds_by_policy": per_policy_seconds,
            "replay_walk_stats_by_policy": walk_stats,
        }
    )
    return identical


def _bench_per(record):
    rng = np.random.default_rng(7)

    def make_transitions(count):
        return [
            Transition(
                state=rng.normal(size=15),
                action=int(rng.integers(2)),
                reward=float(rng.normal()),
                next_state=rng.normal(size=15),
                done=False,
            )
        for _ in range(count)
        ]

    transitions = make_transitions(20_000)
    rounds = 400
    batch_size = 32

    def run(scalar: bool):
        buffer = PrioritizedReplayBuffer(50_000, seed=3)
        buffer.push_many(transitions)
        error_rng = np.random.default_rng(9)
        started = time.perf_counter()
        for _ in range(rounds):
            if scalar:
                batch = buffer._sample_scalar(batch_size)
                buffer._update_priorities_scalar(
                    batch.indices, error_rng.normal(size=batch_size) * 10
                )
            else:
                batch = buffer.sample(batch_size)
                buffer.update_priorities(
                    batch.indices, error_rng.normal(size=batch_size) * 10
                )
        return time.perf_counter() - started, buffer

    scalar_seconds, scalar_buffer = min(
        (run(scalar=True) for _ in range(REPS)), key=lambda pair: pair[0]
    )
    vector_seconds, vector_buffer = min(
        (run(scalar=False) for _ in range(REPS)), key=lambda pair: pair[0]
    )
    identical = bool(
        np.array_equal(scalar_buffer._tree._tree, vector_buffer._tree._tree)
    )
    samples = rounds * batch_size
    record.update(
        {
            "per_rounds": rounds,
            "per_batch_size": batch_size,
            "per_scalar_seconds": round(scalar_seconds, 3),
            "per_vector_seconds": round(vector_seconds, 3),
            "per_samples_per_sec_scalar": round(samples / scalar_seconds),
            "per_samples_per_sec_vector": round(samples / vector_seconds),
            "per_speedup": round(scalar_seconds / vector_seconds, 3),
        }
    )
    return identical


def _bench_features(record):
    scenario = ScenarioConfig.benchmark(seed=2024)
    from repro.telemetry.generator import TelemetryGenerator
    from repro.telemetry.reduction import prepare_log
    from repro.utils.rng import RngFactory

    log = TelemetryGenerator(
        scenario.topology,
        scenario.fault_model,
        scenario.duration_seconds,
        seed=RngFactory(scenario.seed).child("telemetry"),
    ).generate()
    reduced, _ = prepare_log(log, scenario.evaluation.ue_burst_window_seconds)
    slices = reduced.node_slices()

    def run(extract):
        started = time.perf_counter()
        tracks = {
            node: extract(reduced, node, indices)
            for node, indices in slices.items()
        }
        return time.perf_counter() - started, tracks

    scalar_seconds, scalar_tracks = min(
        (run(_extract_node_features_loop) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )
    vector_seconds, vector_tracks = min(
        (run(extract_node_features) for _ in range(REPS)), key=lambda pair: pair[0]
    )
    identical = all(
        np.array_equal(scalar_tracks[node].features, vector_tracks[node].features)
        and np.array_equal(scalar_tracks[node].times, vector_tracks[node].times)
        and np.array_equal(scalar_tracks[node].is_ue, vector_tracks[node].is_ue)
        for node in slices
    )
    record.update(
        {
            "feature_n_events": len(reduced),
            "feature_scalar_seconds": round(scalar_seconds, 3),
            "feature_vector_seconds": round(vector_seconds, 3),
            "feature_events_per_sec_scalar": round(len(reduced) / scalar_seconds),
            "feature_events_per_sec_vector": round(len(reduced) / vector_seconds),
            "feature_speedup": round(scalar_seconds / vector_seconds, 3),
        }
    )
    return identical


@pytest.mark.slow
def test_decision_core_vector_vs_scalar():
    record = {
        "benchmark": "decision_core",
        "cpu_count": os.cpu_count(),
        "reps": REPS,
    }
    identical = _bench_replay(record)
    identical = _bench_per(record) and identical
    identical = _bench_features(record) and identical
    record["results_identical"] = identical

    path = _output_path()
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"\nreplay:   {record['replay_scalar_seconds']:7.2f}s -> "
        f"{record['replay_vector_seconds']:7.2f}s  "
        f"({record['replay_speedup']:.1f}x, "
        f"{record['replay_events_per_sec_vector']:,} events/s)"
        f"\nPER:      {record['per_scalar_seconds']:7.2f}s -> "
        f"{record['per_vector_seconds']:7.2f}s  ({record['per_speedup']:.1f}x)"
        f"\nfeatures: {record['feature_scalar_seconds']:7.2f}s -> "
        f"{record['feature_vector_seconds']:7.2f}s  "
        f"({record['feature_speedup']:.1f}x)"
        f"\nwritten: {path}"
    )

    # Correctness is non-negotiable: the vectorized core must reproduce the
    # scalar results exactly before any speed number means anything.
    assert identical

    # The speedups are schedule-independent single-process ratios, so even
    # a throttled single-core runner must keep them at or above parity.
    # PER sampling at mini-batch size is dispatch-bound and sits near the
    # parity boundary by design; only a noise-tolerant floor is asserted.
    assert record["replay_speedup"] >= 1.0
    assert record["per_speedup"] >= 0.85
    assert record["feature_speedup"] >= 1.0
