"""Benchmark: RL-chain vs. per-trial fan-out wall-clock, recorded as JSON.

Opt-in (marked ``slow``; the benchmarks directory is outside the tier-1
``testpaths`` anyway): run with

    python -m pytest benchmarks/test_pipeline_parallel.py -m slow -s

Measures one small experiment under three schedules —

``serial``
    ``n_workers=1``: every task runs in-process, the reference wall-clock.
``chain``
    ``n_workers=N`` with ``rl_trial_tasks=False``: the historical shape,
    one RL task per split whose hyperparameter trials run serially inside
    the task; the warm-start chain makes those ``splits × trials`` training
    runs the graph's critical path.
``fan``
    ``n_workers=N`` with ``rl_trial_tasks=True`` (the default): one task
    per trial plus a select-best reduce, only trial 0 on the chain — the
    critical path holds ``splits`` training runs and the remaining trials
    fill idle workers.

Results are asserted identical across all three — the executor must never
trade determinism for speed — and the measurements are written to
``BENCH_rl_parallel.json`` in the repository root (override the directory
with ``REPRO_BENCH_OUTPUT_DIR``).  CI uploads the file as an artifact and
gates on ``benchmarks/check_bench_regression.py`` against the committed
baseline in ``benchmarks/baselines/``.

``rl_warm_start`` stays **enabled** here, unlike the pre-fan-out version of
this benchmark: the chain it creates is exactly what the per-trial
decomposition is meant to beat, so hiding it would benchmark the wrong
thing.  On a single-core machine the pools only add overhead; the
chain-vs-fan comparison is asserted on >= 2 cores only (the recorded JSON
carries ``cpu_count`` so readers can tell the runs apart).
"""

from __future__ import annotations

import json
import os
import sys
import time

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.config import ScenarioConfig
from repro.evaluation.experiment import ExperimentConfig, run_experiment
from repro.evaluation.pipeline import (
    PreparedDataCache,
    clear_trace_cache,
    trace_cache_stats,
)

N_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
N_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "3"))

pytestmark = pytest.mark.slow


def _bench_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(
        rl_episodes=int(os.environ.get("REPRO_BENCH_EPISODES", "60")),
        rl_hyperparam_trials=N_TRIALS,
        rl_hidden_sizes=(32, 16),
        rf_n_estimators=10,
        threshold_grid_size=11,
        charge_training_time=False,
    ).with_overrides(**overrides)


def _output_path() -> str:
    directory = os.environ.get(
        "REPRO_BENCH_OUTPUT_DIR",
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    return os.path.join(directory, "BENCH_rl_parallel.json")


def _identical(a, b) -> bool:
    if a.approach_names != b.approach_names:
        return False
    for name in a.approach_names:
        for left, right in zip(a.approaches[name].per_split, b.approaches[name].per_split):
            if left.costs != right.costs or left.confusion != right.confusion:
                return False
    return True


@pytest.mark.slow
def test_rl_chain_vs_trial_fanout():
    scenario = ScenarioConfig.small(seed=29)
    cache = PreparedDataCache()
    clear_trace_cache()

    # Untimed warm-up: fills the prepared-data cache (and the in-process
    # trace cache) so every *timed* run below pays the same prepared-data
    # cost — i.e. none.  Without it the first run alone would pay
    # prepare_data and the recorded speedups would partly measure cache
    # warm-up rather than the executor schedule.
    warmup = run_experiment(scenario, _bench_config(n_workers=1), cache=cache)

    timings = {}
    results = {}
    for label, config in (
        ("serial", _bench_config(n_workers=1)),
        ("chain", _bench_config(n_workers=N_WORKERS, rl_trial_tasks=False)),
        ("fan", _bench_config(n_workers=N_WORKERS, rl_trial_tasks=True)),
    ):
        started = time.perf_counter()
        results[label] = run_experiment(scenario, config, cache=cache)
        timings[label] = time.perf_counter() - started

    # Correctness first: neither the schedule nor the task shape (nor the
    # shared cache) may change a single number.
    results_identical = (
        _identical(warmup, results["serial"])
        and _identical(results["serial"], results["chain"])
        and _identical(results["serial"], results["fan"])
    )
    assert results_identical

    fan_stats = results["fan"].executor_stats
    traces = trace_cache_stats()
    record = {
        "benchmark": "rl_parallel",
        "cpu_count": os.cpu_count(),
        "n_workers": N_WORKERS,
        "rl_hyperparam_trials": N_TRIALS,
        "rl_episodes": _bench_config().rl_episodes,
        "serial_seconds": round(timings["serial"], 3),
        "chain_parallel_seconds": round(timings["chain"], 3),
        "fan_parallel_seconds": round(timings["fan"], 3),
        "fan_vs_chain_speedup": round(timings["chain"] / timings["fan"], 3),
        "parallel_speedup": round(timings["serial"] / timings["fan"], 3),
        "rl_critical_path_seconds": round(fan_stats.critical_path_seconds, 3),
        "rl_critical_path_tasks": len(fan_stats.critical_path),
        "executor_tasks": len(fan_stats.task_seconds),
        "total_task_seconds": round(fan_stats.total_task_seconds, 3),
        "prepare_calls": cache.prepare_calls,
        "prepared_cache_hits": cache.hits,
        "trace_cache_hits": traces["hits"],
        "trace_cache_misses": traces["misses"],
        "results_identical": results_identical,
    }
    path = _output_path()
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"\nserial: {timings['serial']:8.2f} s"
        f"\nchain:  {timings['chain']:8.2f} s  ({N_WORKERS} workers, old shape)"
        f"\nfan:    {timings['fan']:8.2f} s  ({N_WORKERS} workers, per-trial tasks)"
        f"\nfan-vs-chain speedup: {record['fan_vs_chain_speedup']:.2f}x"
        f" on {os.cpu_count()} core(s)"
        f"\nRL critical path: {record['rl_critical_path_seconds']:.2f} s"
        f" over {record['rl_critical_path_tasks']} tasks"
        f"\nwritten: {path}"
    )

    # The acceptance bound: with enough cores for the fan to spread (>= 4,
    # the CI runner size), fanning the trials out must beat the chained
    # shape — 3 trials put 3x the fan's training work on the chain's
    # critical path, so this is a structural gap, not a timing coin flip.
    # 2-3 core machines oversubscribe the 4-worker pool (noise could flip
    # a strict comparison) and single-core machines only measure pool
    # overhead; there the JSON records the numbers without asserting.
    if (os.cpu_count() or 1) >= 4 and N_WORKERS >= 4 and N_TRIALS >= 2:
        assert timings["fan"] < timings["chain"], (
            f"per-trial fan-out ({timings['fan']:.2f}s) did not beat the "
            f"chained shape ({timings['chain']:.2f}s) on "
            f"{os.cpu_count()} cores"
        )
