"""Micro-benchmark: serial vs. parallel scenario-engine wall-clock.

Opt-in (marked ``slow``; the benchmarks directory is outside the tier-1
``testpaths`` anyway): run with

    python -m pytest benchmarks/test_pipeline_parallel.py -m slow -s

Records the wall-clock of a small experiment under the serial executor and
under a 4-worker process pool, so future PRs can track the speedup of the
(split × approach-group) task fan-out.  Results are asserted identical —
the executor must never trade determinism for speed.

``rl_warm_start`` is disabled: warm starting chains the RL tasks of
consecutive splits, and the RL hyperparameter search dominates the runtime,
so the chain would serialize exactly the work worth parallelising.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.config import ScenarioConfig
from repro.evaluation.experiment import ExperimentConfig, run_experiment

N_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))

pytestmark = pytest.mark.slow


def _bench_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(
        rl_episodes=int(os.environ.get("REPRO_BENCH_EPISODES", "60")),
        rl_hyperparam_trials=2,
        rl_hidden_sizes=(32, 16),
        rf_n_estimators=10,
        threshold_grid_size=11,
        rl_warm_start=False,
        charge_training_time=False,
    ).with_overrides(**overrides)


@pytest.mark.slow
def test_parallel_speedup_and_equivalence():
    scenario = ScenarioConfig.small(seed=29)

    started = time.perf_counter()
    serial = run_experiment(scenario, _bench_config(n_workers=1))
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_experiment(scenario, _bench_config(n_workers=N_WORKERS))
    parallel_seconds = time.perf_counter() - started

    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    print(
        f"\nserial:   {serial_seconds:8.2f} s"
        f"\nparallel: {parallel_seconds:8.2f} s  ({N_WORKERS} workers,"
        f" {os.cpu_count()} cores)"
        f"\nspeedup:  {speedup:8.2f}x"
    )
    # On a single-core machine the process pool can only add overhead; the
    # speedup is meaningful on >= 2 cores.

    # Correctness first: the schedule must not change a single number.
    assert serial.approach_names == parallel.approach_names
    for name in serial.approach_names:
        for a, b in zip(
            serial.approaches[name].per_split, parallel.approaches[name].per_split
        ):
            assert a.costs == b.costs, name
            assert a.confusion == b.confusion, name

    # No speedup assertion: CI machines vary too much for a hard bound; the
    # printed numbers are the record future PRs compare against.
