"""Figure 5 — total cost per DRAM manufacturer (MN/All, MN/A, MN/B, MN/C and
their sum MN/ABC) at a 2 node–minute mitigation cost.

Paper result: the relative effectiveness of the approaches is broadly similar
whether the method is trained on the whole machine or separately per
manufacturer; MN/ABC (three separately trained models) is slightly worse than
MN/All because it cannot generalise across manufacturers.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_sweep, sweep_experiment_config
from repro.evaluation.report import format_cost_table, format_series
from repro.evaluation.sweep import SweepSpec
from repro.telemetry.records import MANUFACTURER_NAMES

MANUFACTURERS = {"MN/A": 0, "MN/B": 1, "MN/C": 2}


@pytest.mark.benchmark(group="fig5")
def test_fig5_per_manufacturer_costs(benchmark, scenario, headline_experiment):
    """One sweep over the manufacturer axis; the raw telemetry is generated
    once and filtered per point (MN/All stays the shared headline run)."""
    spec = SweepSpec(base=scenario, manufacturers=tuple(MANUFACTURERS.values()))

    def run():
        sweep = cached_sweep(spec, sweep_experiment_config())
        results = {"MN/All": headline_experiment}
        for label, manufacturer in MANUFACTURERS.items():
            results[label] = sweep[f"mfr={MANUFACTURER_NAMES[manufacturer]}"]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    series = {}
    for label, result in results.items():
        costs = result.total_costs()
        print(format_cost_table(costs, title=f"Figure 5 — {label}"))
        print()
        series[label] = costs

    # MN/ABC is the sum of the three per-manufacturer subsystems.
    approaches = list(series["MN/A"].keys())
    abc = {
        name: series["MN/A"][name] + series["MN/B"][name] + series["MN/C"][name]
        for name in approaches
    }
    print(format_cost_table(abc, title="Figure 5 — MN/ABC (sum of per-manufacturer models)"))

    rows = {
        label: [series[label][name].total for name in approaches]
        for label in results
    }
    rows["MN/ABC"] = [abc[name].total for name in approaches]
    print()
    print(format_series(rows, approaches, title="Figure 5 — totals by subsystem"))

    # Shape checks: in every subsystem the Oracle pays the least for UEs (its
    # total can only exceed another approach's by its tiny mitigation
    # overhead) and Never-mitigate pays the largest UE cost.
    for label, costs in list(series.items()) + [("MN/ABC", abc)]:
        oracle = costs["Oracle"]
        never = costs["Never-mitigate"]
        assert oracle.ue_cost <= min(c.ue_cost for c in costs.values()) + 1e-6, label
        assert (
            oracle.total
            <= min(c.total for c in costs.values()) + oracle.mitigation_cost + 1e-6
        ), label
        assert never.ue_cost >= max(c.ue_cost for c in costs.values()) - 1e-6, label

    # The per-manufacturer UE counts add up to (at most) the whole machine's.
    total_ues_abc = sum(abc[name].n_ues for name in ["Never-mitigate"])
    assert total_ues_abc <= series["MN/All"]["Never-mitigate"].n_ues + 2
