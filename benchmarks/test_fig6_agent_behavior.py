"""Figure 6 — RL agent behaviour as a function of the potential UE cost and
the likelihood of a UE (proxied by the SC20 random-forest probability).

Paper result: the agent rarely mitigates when both the potential UE cost
(< ~100 node–hours) and the predicted UE probability (< ~50 %) are low, almost
always mitigates when the cost exceeds ~1000 node–hours even at low
probability, almost always mitigates at high probability, and generalises to
costs one to two orders of magnitude beyond anything seen in training.
"""

from __future__ import annotations

import pytest

from repro.evaluation.behavior import behavior_grid
from repro.evaluation.report import format_behavior_grid


@pytest.mark.benchmark(group="fig6")
def test_fig6_behavior_grid(benchmark, headline_experiment):
    result = headline_experiment
    assert result.final_rl_policy is not None, "the experiment must train an RL policy"
    assert result.final_sc20_policy is not None
    assert result.final_test_features is not None

    features = result.final_test_features
    if len(features) > 150:
        features = features[:: max(1, len(features) // 150)]

    def run():
        return behavior_grid(
            result.final_rl_policy,
            result.final_sc20_policy,
            features,
            ue_cost_range=(1.0, 1e6),
            n_cost_bins=12,
            n_probability_bins=8,
            costs_per_event=6,
            seed=5,
        )

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_behavior_grid(grid))
    print(
        f"\nmean mitigation fraction for cost >= 1000 node-h: "
        f"{grid.mean_fraction_for_cost_above(1000.0):.2f}"
    )
    print(
        f"mean mitigation fraction for cost < 100 node-h:   "
        f"{grid.mean_fraction_for_cost_below(100.0):.2f}"
    )

    # Shape check: the agent mitigates much more readily when the potential UE
    # cost is large (>= 1000 node-hours) than when it is small (< 100), which
    # is the adaptivity property Figure 6 illustrates.
    high = grid.mean_fraction_for_cost_above(1000.0)
    low = grid.mean_fraction_for_cost_below(100.0)
    assert high >= low - 0.05
    assert high > 0.05
