"""The :class:`repro.study.Study` facade and its resume-from-store contract.

The load-bearing test here is the acceptance round-trip: a sweep run into a
fresh store, all in-memory caches dropped, then ``Study.resume()`` of the
same spec — which must call ``prepare_data`` / ``train_split`` exactly zero
times while reproducing a byte-identical ``SweepResult`` JSON.
"""

from __future__ import annotations

import pytest

from repro.config import ScenarioConfig
from repro.evaluation import experiment, pipeline
from repro.evaluation.pipeline import ExperimentConfig, clear_trace_cache
from repro.evaluation.sweep import SweepResult, SweepSpec
from repro.store import ArtifactStore
from repro.study import Study
from repro.utils.timeutils import DAY

SCENARIO = ScenarioConfig.small(seed=11).with_duration(45 * DAY)

TINY = ExperimentConfig(
    rl_episodes=5,
    rl_hyperparam_trials=1,
    rl_hidden_sizes=(8, 8),
    rf_n_estimators=3,
    rf_max_depth=3,
    threshold_grid_size=3,
    charge_training_time=False,
    executor_kind="serial",
)

SPEC = SweepSpec(base=SCENARIO, mitigation_costs=(2.0, 10.0))


@pytest.fixture()
def stage_counters(monkeypatch):
    """Count every ``prepare_data`` / ``train_split`` stage invocation."""
    calls = {"prepare_data": 0, "train_split": 0}
    orig_prepare = pipeline.prepare_data
    orig_train = pipeline.train_split

    def counting_prepare(*args, **kwargs):
        calls["prepare_data"] += 1
        return orig_prepare(*args, **kwargs)

    def counting_train(*args, **kwargs):
        calls["train_split"] += 1
        return orig_train(*args, **kwargs)

    monkeypatch.setattr(pipeline, "prepare_data", counting_prepare)
    monkeypatch.setattr(pipeline, "train_split", counting_train)
    # run_experiment binds prepare_data into its own namespace at import.
    monkeypatch.setattr(experiment, "prepare_data", counting_prepare)
    return calls


class TestConstruction:
    def test_exactly_one_of_scenario_or_spec(self):
        with pytest.raises(ValueError, match="exactly one"):
            Study()
        with pytest.raises(ValueError, match="exactly one"):
            Study(scenario=SCENARIO, spec=SPEC)

    def test_from_sweep_accepts_base_scenario_plus_axes(self):
        study = Study.from_sweep(SCENARIO, mitigation_costs=(2.0, 10.0))
        assert study.spec == SPEC

    def test_from_sweep_rejects_axes_with_ready_spec(self):
        with pytest.raises(TypeError, match="axis keyword"):
            Study.from_sweep(SPEC, mitigation_costs=(2.0,))

    def test_result_before_run_raises(self):
        with pytest.raises(RuntimeError, match="not been run"):
            Study.from_scenario(SCENARIO).result

    def test_resume_without_store_raises(self):
        with pytest.raises(RuntimeError, match="ArtifactStore"):
            Study.from_sweep(SPEC).resume(TINY)


class TestScenarioStudies:
    def test_run_matches_run_experiment_and_report_renders(self):
        study = Study.from_scenario(SCENARIO)
        result = study.run(TINY)
        assert result is study.result
        assert "Never-mitigate" in study.report()
        assert "recall" in study.report(which="metrics")
        assert study.points_loaded == [] and study.points_computed == []

    def test_store_round_trip_serves_second_run_from_disk(
        self, tmp_path, stage_counters
    ):
        store = ArtifactStore(tmp_path / "runs")
        first = Study.from_scenario(SCENARIO, store=store)
        first.run(TINY)
        computed_calls = dict(stage_counters)
        assert computed_calls["prepare_data"] == 1

        clear_trace_cache()
        second = Study.from_scenario(SCENARIO, store=store)
        reloaded = second.resume(TINY)
        assert stage_counters == computed_calls  # nothing recomputed
        assert reloaded.to_json() == first.result.to_json()


    def test_prepared_data_spills_across_configs(self, tmp_path, stage_counters):
        """A scenario study's prepared data serves later runs with *different*
        experiment configs (result key differs, prepared key does not)."""
        store = ArtifactStore(tmp_path / "runs")
        Study.from_scenario(SCENARIO, store=store).run(TINY)
        assert stage_counters["prepare_data"] == 1

        clear_trace_cache()
        retrained = Study.from_scenario(SCENARIO, store=ArtifactStore(tmp_path / "runs"))
        retrained.run(TINY.with_overrides(rl_episodes=6))  # new result slot
        assert stage_counters["prepare_data"] == 1  # spill served the data


class TestSweepResume:
    def test_resume_round_trip_is_free_and_byte_identical(
        self, tmp_path, stage_counters
    ):
        """The acceptance criterion of the store/Study API."""
        store = ArtifactStore(tmp_path / "runs")
        first = Study.from_sweep(SPEC, store=store)
        result_1 = first.run(TINY)
        assert isinstance(result_1, SweepResult)
        assert first.points_computed == ["cost=2", "cost=10"]
        assert first.points_loaded == []
        assert stage_counters["prepare_data"] == 1  # both points share data
        assert stage_counters["train_split"] == 0  # group tasks, not train_split
        json_1 = result_1.to_json()

        # Simulate a new session: drop every in-memory cache.
        clear_trace_cache()
        stage_counters["prepare_data"] = 0
        stage_counters["train_split"] = 0

        second = Study.from_sweep(SPEC, store=ArtifactStore(tmp_path / "runs"))
        result_2 = second.resume(TINY)
        assert stage_counters == {"prepare_data": 0, "train_split": 0}
        assert second.points_loaded == ["cost=2", "cost=10"]
        assert second.points_computed == []
        assert result_2.to_json() == json_1

    def test_partial_resume_executes_only_missing_points(self, tmp_path):
        store = ArtifactStore(tmp_path / "runs")
        Study.from_sweep(
            SweepSpec(base=SCENARIO, mitigation_costs=(2.0,)), store=store
        ).run(TINY)

        clear_trace_cache()
        study = Study.from_sweep(SPEC, store=ArtifactStore(tmp_path / "runs"))
        result = study.run(TINY)
        assert study.points_loaded == ["cost=2"]
        assert study.points_computed == ["cost=10"]
        # The warm-started point matches a from-scratch computation.
        clear_trace_cache()
        fresh = Study.from_sweep(
            SweepSpec(base=SCENARIO, mitigation_costs=(10.0,))
        )
        fresh_result = fresh.run(TINY)
        assert (
            result["cost=10"].total_costs() == fresh_result["cost=10"].total_costs()
        )

    def test_sweep_without_store_computes_everything(self, stage_counters):
        study = Study.from_sweep(SPEC)
        result = study.run(TINY)
        assert sorted(result.labels) == ["cost=10", "cost=2"]
        assert study.points_computed == ["cost=2", "cost=10"]
        assert "cost=2" in study.report()
